"""Span trees: one sampled multiget, decomposed into typed time segments.

A :class:`TaskTrace` is the Dapper-style record of a single sampled
multiget: the root span covers arrival to last-response, and one child
:class:`Span` per *accepted* sub-task response carries the request's full
timestamp trail.  Segments are derived from the trail rather than stored,
so the JSONL artifact keeps raw timestamps and every consumer (the
critical-path analysis, the CI invariant checks, ad-hoc jq) recomputes
durations from the same source of truth.

Segment taxonomy (``SEGMENT_KINDS``, in life-cycle order):

``sched_lag``
    Root-level only: intended arrival to actual submit.  Zero in the
    simulation (tasks are submitted at their arrival event); in the live
    realm it is the open-loop generator's lateness for this task.
``credit_wait`` / ``hedge_wait``
    Submit to dispatch.  For a primary request this is client-side gating
    (BRB credit gates, C3 pacing); for a hedge copy it is the time the
    hedge timer waited before duplicating, so the two are reported as
    distinct kinds.
``network_out``
    Dispatch to server enqueue.  In the live realm the server-side
    enqueue instant is reconstructed from wire durations, so this segment
    absorbs the outbound wire plus any client/server scheduling skew --
    which keeps the telescoped sum exact.
``queue_wait``
    Enqueue to service start, as measured by the serving realm itself.
``service``
    Service start to completion.
``network_in``
    Completion to client-side response arrival (zero in the live realm,
    where arrival is the reconstruction anchor).

``retry`` and ``reroute`` are reserved kinds: the current stack never
re-sends a request (live queue-full is a hard error, remediation acts on
placement for *future* requests), so they are declared for schema
stability but not yet produced.
"""

from __future__ import annotations

import typing as _t

from .._compat import slots_dataclass

#: Every segment kind an attribution table may report, in life-cycle order.
SEGMENT_KINDS: _t.Tuple[str, ...] = (
    "sched_lag",
    "credit_wait",
    "hedge_wait",
    "network_out",
    "queue_wait",
    "service",
    "network_in",
)

#: Declared but not yet produced (no retry/re-route path re-sends a request).
RESERVED_KINDS: _t.Tuple[str, ...] = ("retry", "reroute")


@slots_dataclass()
class Span:
    """One accepted sub-task response of a sampled multiget.

    Timestamps are model seconds on the run's clock; ``end`` is the
    client-side response arrival (the instant the recorder observed it).
    """

    server: int
    partition: int
    key: int
    hedge: bool
    created: float
    dispatched: float
    enqueued: float
    service_start: float
    completed: float
    end: float

    def segments(self) -> _t.Dict[str, float]:
        """The span's duration, split into typed segments.

        The segments telescope: their sum is exactly ``end - created``
        (floating-point addition aside), which is what lets the critical
        path account for a task's full measured latency.
        """
        pre = self.dispatched - self.created
        out: _t.Dict[str, float] = {
            "hedge_wait" if self.hedge else "credit_wait": pre,
            "network_out": self.enqueued - self.dispatched,
            "queue_wait": self.service_start - self.enqueued,
            "service": self.completed - self.service_start,
            "network_in": self.end - self.completed,
        }
        return out

    @property
    def duration(self) -> float:
        return self.end - self.created

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "server": self.server,
            "partition": self.partition,
            "key": self.key,
            "hedge": self.hedge,
            "created": self.created,
            "dispatched": self.dispatched,
            "enqueued": self.enqueued,
            "service_start": self.service_start,
            "completed": self.completed,
            "end": self.end,
        }

    @classmethod
    def from_dict(cls, raw: _t.Mapping[str, _t.Any]) -> "Span":
        return cls(
            server=int(raw["server"]),
            partition=int(raw["partition"]),
            key=int(raw["key"]),
            hedge=bool(raw["hedge"]),
            created=float(raw["created"]),
            dispatched=float(raw["dispatched"]),
            enqueued=float(raw["enqueued"]),
            service_start=float(raw["service_start"]),
            completed=float(raw["completed"]),
            end=float(raw["end"]),
        )


@slots_dataclass()
class TaskTrace:
    """Root span of one sampled multiget plus its child spans."""

    trace_id: int
    task_id: int
    client_id: int
    #: Intended arrival time (the latency epoch the runner measures from).
    start: float
    #: Arrival of the last accepted response (= completion time).
    end: float
    spans: _t.List[Span]

    @property
    def latency(self) -> float:
        return self.end - self.start

    def critical_span(self) -> Span:
        """The child whose response completed the task (max ``end``)."""
        if not self.spans:
            raise ValueError(f"trace {self.trace_id} has no spans")
        return max(self.spans, key=lambda s: s.end)

    def critical_path(self) -> _t.List[_t.Tuple[str, float, Span]]:
        """(segment kind, duration, owning span) along the critical path.

        The path is the chain that determined the task's completion: the
        root-level wait until the last-finishing span was submitted, then
        that span's own segments.  Durations sum to :attr:`latency`
        exactly, so tail attribution accounts for 100% of measured time.
        """
        span = self.critical_span()
        path = [("sched_lag", span.created - self.start, span)]
        path.extend((kind, value, span) for kind, value in span.segments().items())
        return path

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "trace_id": self.trace_id,
            "task_id": self.task_id,
            "client_id": self.client_id,
            "start": self.start,
            "end": self.end,
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, raw: _t.Mapping[str, _t.Any]) -> "TaskTrace":
        return cls(
            trace_id=int(raw["trace_id"]),
            task_id=int(raw["task_id"]),
            client_id=int(raw["client_id"]),
            start=float(raw["start"]),
            end=float(raw["end"]),
            spans=[Span.from_dict(s) for s in raw.get("spans", ())],
        )
