"""Critical-path tail attribution over trace artifacts.

The JSONL trace artifact written by ``repro run --trace-out`` / ``repro
loadgen --trace-out`` interleaves two record kinds:

* ``{"kind": "meta", ...}`` — one per run, carrying the run's identity
  (strategy, scenario, seed, realm, sample rate, task counts).  Every
  subsequent trace line belongs to the most recent meta line.
* ``{"kind": "trace", ...}`` — one serialized :class:`TaskTrace`.

Files concatenate cleanly (``cat run1.jsonl run2.jsonl``), which is how
multi-seed and multi-strategy corpora are assembled for ``repro trace
attribution --diff``.

The attribution itself walks each trace's **critical path** — the chain
of segments that determined the task's completion time (see
:meth:`TaskTrace.critical_path`) — restricted to the traces at or above
a tail percentile, and reports each segment kind's share of the summed
tail latency.  Because critical-path segments telescope to the measured
latency exactly, the shares always sum to 100%: slow requests cannot
hide time in an "other" bucket.  ``queue_wait`` is additionally broken
down by the partition (replica group) of the owning span, which is what
turns "p99 is queue-bound" into "p99 is queue-bound *on the hot shard*".
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field

from .spans import SEGMENT_KINDS, TaskTrace

__all__ = [
    "RunTraces",
    "Attribution",
    "load_traces",
    "write_traces",
    "attribution",
    "slowest",
    "diff_attributions",
    "render_attribution",
    "render_slowest",
    "render_diff",
]


@dataclass
class RunTraces:
    """All traces for one (strategy, scenario) group, seeds merged."""

    strategy: str
    scenario: str
    realm: str
    sample: float
    seeds: _t.List[int] = field(default_factory=list)
    n_tasks: int = 0
    traces: _t.List[TaskTrace] = field(default_factory=list)

    @property
    def key(self) -> _t.Tuple[str, str]:
        return (self.strategy, self.scenario)


def write_traces(
    path: str,
    traces: _t.Iterable[TaskTrace],
    meta: _t.Mapping[str, _t.Any],
    append: bool = False,
) -> int:
    """Write one run's meta line + trace lines as JSONL; returns #traces."""
    n = 0
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as fh:
        record = {"kind": "meta"}
        record.update(meta)
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        for trace in traces:
            line = {"kind": "trace"}
            line.update(trace.to_dict())
            fh.write(json.dumps(line, sort_keys=True) + "\n")
            n += 1
    return n


def load_traces(paths: _t.Sequence[str]) -> _t.List[RunTraces]:
    """Parse JSONL trace files, grouping by (strategy, scenario)."""
    groups: _t.Dict[_t.Tuple[str, str], RunTraces] = {}
    current: _t.Optional[RunTraces] = None
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
                kind = record.get("kind")
                if kind == "meta":
                    key = (str(record["strategy"]), str(record["scenario"]))
                    group = groups.get(key)
                    if group is None:
                        group = groups[key] = RunTraces(
                            strategy=key[0],
                            scenario=key[1],
                            realm=str(record.get("realm", "?")),
                            sample=float(record.get("sample", 0.0)),
                        )
                    seed = record.get("seed")
                    if seed is not None:
                        group.seeds.append(int(seed))
                    group.n_tasks += int(record.get("n_tasks", 0))
                    current = group
                elif kind == "trace":
                    if current is None:
                        raise ValueError(
                            f"{path}:{lineno}: trace record before any meta record"
                        )
                    current.traces.append(TaskTrace.from_dict(record))
                else:
                    raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
    return sorted(groups.values(), key=lambda g: g.key)


@dataclass
class Attribution:
    """Critical-path share per segment kind over one group's tail."""

    strategy: str
    scenario: str
    tail: float
    #: Number of traces in the group / in the analysed tail.
    n_traces: int
    n_tail: int
    #: Latency threshold that defines the tail (model seconds).
    threshold: float
    #: Mean latency of the tail traces (model seconds).
    tail_mean: float
    #: segment kind -> share of summed tail latency, in [0, 1].
    shares: _t.Dict[str, float]
    #: partition -> share of summed tail latency spent in its queue_wait.
    queue_by_partition: _t.Dict[int, float]

    def dominant(self) -> _t.Tuple[str, float]:
        kind = max(self.shares, key=lambda k: self.shares[k])
        return kind, self.shares[kind]

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "strategy": self.strategy,
            "scenario": self.scenario,
            "tail": self.tail,
            "n_traces": self.n_traces,
            "n_tail": self.n_tail,
            "threshold": self.threshold,
            "tail_mean": self.tail_mean,
            "shares": dict(self.shares),
            "queue_by_partition": {str(k): v for k, v in self.queue_by_partition.items()},
        }


def _percentile_threshold(latencies: _t.Sequence[float], tail: float) -> float:
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1, int(round((tail / 100.0) * (len(ordered) - 1)))))
    return ordered[rank]


def attribution(group: RunTraces, tail: float = 99.0) -> Attribution:
    """Tail attribution for one (strategy, scenario) group.

    ``tail`` is a percentile: traces with latency at or above the group's
    ``tail``-th percentile form the analysed set.
    """
    if not group.traces:
        raise ValueError(f"{group.strategy}/{group.scenario}: no traces to analyse")
    if not 0.0 <= tail < 100.0:
        raise ValueError(f"tail percentile must be in [0, 100), got {tail}")
    latencies = [t.latency for t in group.traces]
    threshold = _percentile_threshold(latencies, tail)
    tail_traces = [t for t in group.traces if t.latency >= threshold]
    totals: _t.Dict[str, float] = {kind: 0.0 for kind in SEGMENT_KINDS}
    queue_by_partition: _t.Dict[int, float] = {}
    total_latency = 0.0
    for trace in tail_traces:
        total_latency += trace.latency
        for kind, value, span in trace.critical_path():
            totals[kind] = totals.get(kind, 0.0) + value
            if kind == "queue_wait":
                queue_by_partition[span.partition] = (
                    queue_by_partition.get(span.partition, 0.0) + value
                )
    denom = total_latency if total_latency > 0 else 1.0
    return Attribution(
        strategy=group.strategy,
        scenario=group.scenario,
        tail=tail,
        n_traces=len(group.traces),
        n_tail=len(tail_traces),
        threshold=threshold,
        tail_mean=total_latency / max(1, len(tail_traces)),
        shares={kind: value / denom for kind, value in totals.items()},
        queue_by_partition={
            part: value / denom for part, value in sorted(queue_by_partition.items())
        },
    )


def slowest(group: RunTraces, k: int = 5) -> _t.List[TaskTrace]:
    """The ``k`` slowest traces of a group, slowest first."""
    return sorted(group.traces, key=lambda t: t.latency, reverse=True)[:k]


def diff_attributions(a: Attribution, b: Attribution) -> _t.Dict[str, float]:
    """Per-kind share delta ``b - a`` (positive = b spends more there)."""
    kinds = sorted(set(a.shares) | set(b.shares))
    return {kind: b.shares.get(kind, 0.0) - a.shares.get(kind, 0.0) for kind in kinds}


# -- rendering -------------------------------------------------------------


def _pct(value: float) -> str:
    return f"{100.0 * value:5.1f}%"


def _ms(seconds: float) -> str:
    return f"{1000.0 * seconds:.3f}ms"


def render_attribution(result: Attribution) -> str:
    """Human-readable table for one group's tail attribution."""
    lines = [
        f"{result.strategy} / {result.scenario} — p{result.tail:g} tail attribution",
        f"  traces={result.n_traces} tail_n={result.n_tail} "
        f"threshold={_ms(result.threshold)} tail_mean={_ms(result.tail_mean)}",
        "  segment          share",
        "  ---------------  ------",
    ]
    for kind in SEGMENT_KINDS:
        share = result.shares.get(kind, 0.0)
        if share == 0.0 and kind not in ("queue_wait", "service"):
            continue
        lines.append(f"  {kind:<15}  {_pct(share)}")
    if result.queue_by_partition:
        lines.append("  queue_wait by partition:")
        for part, share in result.queue_by_partition.items():
            lines.append(f"    partition {part:<4}  {_pct(share)}")
    return "\n".join(lines)


def render_slowest(group: RunTraces, traces: _t.Sequence[TaskTrace]) -> str:
    """Exemplar dump of the slowest traces of a group."""
    lines = [f"{group.strategy} / {group.scenario} — {len(traces)} slowest traces"]
    for trace in traces:
        lines.append(
            f"  task {trace.task_id} latency={_ms(trace.latency)} "
            f"spans={len(trace.spans)} trace_id={trace.trace_id:#018x}"
        )
        for kind, value, span in trace.critical_path():
            if value <= 0.0:
                continue
            lines.append(
                f"    {kind:<12} {_ms(value):>11}  "
                f"(server={span.server} partition={span.partition}"
                f"{' hedge' if span.hedge else ''})"
            )
    return "\n".join(lines)


def render_diff(a: Attribution, b: Attribution) -> str:
    """Side-by-side share comparison of two attributions."""
    deltas = diff_attributions(a, b)
    lines = [
        f"tail attribution diff (p{a.tail:g}): "
        f"A={a.strategy}/{a.scenario}  B={b.strategy}/{b.scenario}",
        f"  tail_mean A={_ms(a.tail_mean)}  B={_ms(b.tail_mean)}",
        "  segment          A       B       B-A",
        "  ---------------  ------  ------  -------",
    ]
    for kind in SEGMENT_KINDS:
        if kind not in deltas:
            continue
        sa = a.shares.get(kind, 0.0)
        sb = b.shares.get(kind, 0.0)
        if sa == 0.0 and sb == 0.0 and kind not in ("queue_wait", "service"):
            continue
        lines.append(
            f"  {kind:<15}  {_pct(sa)}  {_pct(sb)}  {100.0 * deltas[kind]:+6.1f}%"
        )
    parts = sorted(set(a.queue_by_partition) | set(b.queue_by_partition))
    if parts:
        lines.append("  queue_wait by partition (A vs B):")
        for part in parts:
            pa = a.queue_by_partition.get(part, 0.0)
            pb = b.queue_by_partition.get(part, 0.0)
            lines.append(f"    partition {part:<4}  {_pct(pa)}  {_pct(pb)}")
    return "\n".join(lines)
