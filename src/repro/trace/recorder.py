"""Sampling span recorder, shared by both realms.

The recorder hangs off the two observation hooks every realm already
provides — ``Client(request_observer=...)`` fires once per *accepted*
response with the request's full timestamp trail, and
``Client(on_complete=...)`` fires once per finished task — so recording
adds **no events to the calendar and draws nothing from any RNG
stream**.  With sampling off the recorder is simply never constructed;
with sampling on, fixed-seed goldens stay byte-identical because the
schedule is untouched.

Sampling is a pure function of the task id (a splitmix64-style integer
hash), which gives three properties the realms need:

* deterministic across realms and processes — the same task is sampled
  in a sim run and its live twin, and by every loadgen process;
* independent of any seeded RNG — no perturbation of workloads;
* the sampled set for rate ``r`` is a superset of the set for ``r' < r``.

The 64-bit hash doubles as the wire trace id: the live transport asks
:meth:`TraceRecorder.wire_trace_id` per request and propagates the id in
the protocol-v2 traced-op frame (v1 JSON carries it as an optional key
that old servers ignore).
"""

from __future__ import annotations

import typing as _t
from collections import deque

from ..cluster.messages import RequestMessage, TaskCompletion
from ..core.clock import Clock
from .spans import Span, TaskTrace

#: Default capacity of the in-memory trace ring.
DEFAULT_RING = 4096

_MULT = 0x9E3779B97F4A7C15
_ADD = 0xD1B54A32D192ED03
_MASK = (1 << 64) - 1
_SCALE = float(1 << 64)


def trace_hash(task_id: int) -> int:
    """Deterministic 64-bit mix of a task id (splitmix64-flavored)."""
    return (task_id * _MULT + _ADD) & _MASK


def is_sampled(task_id: int, sample: float) -> bool:
    """Whether ``task_id`` falls in the sampled fraction ``sample``."""
    if sample <= 0.0:
        return False
    if sample >= 1.0:
        return True
    return trace_hash(task_id) / _SCALE < sample


class TraceRecorder:
    """Collects span trees for the sampled subset of a run's tasks.

    Parameters
    ----------
    clock:
        The realm's clock; ``clock.now`` stamps client-side response
        arrival (a span's ``end``).
    sample:
        Sampled fraction in ``[0, 1]``.
    warmup_tasks:
        Tasks below this id are warm-up and never sampled, mirroring the
        runner's latency accounting.
    ring:
        In-memory capacity.  Eviction drops the *oldest* trace;
        :meth:`extras` counts every sampled task regardless, so the
        sampled-fraction audit is exact even when the ring wraps.
    """

    def __init__(
        self,
        clock: Clock,
        sample: float,
        warmup_tasks: int = 0,
        ring: int = DEFAULT_RING,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if ring <= 0:
            raise ValueError(f"ring capacity must be positive, got {ring}")
        self.clock = clock
        self.sample = sample
        self.warmup_tasks = warmup_tasks
        self._ring: _t.Deque[TaskTrace] = deque(maxlen=ring)
        self._open: _t.Dict[int, _t.List[Span]] = {}
        self._sampled = 0
        self._spans = 0
        self._evicted = 0

    # -- sampling ---------------------------------------------------------

    def sampled(self, task_id: int) -> bool:
        if task_id < self.warmup_tasks:
            return False
        return is_sampled(task_id, self.sample)

    def wire_trace_id(self, request: RequestMessage) -> _t.Optional[int]:
        """The 64-bit context to propagate for ``request``, if sampled."""
        if not self.sampled(request.task_id):
            return None
        return trace_hash(request.task_id)

    # -- observation hooks ------------------------------------------------

    def observe_request(self, request: RequestMessage) -> None:
        """Record one accepted response (``Client`` request observer)."""
        if not self.sampled(request.task_id):
            return
        span = Span(
            server=request.server_id,
            partition=request.partition,
            key=request.op.key,
            hedge=request.hedge,
            created=request.created_at,
            dispatched=request.dispatched_at,
            enqueued=request.enqueued_at,
            service_start=request.service_start_at,
            completed=request.completed_at,
            end=self.clock.now,
        )
        self._open.setdefault(request.task_id, []).append(span)
        self._spans += 1

    def on_complete(self, completion: TaskCompletion) -> None:
        """Seal the span tree for a finished task (``Client`` on_complete)."""
        task = completion.task
        spans = self._open.pop(task.task_id, None)
        if spans is None:
            return
        self._sampled += 1
        if len(self._ring) == self._ring.maxlen:
            self._evicted += 1
        self._ring.append(
            TaskTrace(
                trace_id=trace_hash(task.task_id),
                task_id=task.task_id,
                client_id=task.client_id,
                start=task.arrival_time,
                end=completion.completed_at,
                spans=spans,
            )
        )

    # -- results ----------------------------------------------------------

    @property
    def traces(self) -> _t.List[TaskTrace]:
        return list(self._ring)

    def extras(self) -> _t.Dict[str, float]:
        """Audit counters folded into ``RunResult.extras`` when sampling."""
        return {
            "trace_sampled": float(self._sampled),
            "trace_spans": float(self._spans),
            "trace_evicted": float(self._evicted),
        }
