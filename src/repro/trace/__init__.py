"""Request tracing: sampled span trees and critical-path tail attribution.

See ``docs/observability.md`` ("Tracing & tail attribution") for the span
schema, the sampling semantics, and the ``repro trace`` CLI.
"""

from .analysis import (
    Attribution,
    RunTraces,
    attribution,
    diff_attributions,
    load_traces,
    render_attribution,
    render_diff,
    render_slowest,
    slowest,
    write_traces,
)
from .recorder import DEFAULT_RING, TraceRecorder, is_sampled, trace_hash
from .spans import RESERVED_KINDS, SEGMENT_KINDS, Span, TaskTrace

__all__ = [
    "Attribution",
    "DEFAULT_RING",
    "RESERVED_KINDS",
    "RunTraces",
    "SEGMENT_KINDS",
    "Span",
    "TaskTrace",
    "TraceRecorder",
    "attribution",
    "diff_attributions",
    "is_sampled",
    "load_traces",
    "render_attribution",
    "render_diff",
    "render_slowest",
    "slowest",
    "trace_hash",
    "write_traces",
]
