"""The live wire protocol: length-prefixed frames, two codecs, negotiation.

One frame is a 4-byte big-endian length followed by that many payload
bytes.  The *payload encoding* is version-negotiated per connection:

* **v1 (JSON)** -- UTF-8 compact JSON.  Inspectable with standard tools
  (``nc`` + ``jq`` suffice to poke a server); the form every connection
  starts in, and the form old clients stay in forever.
* **v2 (binary)** -- tagged struct-packed frames
  (:mod:`repro.serve.codec`): the data plane (``op``/``res``/
  ``congestion``) shrinks 2.4-4x, the control plane stays JSON behind a
  tag byte.

Negotiation
-----------
The handshake always travels in v1 JSON.  A client's ``hello`` carries
``proto`` (the base version, always 1) and optionally ``max_proto`` (the
highest version it speaks).  The server answers ``hello-ack`` with
``proto`` = ``min(server max, client max)`` -- still in v1 -- and *then*
switches the connection to the agreed codec.  The client switches when
the ack arrives.  A v1 client omits ``max_proto`` and nothing changes; a
v2-capable client must not send post-``hello`` frames until the ack
arrives (ours awaits it anyway, to validate the cluster shape).

Frame types (the ``t`` field)
-----------------------------
Client -> server:

``hello``       handshake: protocol version + optional ``max_proto``,
                optional ``congestion`` opt-out (pool connections)
``op``          one key read: ``rid`` (wire id), ``server`` (worker id),
                ``key``, ``size`` (value bytes), ``prio`` (priority tuple)
``admin``       fault-injection and introspection commands (``cmd`` one of
                ``slowdown``, ``restore``, ``crash``, ``resume``,
                ``jitter``, ``clear-jitter``, ``stats``)

Server -> client:

``hello-ack``   handshake reply: negotiated ``proto``, actual shape, the
                ``workers`` this endpoint hosts, time scale, calibration
``res``         completion of one ``op``: echoes ``rid``, carries the
                measured ``queue_wait``/``service`` (model seconds) and the
                piggybacked queue ``fb`` -- the same feedback the simulated
                servers attach (C3's input)
``congestion``  a worker's offered load exceeded capacity (credits input)
``stats``       reply to ``admin``/``stats``
``error``       the request could not be honored (bad frame, queue bound)

All durations and rates on the wire are *model seconds* (see
:mod:`repro.core.clock`), so a client never needs to know the server's
time scale to interpret them.
"""

from __future__ import annotations

import asyncio
import json
import struct
import typing as _t

#: Base protocol version: the framing + handshake every peer speaks.
PROTOCOL_VERSION = 1

#: Highest payload encoding this build can negotiate (2 = binary codec).
MAX_PROTOCOL_VERSION = 2

#: Upper bound on a single frame (defense against garbage length prefixes).
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized or out-of-order frame."""


def hello_frame(
    max_proto: int = MAX_PROTOCOL_VERSION, congestion: bool = True
) -> _t.Dict[str, _t.Any]:
    """The client's handshake frame (always sent in v1 JSON).

    ``congestion=False`` asks the server not to broadcast congestion
    frames on this connection -- pool connections beyond an endpoint's
    first set it so the credits controller sees each signal once.
    """
    frame: _t.Dict[str, _t.Any] = {"t": "hello", "proto": PROTOCOL_VERSION}
    if max_proto != PROTOCOL_VERSION:
        frame["max_proto"] = int(max_proto)
    if not congestion:
        frame["congestion"] = False
    return frame


def negotiate_version(hello: _t.Mapping[str, _t.Any]) -> int:
    """Server-side version choice for one ``hello`` frame.

    Raises :class:`ProtocolError` when the base version is not v1 (the
    handshake itself is only defined there) or ``max_proto`` is garbage.
    """
    if hello.get("proto") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client {hello.get('proto')!r}, "
            f"server {PROTOCOL_VERSION}"
        )
    raw = hello.get("max_proto", PROTOCOL_VERSION)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < PROTOCOL_VERSION:
        raise ProtocolError(f"bad max_proto {raw!r}")
    return min(MAX_PROTOCOL_VERSION, raw)


def encode_frame(frame: _t.Mapping[str, _t.Any]) -> bytes:
    """Serialize one frame dict to its wire form."""
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> _t.Optional[_t.Dict[str, _t.Any]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of 4 bytes)"
        ) from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length} exceeds the cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(frame, dict) or "t" not in frame:
        raise ProtocolError(f"frame is not a typed object: {frame!r}")
    return frame


def priority_to_wire(priority: _t.Tuple[float, ...]) -> _t.List[float]:
    """Priority tuples travel as JSON arrays of numbers."""
    return [float(p) for p in priority]


def priority_from_wire(raw: _t.Any) -> _t.Tuple[float, ...]:
    """Decode (and validate) a wire priority back into a sortable tuple.

    Tuples pass through untouched: the binary codec decodes priorities as
    tuples of floats (valid by construction), and JSON never produces a
    tuple, so element re-validation is reserved for the JSON path.
    """
    if type(raw) is tuple:
        return raw
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(p, (int, float)) and not isinstance(p, bool) for p in raw
    ):
        raise ProtocolError(f"bad priority {raw!r}")
    return tuple(float(p) for p in raw)


def error_frame(message: str) -> _t.Dict[str, _t.Any]:
    return {"t": "error", "error": str(message)}


class FrameStream:
    """Buffered, codec-switchable frame reader over a ``StreamReader``.

    Reads the socket in large chunks (one syscall can carry hundreds of
    pipelined frames) and parses frames out of the accumulated buffer by
    offset -- the binary codec unpacks fields straight from the buffer,
    so the per-frame cost is bookkeeping, not copying.  ``codec`` is an
    attribute precisely so negotiation can switch it between frames.

    Byte positions are tracked across compactions: a corrupt frame's
    :class:`ProtocolError` reports the absolute stream offset where the
    damage sits.
    """

    __slots__ = ("_reader", "codec", "_buf", "_pos", "_base", "frames_read")

    #: Socket read size; also the buffer-compaction threshold.
    CHUNK = 1 << 16

    def __init__(self, reader: asyncio.StreamReader, codec: _t.Any) -> None:
        self._reader = reader
        self.codec = codec
        self._buf = bytearray()
        self._pos = 0
        #: Absolute stream offset of ``_buf[0]`` (survives compaction).
        self._base = 0
        self.frames_read = 0

    async def read_frame(self) -> _t.Optional[_t.Dict[str, _t.Any]]:
        """One decoded frame; ``None`` on clean EOF between frames."""
        buf = self._buf
        unpack_from = _LENGTH.unpack_from
        while True:
            avail = len(buf) - self._pos
            if avail >= 4:
                (length,) = unpack_from(buf, self._pos)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"declared frame length {length} exceeds the cap"
                    )
                if avail - 4 >= length:
                    start = self._pos + 4
                    end = start + length
                    self._pos = end
                    frame = self.codec.decode(buf, start, end, self._base + start)
                    self.frames_read += 1
                    if self._pos >= FrameStream.CHUNK:
                        del buf[: self._pos]
                        self._base += self._pos
                        self._pos = 0
                    return frame
            chunk = await self._reader.read(FrameStream.CHUNK)
            if not chunk:
                if avail == 0:
                    return None
                if avail < 4:
                    raise ProtocolError(
                        f"connection closed mid-header at byte "
                        f"{self._base + self._pos} ({avail} of 4 bytes)"
                    )
                raise ProtocolError(
                    f"connection closed mid-frame at byte "
                    f"{self._base + self._pos} ({avail} bytes buffered)"
                )
            buf += chunk


class BatchWriter:
    """Coalesces frame writes: one ``write``+``drain`` per event-loop wakeup.

    Senders append encoded frames synchronously (safe from callbacks);
    the writer task swaps the accumulated buffer out and pushes it in a
    single syscall.  Under pipelined load this turns hundreds of per-frame
    writes into one, which is most of the live path's syscall savings
    (``writes`` vs ``frames_sent`` is the measured ratio in
    ``results/live_throughput.json``).
    """

    __slots__ = (
        "_writer",
        "_buf",
        "_wake",
        "_task",
        "closed",
        "bytes_sent",
        "writes",
        "frames_sent",
    )

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._buf = bytearray()
        self._wake = asyncio.Event()
        self.closed = False
        self.bytes_sent = 0
        self.writes = 0
        self.frames_sent = 0
        self._task = asyncio.get_running_loop().create_task(self._loop())

    def send(self, data: bytes) -> None:
        """Queue one encoded frame for the next coalesced write."""
        if not self.closed:
            self._buf += data
            self.frames_sent += 1
            self._wake.set()

    @property
    def pending(self) -> int:
        return len(self._buf)

    async def _loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                if not self._buf:
                    continue
                data = self._buf
                self._buf = bytearray()
                self._writer.write(data)
                self.bytes_sent += len(data)
                self.writes += 1
                await self._writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass

    async def close(self, flush_timeout: float = 1.0) -> None:
        """Flush what's queued (bounded), then tear the connection down."""
        deadline = asyncio.get_running_loop().time() + flush_timeout
        while self._buf and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)
        self.closed = True
        self._task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass
