"""The live wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 compact JSON.  JSON keeps the protocol inspectable with standard
tools (``nc`` + ``jq`` suffice to poke a server); the length prefix keeps
framing trivial and binary-safe.

Frame types (the ``t`` field)
-----------------------------
Client -> server:

``hello``       handshake: protocol version + expected cluster shape
``op``          one key read: ``rid`` (wire id), ``server`` (worker id),
                ``key``, ``size`` (value bytes), ``prio`` (priority tuple)
``admin``       fault-injection and introspection commands (``cmd`` one of
                ``slowdown``, ``restore``, ``crash``, ``resume``,
                ``jitter``, ``clear-jitter``, ``stats``)

Server -> client:

``hello-ack``   handshake reply: actual shape, time scale, calibration
``res``         completion of one ``op``: echoes ``rid``, carries the
                measured ``queue_wait``/``service`` (model seconds) and the
                piggybacked queue ``fb`` -- the same feedback the simulated
                servers attach (C3's input)
``congestion``  a worker's offered load exceeded capacity (credits input)
``stats``       reply to ``admin``/``stats``
``error``       the request could not be honored (bad frame, queue bound)

All durations and rates on the wire are *model seconds* (see
:mod:`repro.core.clock`), so a client never needs to know the server's
time scale to interpret them.
"""

from __future__ import annotations

import asyncio
import json
import struct
import typing as _t

#: Protocol version; bumped on any incompatible frame change.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame (defense against garbage length prefixes).
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized or out-of-order frame."""


def encode_frame(frame: _t.Mapping[str, _t.Any]) -> bytes:
    """Serialize one frame dict to its wire form."""
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> _t.Optional[_t.Dict[str, _t.Any]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of 4 bytes)"
        ) from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length} exceeds the cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(frame, dict) or "t" not in frame:
        raise ProtocolError(f"frame is not a typed object: {frame!r}")
    return frame


def priority_to_wire(priority: _t.Tuple[float, ...]) -> _t.List[float]:
    """Priority tuples travel as JSON arrays of numbers."""
    return [float(p) for p in priority]


def priority_from_wire(raw: _t.Any) -> _t.Tuple[float, ...]:
    """Decode (and validate) a wire priority back into a sortable tuple."""
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(p, (int, float)) and not isinstance(p, bool) for p in raw
    ):
        raise ProtocolError(f"bad priority {raw!r}")
    return tuple(float(p) for p in raw)


def error_frame(message: str) -> _t.Dict[str, _t.Any]:
    return {"t": "error", "error": str(message)}
