"""Live backend workers: bounded priority queues drained by a core pump.

A :class:`LiveWorker` is the wall-clock analogue of the simulation's
:class:`~repro.cluster.server.BackendServer`: requests land in a bounded
priority queue (smaller priority tuple first, FIFO within a priority),
``cores`` of them may be in service at once, and each is held for a
*calibrated* service time (the same value-size-dependent
:class:`~repro.workload.calibration.ServiceTimeModel` the simulation
samples, stretched by the clock's time scale).

Rather than one asyncio task per core each awaiting its own
``asyncio.sleep`` -- which costs a timer-heap entry and an event-loop
wakeup per request, and at small time scales runs into epoll's
millisecond rounding -- a single *pump* task per worker keeps a due-time
heap of in-service requests and sleeps until the earliest one finishes.
One wakeup then completes every request due by that instant, so the
timer cost is amortized across the batch; this is what lets the firehose
benchmark drive tens of thousands of ops per second through a worker
whose emulated service times are microseconds of wall time.

Fault hooks mirror the simulated fault injector one-for-one so scenario
fault schedules replay against live workers:

* ``slowdown``/``restore`` -- multiply service times (stacking, like
  overlapping :class:`~repro.cluster.faults.SlowdownFault` windows);
* ``pause``/``resume`` -- crash/restart: cores stop starting new requests,
  the queue is retained, nested windows must all close (exactly
  :meth:`repro.cluster.server._ServerBase.pause` semantics);
* response ``jitter`` -- the live stand-in for a degraded network on a
  loopback link: an extra lognormal delay added to each response.
"""

from __future__ import annotations

import asyncio
import heapq
import time
import typing as _t
from itertools import count

from ..core.clock import WallClock
from ..metrics.timeseries import EwmaEstimator, WindowedRate
from ..sim.rng import Stream
from ..workload.calibration import ServiceTimeModel
from .protocol import ProtocolError

#: Default bound on one worker's queue; hitting it is a protocol error
#: (an open-loop generator that outruns the backend this far is measuring
#: the bound, not the scheduler).
DEFAULT_MAX_QUEUE = 100_000


class QueueFullError(ProtocolError):
    """The worker's bounded queue rejected a request."""


class LiveJob:
    """One enqueued request plus its completion callback."""

    __slots__ = (
        "rid",
        "key",
        "value_size",
        "priority",
        "respond",
        "enqueued_at",
    )

    def __init__(
        self,
        rid: int,
        key: int,
        value_size: int,
        priority: _t.Tuple[float, ...],
        respond: _t.Callable[["LiveWorker", "LiveJob", float, float], None],
    ) -> None:
        self.rid = rid
        self.key = key
        self.value_size = value_size
        self.priority = priority
        self.respond = respond
        self.enqueued_at = -1.0


class LiveWorker:
    """One backend worker: a priority queue plus ``cores`` server tasks."""

    def __init__(
        self,
        clock: WallClock,
        worker_id: int,
        cores: int,
        service_model: ServiceTimeModel,
        service_stream: Stream,
        max_queue: int = DEFAULT_MAX_QUEUE,
        ewma_time_constant: float = 0.1,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self.clock = clock
        self.worker_id = int(worker_id)
        self.cores = int(cores)
        self.service_model = service_model
        self.service_stream = service_stream
        self.max_queue = int(max_queue)
        self._heap: _t.List[_t.Tuple[_t.Tuple[float, ...], int, LiveJob]] = []
        self._seq = count()
        #: In-service requests: (wall due time, seq, job, model start time).
        self._due: _t.List[_t.Tuple[float, int, LiveJob, float]] = []
        #: Set whenever the pump may have new work to admit (a submitted
        #: job, a closed crash window).
        self._wakeup = asyncio.Event()
        self._pause_depth = 0
        #: Service-time multiplier; >1 while throttled by a fault.
        self.speed_factor = 1.0
        #: Extra per-response delay (model s); the loopback jitter stand-in.
        self.jitter_mean = 0.0
        self.jitter_sigma = 0.0
        self.in_service = 0
        self.completed = 0
        self.rejected = 0
        self.crashes = 0
        self.busy_time = 0.0
        self._ewma_service = EwmaEstimator(ewma_time_constant, initial=0.0)
        self.arrival_rate = WindowedRate(window=0.1)
        #: In-flight jittered responses (kept referenced until delivered).
        self._jitter_tasks: _t.Set["asyncio.Task[None]"] = set()
        self._pump_task: "asyncio.Task[None]" = (
            asyncio.get_running_loop().create_task(
                self._pump(), name=f"live-worker{worker_id}.pump"
            )
        )

    # -- intake -------------------------------------------------------------
    def submit(self, job: LiveJob) -> None:
        """Enqueue one request (raises :class:`QueueFullError` at the bound)."""
        if len(self._heap) >= self.max_queue:
            self.rejected += 1
            raise QueueFullError(
                f"worker {self.worker_id} queue bound {self.max_queue} hit"
            )
        job.enqueued_at = self.clock.now
        self.arrival_rate.record(job.enqueued_at)
        heapq.heappush(self._heap, (job.priority, next(self._seq), job))
        self._wakeup.set()

    def queue_length(self) -> int:
        return len(self._heap)

    # -- feedback -----------------------------------------------------------
    def feedback(self) -> _t.Dict[str, _t.Any]:
        """Queue state piggybacked on responses (wire form of
        :class:`~repro.cluster.messages.ServerFeedback`)."""
        return {
            "q": self.queue_length(),
            "s": self.in_service,
            "ew": self._ewma_service.value,
        }

    def capacity(self) -> float:
        """Requests/second (model time) this worker sustains, all cores."""
        mean = self._ewma_service.value
        if mean <= 0:
            mean = self.service_model.expected_time(1024)
        return self.cores / mean

    @property
    def utilization_time(self) -> float:
        """Cumulative busy core-time in model seconds."""
        return self.busy_time

    # -- fault hooks ----------------------------------------------------------
    def throttle(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError("throttle factor must be positive")
        self.speed_factor *= factor

    def restore(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError("restore factor must be positive")
        self.speed_factor /= factor

    def pause(self) -> None:
        """Crash: stop starting requests; the queue survives for resume()."""
        self._pause_depth += 1
        self.crashes += 1

    def resume(self) -> None:
        if self._pause_depth == 0:
            return
        self._pause_depth -= 1
        if self._pause_depth == 0:
            self._wakeup.set()

    @property
    def paused(self) -> bool:
        return self._pause_depth > 0

    def set_jitter(self, mean: float, sigma: float) -> None:
        """Add (or clear, with mean 0) per-response delay."""
        if mean < 0 or sigma < 0:
            raise ValueError("jitter parameters must be non-negative")
        self.jitter_mean = float(mean)
        self.jitter_sigma = float(sigma)

    # -- the service loop --------------------------------------------------------
    async def _pump(self) -> None:
        """Admit queued jobs onto free cores, complete them when due.

        One task per worker; per pump wakeup it admits every admissible
        job and completes every due one, so the per-request cost is heap
        operations, not event-loop handles.
        """
        heap = self._heap
        due = self._due
        scale = self.clock.scale
        while True:
            if heap and self.in_service < self.cores and not self._pause_depth:
                now_wall = time.monotonic()
                start = self.clock.now  # one admission instant per wakeup
                while heap and self.in_service < self.cores:
                    _, _, job = heapq.heappop(heap)
                    duration = self.speed_factor * self.service_model.sample_time(
                        job.value_size, self.service_stream
                    )
                    heapq.heappush(
                        due,
                        (now_wall + duration * scale, next(self._seq), job, start),
                    )
                    self.in_service += 1
            if not due:
                # Idle (or crashed with nothing in service): wait for a
                # submit or a closed crash window.
                self._wakeup.clear()
                if heap and not self._pause_depth:
                    continue  # submitted between the admission loop and here
                await self._wakeup.wait()
                continue
            delay = due[0][0] - time.monotonic()
            if delay > 0:
                if self.in_service < self.cores:
                    # A submit (or resume) could admit work mid-sleep, so
                    # wait on whichever comes first.
                    self._wakeup.clear()
                    if heap and not self._pause_depth:
                        continue
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), delay)
                    except TimeoutError:
                        pass
                else:
                    # Saturated: nothing to admit until a completion.
                    await asyncio.sleep(delay)
            now_wall = time.monotonic()
            while due and due[0][0] <= now_wall:
                _, _, job, start = heapq.heappop(due)
                self._complete(job, start)

    def _complete(self, job: LiveJob, start: float) -> None:
        end = self.clock.now
        self.in_service -= 1
        self.completed += 1
        # Account the *actual* elapsed model time: on a wall clock the
        # sleep can overshoot, and honest feedback must include that.
        service = end - start
        self.busy_time += service
        self._ewma_service.update(end, service)
        queue_wait = max(0.0, start - job.enqueued_at)
        if self.jitter_mean > 0:
            # Jitter models the *network*, not the server: delay the
            # response off-core so capacity is untouched (matching the
            # simulated NetworkJitterFault, which only delays messages).
            delay = (
                self.service_stream.lognormal_mean(
                    self.jitter_mean, self.jitter_sigma
                )
                if self.jitter_sigma > 0
                else self.jitter_mean
            )
            task = asyncio.get_running_loop().create_task(
                self._respond_later(delay, job, queue_wait, service)
            )
            self._jitter_tasks.add(task)
            task.add_done_callback(self._jitter_tasks.discard)
        else:
            job.respond(self, job, queue_wait, service)

    async def _respond_later(
        self, delay: float, job: LiveJob, queue_wait: float, service: float
    ) -> None:
        await self.clock.sleep(delay)
        job.respond(self, job, queue_wait, service)

    def stats(self) -> _t.Dict[str, _t.Any]:
        return {
            "worker": self.worker_id,
            "completed": self.completed,
            "queued": self.queue_length(),
            "in_service": self.in_service,
            "rejected": self.rejected,
            "crashes": self.crashes,
            "speed_factor": self.speed_factor,
            "busy_time_s": self.busy_time,
        }

    def shutdown(self) -> None:
        for task in [self._pump_task] + list(self._jitter_tasks):
            if not task.done():
                task.cancel()
