"""Live serving: a wall-clock asyncio multiget KV service.

The real-time counterpart of the simulated backend tier: the same cluster
shape, calibrated service times and queue feedback, served over TCP with
a length-prefixed frame protocol (v1 JSON, v2 binary -- negotiated per
connection).  One process hosts all workers by default; ``repro serve
--procs N`` splits the cluster across processes via
:class:`~repro.serve.supervisor.ServeSupervisor`.  Drive it with
:mod:`repro.loadgen` (``repro loadgen`` / ``repro compare``) or start it
standalone with ``repro serve``.
"""

from .codec import BINARY_CODEC, JSON_CODEC, BinaryCodec, JsonCodec, codec_for
from .protocol import (
    MAX_FRAME_BYTES,
    MAX_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    BatchWriter,
    FrameStream,
    ProtocolError,
    encode_frame,
    error_frame,
    hello_frame,
    negotiate_version,
    priority_from_wire,
    priority_to_wire,
    read_frame,
)
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_TIME_SCALE,
    LiveServer,
    install_uvloop,
    run_server,
)
from .supervisor import ServeSupervisor
from .workers import DEFAULT_MAX_QUEUE, LiveJob, LiveWorker, QueueFullError

__all__ = [
    "BINARY_CODEC",
    "BatchWriter",
    "BinaryCodec",
    "DEFAULT_HOST",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "DEFAULT_TIME_SCALE",
    "FrameStream",
    "JSON_CODEC",
    "JsonCodec",
    "LiveJob",
    "LiveServer",
    "LiveWorker",
    "MAX_FRAME_BYTES",
    "MAX_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "ServeSupervisor",
    "codec_for",
    "encode_frame",
    "error_frame",
    "hello_frame",
    "install_uvloop",
    "negotiate_version",
    "priority_from_wire",
    "priority_to_wire",
    "read_frame",
    "run_server",
]
