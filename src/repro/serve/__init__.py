"""Live serving: a wall-clock asyncio multiget KV service.

The real-time counterpart of the simulated backend tier: the same cluster
shape, calibrated service times and queue feedback, served over TCP with
a length-prefixed JSON protocol.  Drive it with :mod:`repro.loadgen`
(``repro loadgen`` / ``repro compare``) or start it standalone with
``repro serve``.
"""

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    error_frame,
    priority_from_wire,
    priority_to_wire,
    read_frame,
)
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_TIME_SCALE,
    LiveServer,
    run_server,
)
from .workers import DEFAULT_MAX_QUEUE, LiveJob, LiveWorker, QueueFullError

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "DEFAULT_TIME_SCALE",
    "LiveJob",
    "LiveServer",
    "LiveWorker",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "encode_frame",
    "error_frame",
    "priority_from_wire",
    "priority_to_wire",
    "read_frame",
    "run_server",
]
