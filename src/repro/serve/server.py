"""The live multiget KV service: an asyncio frontend over live workers.

:class:`LiveServer` binds a TCP socket and serves the length-prefixed JSON
protocol of :mod:`repro.serve.protocol`.  Behind the frontend sit
``n_servers`` :class:`~repro.serve.workers.LiveWorker` instances -- the
wall-clock analogue of the simulated backend tier, with the same cluster
shape, the same calibrated service-time model and the same queue-state
feedback on every response.  The server is strategy-agnostic by design:
replica choice, priorities and pacing all happen client-side (in
:mod:`repro.loadgen`), exactly as in the simulation, so one running server
can be driven by any registered strategy.

Fault injection arrives over the wire: ``admin`` frames throttle, crash,
restart or jitter individual workers, which is how the load generator maps
scenario fault schedules onto the live backend.
"""

from __future__ import annotations

import asyncio
import typing as _t

from ..cluster.server import congestion_ratio
from ..cluster.topology import ClusterSpec
from ..core.clock import WallClock
from ..sim.rng import StreamFactory
from ..workload.calibration import ServiceTimeModel
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    error_frame,
    priority_from_wire,
    read_frame,
)
from .workers import DEFAULT_MAX_QUEUE, LiveJob, LiveWorker, QueueFullError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..harness.config import ExperimentConfig

#: Default model-to-wall time stretch for live runs.  Model service times
#: are a few hundred microseconds; stretching 25x keeps every sleep well
#: above the event-loop timer resolution, so live percentiles measure
#: scheduling -- not timer quantization.
DEFAULT_TIME_SCALE = 25.0

#: Default TCP endpoint.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7411


class _Connection:
    """One client connection: a reader loop plus a serialized outbox."""

    def __init__(
        self,
        server: "LiveServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self._outbox: "asyncio.Queue[bytes]" = asyncio.Queue()
        self._sender = asyncio.get_running_loop().create_task(self._send_loop())
        self.closed = False

    def send(self, frame: _t.Mapping[str, _t.Any]) -> None:
        """Queue one frame for delivery (safe from worker callbacks)."""
        if not self.closed:
            self._outbox.put_nowait(encode_frame(frame))

    async def _send_loop(self) -> None:
        try:
            while True:
                data = await self._outbox.get()
                self.writer.write(data)
                await self.writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass

    async def close(self) -> None:
        self.closed = True
        # Flush queued frames first: the reply explaining *why* the
        # connection is closing (an error frame after a protocol
        # violation) must actually reach the peer.
        deadline = asyncio.get_running_loop().time() + 1.0
        while (
            not self._outbox.empty()
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.01)
        self._sender.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass


class LiveServer:
    """Asyncio multiget KV service mirroring the simulated backend tier."""

    def __init__(
        self,
        cluster: ClusterSpec,
        service_model: ServiceTimeModel,
        time_scale: float = DEFAULT_TIME_SCALE,
        seed: int = 1,
        scenario: _t.Optional[str] = None,
        congestion_interval: float = 0.1,
        congestion_threshold: float = 1.3,
        max_queue: int = DEFAULT_MAX_QUEUE,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.cluster = cluster
        self.service_model = service_model
        self.seed = int(seed)
        self.scenario = scenario
        self.congestion_interval = float(congestion_interval)
        self.congestion_threshold = float(congestion_threshold)
        self.max_queue = int(max_queue)
        self.host = host
        self.port = int(port)
        self.clock = WallClock(scale=time_scale)
        self.workers: _t.List[LiveWorker] = []
        self.connections: _t.List[_Connection] = []
        self.frames_received = 0
        self.congestion_frames_sent = 0
        self._server: _t.Optional[asyncio.AbstractServer] = None
        self._monitors: _t.List["asyncio.Task[None]"] = []

    @classmethod
    def from_config(
        cls,
        config: "ExperimentConfig",
        time_scale: float = DEFAULT_TIME_SCALE,
        seed: int = 1,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> "LiveServer":
        """A server matching one experiment config's backend tier."""
        return cls(
            cluster=config.cluster,
            service_model=config.workload().service_model,
            time_scale=time_scale,
            seed=seed,
            scenario=config.scenario,
            congestion_interval=config.congestion_check_interval,
            host=host,
            port=port,
            max_queue=max_queue,
        )

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start workers (port 0 picks an ephemeral one)."""
        streams = StreamFactory(self.seed)
        self.clock = WallClock(scale=self.clock.scale)  # t0 = serving start
        self.workers = [
            LiveWorker(
                clock=self.clock,
                worker_id=worker_id,
                cores=self.cluster.cores_per_server,
                service_model=self.service_model,
                service_stream=streams.stream(f"service.{worker_id}"),
                max_queue=self.max_queue,
            )
            for worker_id in range(self.cluster.n_servers)
        ]
        self._monitors = [
            asyncio.get_running_loop().create_task(
                self._congestion_monitor(worker),
                name=f"live-monitor.{worker.worker_id}",
            )
            for worker in self.workers
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for monitor in self._monitors:
            monitor.cancel()
        self._monitors = []
        for worker in self.workers:
            worker.shutdown()
        for connection in list(self.connections):
            await connection.close()
        self.connections = []

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(self, reader, writer)
        self.connections.append(connection)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ConnectionError:
                    break  # peer vanished mid-read; nothing left to answer
                except ProtocolError as exc:
                    connection.send(error_frame(str(exc)))
                    break
                if frame is None:
                    break
                self.frames_received += 1
                try:
                    self._dispatch(connection, frame)
                except (ProtocolError, TypeError, ValueError) as exc:
                    # Bad field values (a slowdown factor of 0, a
                    # non-numeric mean) reject the one frame, never the
                    # whole connection.
                    connection.send(error_frame(str(exc)))
        finally:
            if connection in self.connections:
                self.connections.remove(connection)
            await connection.close()

    def _dispatch(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        kind = frame.get("t")
        if kind == "op":
            self._handle_op(connection, frame)
        elif kind == "hello":
            self._handle_hello(connection, frame)
        elif kind == "admin":
            self._handle_admin(connection, frame)
        else:
            raise ProtocolError(f"unknown frame type {kind!r}")

    # -- data path ------------------------------------------------------------
    def _handle_op(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        try:
            rid = int(frame["rid"])
            worker_id = int(frame["server"])
            key = int(frame["key"])
            size = int(frame["size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad op frame: {exc}") from exc
        if not (0 <= worker_id < len(self.workers)):
            raise ProtocolError(f"op addressed to unknown worker {worker_id}")
        if size <= 0:
            raise ProtocolError(f"op {rid} has non-positive value size {size}")
        if "prio" not in frame:
            # Defaulting would silently hand the request the best possible
            # priority and corrupt any priority-scheduling measurement.
            raise ProtocolError(f"op {rid} is missing its priority")
        priority = priority_from_wire(frame["prio"])

        def respond(
            worker: LiveWorker, job: LiveJob, queue_wait: float, service: float
        ) -> None:
            connection.send(
                {
                    "t": "res",
                    "rid": job.rid,
                    "server": worker.worker_id,
                    "queue_wait": queue_wait,
                    "service": service,
                    "fb": worker.feedback(),
                }
            )

        job = LiveJob(
            rid=rid, key=key, value_size=size, priority=priority, respond=respond
        )
        try:
            self.workers[worker_id].submit(job)
        except QueueFullError as exc:
            connection.send(
                {"t": "error", "error": str(exc), "rid": rid, "server": worker_id}
            )

    # -- control plane -----------------------------------------------------------
    def _handle_hello(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        if frame.get("proto") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client {frame.get('proto')!r}, "
                f"server {PROTOCOL_VERSION}"
            )
        connection.send(
            {
                "t": "hello-ack",
                "proto": PROTOCOL_VERSION,
                "n_servers": self.cluster.n_servers,
                "cores_per_server": self.cluster.cores_per_server,
                "per_core_rate": self.cluster.per_core_rate,
                "time_scale": self.clock.scale,
                "scenario": self.scenario,
                "seed": self.seed,
            }
        )

    def _admin_targets(self, frame: _t.Dict[str, _t.Any]) -> _t.List[LiveWorker]:
        raw = frame.get("servers")
        if raw is None:
            return list(self.workers)
        try:
            ids = [int(s) for s in raw]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad admin target list {raw!r}") from exc
        for worker_id in ids:
            if not (0 <= worker_id < len(self.workers)):
                raise ProtocolError(f"admin targets unknown worker {worker_id}")
        return [self.workers[i] for i in ids]

    def _handle_admin(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        command = frame.get("cmd")
        targets = self._admin_targets(frame)
        if command == "slowdown":
            factor = float(frame.get("factor", 0))
            for worker in targets:
                worker.throttle(factor)
        elif command == "restore":
            factor = float(frame.get("factor", 0))
            for worker in targets:
                worker.restore(factor)
        elif command == "crash":
            for worker in targets:
                worker.pause()
        elif command == "resume":
            for worker in targets:
                worker.resume()
        elif command == "jitter":
            mean = float(frame.get("mean", 0.0))
            sigma = float(frame.get("sigma", 0.0))
            for worker in targets:
                worker.set_jitter(mean, sigma)
        elif command == "clear-jitter":
            for worker in targets:
                worker.set_jitter(0.0, 0.0)
        elif command == "stats":
            connection.send(
                {
                    "t": "stats",
                    "completed": sum(w.completed for w in self.workers),
                    "rejected": sum(w.rejected for w in self.workers),
                    "frames_received": self.frames_received,
                    "uptime_model_s": self.clock.now,
                    "workers": [w.stats() for w in self.workers],
                }
            )
            return
        else:
            raise ProtocolError(f"unknown admin command {command!r}")
        connection.send({"t": "admin-ack", "cmd": command})

    # -- congestion ---------------------------------------------------------------
    async def _congestion_monitor(self, worker: LiveWorker) -> None:
        """Mirror of the simulated congestion monitor: offered load plus
        backlog against capacity, a frame to every client when overloaded."""
        interval = self.congestion_interval
        while True:
            await self.clock.sleep(interval)
            ratio = congestion_ratio(
                worker.arrival_rate.rate(self.clock.now),
                worker.queue_length(),
                worker.capacity(),
                interval,
            )
            if ratio > self.congestion_threshold:
                frame = {
                    "t": "congestion",
                    "server": worker.worker_id,
                    "ratio": ratio,
                }
                for connection in self.connections:
                    connection.send(frame)
                    self.congestion_frames_sent += 1


async def run_server(
    config: "ExperimentConfig",
    time_scale: float = DEFAULT_TIME_SCALE,
    seed: int = 1,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    ready: _t.Optional[_t.Callable[[LiveServer], None]] = None,
) -> None:
    """Start a server from a config and serve until cancelled.

    ``ready`` is invoked with the bound server (its ``port`` resolved) --
    the CLI prints the endpoint, tests grab the ephemeral port.
    """
    server = LiveServer.from_config(
        config, time_scale=time_scale, seed=seed, host=host, port=port
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
