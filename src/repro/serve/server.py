"""The live multiget KV service: an asyncio frontend over live workers.

:class:`LiveServer` binds a TCP socket and serves the length-prefixed
frame protocol of :mod:`repro.serve.protocol` -- every connection starts
in v1 JSON and may negotiate up to the v2 binary codec in the handshake.
Behind the frontend sit :class:`~repro.serve.workers.LiveWorker`
instances -- the wall-clock analogue of the simulated backend tier, with
the same cluster shape, the same calibrated service-time model and the
same queue-state feedback on every response.  The server is
strategy-agnostic by design: replica choice, priorities and pacing all
happen client-side (in :mod:`repro.loadgen`), exactly as in the
simulation, so one running server can be driven by any registered
strategy.

One :class:`LiveServer` can host a *subset* of the cluster's workers
(``worker_ids``): that is how the multi-process supervisor
(:mod:`repro.serve.supervisor`) splits one logical cluster across
processes -- each process serves its shard group on its own port and
advertises its ``workers`` in the ``hello-ack``, and clients route ops
by worker id.

Fault injection arrives over the wire: ``admin`` frames throttle, crash,
restart or jitter individual workers, which is how the load generator maps
scenario fault schedules onto the live backend.
"""

from __future__ import annotations

import asyncio
import os
import sys
import typing as _t

from ..cluster.server import congestion_ratio
from ..cluster.topology import ClusterSpec
from ..core.clock import WallClock
from ..metrics.bus import prometheus_line, render_prometheus
from ..sim.rng import StreamFactory
from ..workload.calibration import ServiceTimeModel
from .codec import BINARY_CODEC, JSON_CODEC, codec_for
from .protocol import (
    BatchWriter,
    FrameStream,
    ProtocolError,
    error_frame,
    negotiate_version,
    priority_from_wire,
)
from .workers import DEFAULT_MAX_QUEUE, LiveJob, LiveWorker, QueueFullError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..harness.config import ExperimentConfig

#: Default model-to-wall time stretch for live runs.  Model service times
#: are a few hundred microseconds; stretching 25x keeps every sleep well
#: above the event-loop timer resolution, so live percentiles measure
#: scheduling -- not timer quantization.
DEFAULT_TIME_SCALE = 25.0

#: Default TCP endpoint.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7411


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy when the package is available.

    Purely optional: the stock asyncio loop is the tested baseline, and
    the container this repo grows in does not ship uvloop.  Returns
    whether the policy was installed.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    uvloop.install()
    return True


class _Connection:
    """One client connection: a framed reader plus a coalescing outbox.

    ``codec`` starts as v1 JSON and is switched (together with the frame
    stream's) when the handshake negotiates v2.  ``congestion`` records
    the client's opt-in to congestion broadcasts -- pool connections
    beyond an endpoint's first opt out so the credits controller sees
    each signal once.
    """

    def __init__(
        self,
        server: "LiveServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.stream = FrameStream(reader, JSON_CODEC)
        self.out = BatchWriter(writer)
        self.codec: _t.Any = JSON_CODEC
        self.congestion = True

    def send(self, frame: _t.Mapping[str, _t.Any]) -> None:
        """Queue one frame for delivery (safe from worker callbacks)."""
        self.out.send(self.codec.encode(frame))

    async def close(self) -> None:
        await self.out.close()


class LiveServer:
    """Asyncio multiget KV service mirroring the simulated backend tier."""

    def __init__(
        self,
        cluster: ClusterSpec,
        service_model: ServiceTimeModel,
        time_scale: float = DEFAULT_TIME_SCALE,
        seed: int = 1,
        scenario: _t.Optional[str] = None,
        congestion_interval: float = 0.1,
        congestion_threshold: float = 1.3,
        max_queue: int = DEFAULT_MAX_QUEUE,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        worker_ids: _t.Optional[_t.Sequence[int]] = None,
        stats_interval: _t.Optional[float] = None,
        metrics_port: _t.Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.service_model = service_model
        self.seed = int(seed)
        self.scenario = scenario
        self.congestion_interval = float(congestion_interval)
        self.congestion_threshold = float(congestion_threshold)
        self.max_queue = int(max_queue)
        self.host = host
        self.port = int(port)
        if worker_ids is None:
            worker_ids = range(cluster.n_servers)
        self.worker_ids: _t.Tuple[int, ...] = tuple(
            sorted(int(i) for i in worker_ids)
        )
        for worker_id in self.worker_ids:
            if not (0 <= worker_id < cluster.n_servers):
                raise ValueError(
                    f"worker id {worker_id} outside the cluster "
                    f"(n_servers={cluster.n_servers})"
                )
        self.stats_interval = (
            float(stats_interval) if stats_interval else None
        )
        #: Bind a plain-HTTP Prometheus exposition endpoint on this port
        #: (0 = ephemeral, ``None`` = no exporter); resolved after start().
        self.metrics_port = (
            int(metrics_port) if metrics_port is not None else None
        )
        self.clock = WallClock(scale=time_scale)
        self.workers: _t.Dict[int, LiveWorker] = {}
        self.connections: _t.List[_Connection] = []
        self.frames_received = 0
        self.congestion_frames_sent = 0
        #: Ops that arrived carrying a trace context (sampled requests).
        self.traced_ops = 0
        #: Latest client-side BusSnapshot per reporter (``bus-report``
        #: admin frames); served back via the ``client-bus`` command so
        #: ``repro watch`` sees cluster-wide client-side percentiles.
        self.client_bus: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
        #: I/O totals of connections that already closed (open connections
        #: are summed live in :meth:`io_counters`).
        self._closed_io = {"frames_sent": 0, "bytes_sent": 0, "writes": 0}
        self._server: _t.Optional[asyncio.AbstractServer] = None
        self._metrics_server: _t.Optional[asyncio.AbstractServer] = None
        self._monitors: _t.List["asyncio.Task[None]"] = []
        self._stats_task: _t.Optional["asyncio.Task[None]"] = None

    @classmethod
    def from_config(
        cls,
        config: "ExperimentConfig",
        time_scale: float = DEFAULT_TIME_SCALE,
        seed: int = 1,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        worker_ids: _t.Optional[_t.Sequence[int]] = None,
        stats_interval: _t.Optional[float] = None,
        metrics_port: _t.Optional[int] = None,
    ) -> "LiveServer":
        """A server matching one experiment config's backend tier."""
        return cls(
            cluster=config.cluster,
            service_model=config.workload().service_model,
            time_scale=time_scale,
            seed=seed,
            scenario=config.scenario,
            congestion_interval=config.congestion_check_interval,
            host=host,
            port=port,
            max_queue=max_queue,
            worker_ids=worker_ids,
            stats_interval=stats_interval,
            metrics_port=metrics_port,
        )

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start workers (port 0 picks an ephemeral one)."""
        streams = StreamFactory(self.seed)
        self.clock = WallClock(scale=self.clock.scale)  # t0 = serving start
        # Streams are keyed by *global* worker id, so a worker behaves
        # identically whether its cluster runs in one process or many.
        self.workers = {
            worker_id: LiveWorker(
                clock=self.clock,
                worker_id=worker_id,
                cores=self.cluster.cores_per_server,
                service_model=self.service_model,
                service_stream=streams.stream(f"service.{worker_id}"),
                max_queue=self.max_queue,
            )
            for worker_id in self.worker_ids
        }
        self._monitors = [
            asyncio.get_running_loop().create_task(
                self._congestion_monitor(worker),
                name=f"live-monitor.{worker.worker_id}",
            )
            for worker in self.workers.values()
        ]
        if self.stats_interval:
            self._stats_task = asyncio.get_running_loop().create_task(
                self._stats_loop(), name="live-stats"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        for monitor in self._monitors:
            monitor.cancel()
        self._monitors = []
        if self._stats_task is not None:
            self._stats_task.cancel()
            self._stats_task = None
        for worker in self.workers.values():
            worker.shutdown()
        for connection in list(self.connections):
            await connection.close()
        self.connections = []

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(self, reader, writer)
        self.connections.append(connection)
        try:
            while True:
                try:
                    frame = await connection.stream.read_frame()
                except ConnectionError:
                    break  # peer vanished mid-read; nothing left to answer
                except ProtocolError as exc:
                    connection.send(error_frame(str(exc)))
                    break
                if frame is None:
                    break
                self.frames_received += 1
                try:
                    self._dispatch(connection, frame)
                except (ProtocolError, TypeError, ValueError) as exc:
                    # Bad field values (a slowdown factor of 0, a
                    # non-numeric mean) reject the one frame, never the
                    # whole connection.
                    connection.send(error_frame(str(exc)))
        finally:
            if connection in self.connections:
                self.connections.remove(connection)
            for key in self._closed_io:
                self._closed_io[key] += getattr(connection.out, key)
            await connection.close()

    def _dispatch(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        kind = frame.get("t")
        if kind == "op":
            self._handle_op(connection, frame)
        elif kind == "hello":
            self._handle_hello(connection, frame)
        elif kind == "admin":
            self._handle_admin(connection, frame)
        else:
            raise ProtocolError(f"unknown frame type {kind!r}")

    # -- data path ------------------------------------------------------------
    def _handle_op(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        try:
            rid = int(frame["rid"])
            worker_id = int(frame["server"])
            key = int(frame["key"])
            size = int(frame["size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad op frame: {exc}") from exc
        worker = self.workers.get(worker_id)
        if worker is None:
            raise ProtocolError(f"op addressed to unknown worker {worker_id}")
        if size <= 0:
            raise ProtocolError(f"op {rid} has non-positive value size {size}")
        if "prio" not in frame:
            # Defaulting would silently hand the request the best possible
            # priority and corrupt any priority-scheduling measurement.
            raise ProtocolError(f"op {rid} is missing its priority")
        priority = priority_from_wire(frame["prio"])
        if frame.get("trace") is not None:
            # The context itself rides back implicitly: the res frame is
            # matched to the pending request client-side, and already
            # piggybacks the queue/service timestamps the span needs.
            self.traced_ops += 1

        def respond(
            worker: LiveWorker, job: LiveJob, queue_wait: float, service: float
        ) -> None:
            codec = connection.codec
            if codec is BINARY_CODEC:
                # Hot path: struct-pack the response without building the
                # frame dict (the dominant server-side send).
                fb = worker.feedback()
                connection.out.send(
                    codec.encode_res(
                        job.rid,
                        worker.worker_id,
                        queue_wait,
                        service,
                        fb["q"],
                        fb["s"],
                        fb["ew"],
                    )
                )
            else:
                connection.send(
                    {
                        "t": "res",
                        "rid": job.rid,
                        "server": worker.worker_id,
                        "queue_wait": queue_wait,
                        "service": service,
                        "fb": worker.feedback(),
                    }
                )

        job = LiveJob(
            rid=rid, key=key, value_size=size, priority=priority, respond=respond
        )
        try:
            worker.submit(job)
        except QueueFullError as exc:
            connection.send(
                {"t": "error", "error": str(exc), "rid": rid, "server": worker_id}
            )

    # -- control plane -----------------------------------------------------------
    def _handle_hello(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        version = negotiate_version(frame)
        connection.congestion = frame.get("congestion", True) is not False
        connection.send(
            {
                "t": "hello-ack",
                "proto": version,
                "n_servers": self.cluster.n_servers,
                "cores_per_server": self.cluster.cores_per_server,
                "per_core_rate": self.cluster.per_core_rate,
                "time_scale": self.clock.scale,
                "scenario": self.scenario,
                "seed": self.seed,
                "workers": list(self.worker_ids),
                # Capability advertisement: older clients ignore the key,
                # newer clients gate optional admin commands on it instead
                # of probing (a probe rejection would poison the stream).
                "features": ["trace-context", "bus-report", "client-bus"],
            }
        )
        # The ack itself travels in v1 (encoded above); everything after
        # it speaks the negotiated codec, in both directions.
        codec = codec_for(version)
        connection.codec = codec
        connection.stream.codec = codec

    def _admin_targets(self, frame: _t.Dict[str, _t.Any]) -> _t.List[LiveWorker]:
        raw = frame.get("servers")
        if raw is None:
            return list(self.workers.values())
        try:
            ids = [int(s) for s in raw]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad admin target list {raw!r}") from exc
        for worker_id in ids:
            if worker_id not in self.workers:
                raise ProtocolError(f"admin targets unknown worker {worker_id}")
        return [self.workers[i] for i in ids]

    def io_counters(self) -> _t.Dict[str, int]:
        """Cumulative send-side I/O totals (closed + open connections).

        ``writes`` vs ``frames_sent`` is the syscall-batching ratio the
        performance book reports.
        """
        totals = dict(self._closed_io)
        for connection in self.connections:
            for key in totals:
                totals[key] += getattr(connection.out, key)
        return totals

    # -- metrics export -----------------------------------------------------------
    def metrics_text(self) -> str:
        """This process's live state as Prometheus exposition text.

        The server-side half of the streamed metrics bus: the same
        signals the workers piggyback on every response (queue depth,
        in-service count), readable mid-run by anything that can speak
        HTTP (``--metrics-port``) or the admin plane (``repro watch``).
        """
        now = self.clock.now
        text = render_prometheus(
            {
                "connections": float(len(self.connections)),
                "frames_received": float(self.frames_received),
                "congestion_frames_sent": float(self.congestion_frames_sent),
                "traced_ops": float(self.traced_ops),
                "uptime_model_s": now,
            },
            prefix="repro_serve",
        )
        lines = [text.rstrip("\n")]
        # Outer loop over metric *names*: the exposition format wants all
        # samples of one metric in a single group under its TYPE line.
        for name, read in (
            ("queued", lambda w: float(w.queue_length())),
            ("in_service", lambda w: float(w.in_service)),
            ("completed", lambda w: float(w.completed)),
            ("rejected", lambda w: float(w.rejected)),
            ("arrival_rate", lambda w: w.arrival_rate.rate(now)),
            ("busy_time_s", lambda w: w.busy_time),
            ("speed_factor", lambda w: w.speed_factor),
        ):
            full = f"repro_serve_worker_{name}"
            lines.append(f"# HELP {full} per-worker live gauge {name}")
            lines.append(f"# TYPE {full} gauge")
            for worker_id in self.worker_ids:
                lines.append(
                    prometheus_line(
                        full, read(self.workers[worker_id]), {"worker": worker_id}
                    )
                )
        # Client-side windowed percentiles reported over the admin plane
        # (`bus-report`): the exporter view of the cluster-wide bus.
        if self.client_bus:
            for field in (
                "latency_p50_ms",
                "latency_p99_ms",
                "arrival_rate",
                "served_rate",
                "completed",
                "seq",
            ):
                full = f"repro_client_{field}"
                samples = [
                    (reporter, self.client_bus[reporter].get(field))
                    for reporter in sorted(self.client_bus)
                ]
                samples = [
                    (reporter, value)
                    for reporter, value in samples
                    if isinstance(value, (int, float))
                ]
                if not samples:
                    continue
                lines.append(
                    f"# HELP {full} client-side windowed bus field {field}"
                )
                lines.append(f"# TYPE {full} gauge")
                for reporter, value in samples:
                    lines.append(
                        prometheus_line(full, float(value), {"reporter": reporter})
                    )
        return "\n".join(lines) + "\n"

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1 responder: every request gets the metrics page.

        Deliberately not a web framework: one GET in, one text/plain out,
        connection closed -- all a Prometheus scrape needs.
        """
        try:
            while True:  # drain the request line and headers
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self.metrics_text().encode("utf-8")
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # a vanished scraper is not a server problem
        finally:
            writer.close()

    def _handle_admin(
        self, connection: _Connection, frame: _t.Dict[str, _t.Any]
    ) -> None:
        command = frame.get("cmd")
        targets = self._admin_targets(frame)
        if command == "slowdown":
            factor = float(frame.get("factor", 0))
            for worker in targets:
                worker.throttle(factor)
        elif command == "restore":
            factor = float(frame.get("factor", 0))
            for worker in targets:
                worker.restore(factor)
        elif command == "crash":
            for worker in targets:
                worker.pause()
        elif command == "resume":
            for worker in targets:
                worker.resume()
        elif command == "jitter":
            mean = float(frame.get("mean", 0.0))
            sigma = float(frame.get("sigma", 0.0))
            for worker in targets:
                worker.set_jitter(mean, sigma)
        elif command == "clear-jitter":
            for worker in targets:
                worker.set_jitter(0.0, 0.0)
        elif command == "bus-report":
            # A load generator pushing its client-side BusSnapshot; the
            # newest (by seq) per reporter wins, so reports may race.
            reporter = str(frame.get("reporter", ""))
            snapshot = frame.get("snapshot")
            if not reporter or not isinstance(snapshot, dict):
                raise ProtocolError("bus-report needs a reporter and a snapshot")
            previous = self.client_bus.get(reporter)
            if previous is None or float(snapshot.get("seq", 0)) >= float(
                previous.get("seq", 0)
            ):
                self.client_bus[reporter] = snapshot
        elif command == "client-bus":
            connection.send({"t": "client-bus", "snapshots": dict(self.client_bus)})
            return
        elif command == "stats":
            workers = [
                self.workers[i].stats() for i in self.worker_ids
            ]
            frame_out = {
                "t": "stats",
                "completed": sum(w.completed for w in self.workers.values()),
                "rejected": sum(w.rejected for w in self.workers.values()),
                "frames_received": self.frames_received,
                "traced_ops": self.traced_ops,
                "uptime_model_s": self.clock.now,
                "workers": workers,
            }
            frame_out.update(self.io_counters())
            connection.send(frame_out)
            return
        elif command == "metrics":
            connection.send({"t": "metrics", "text": self.metrics_text()})
            return
        else:
            raise ProtocolError(f"unknown admin command {command!r}")
        connection.send({"t": "admin-ack", "cmd": command})

    # -- congestion ---------------------------------------------------------------
    async def _congestion_monitor(self, worker: LiveWorker) -> None:
        """Mirror of the simulated congestion monitor: offered load plus
        backlog against capacity, a frame to every opted-in client when
        overloaded."""
        interval = self.congestion_interval
        while True:
            await self.clock.sleep(interval)
            ratio = congestion_ratio(
                worker.arrival_rate.rate(self.clock.now),
                worker.queue_length(),
                worker.capacity(),
                interval,
            )
            if ratio > self.congestion_threshold:
                frame = {
                    "t": "congestion",
                    "server": worker.worker_id,
                    "ratio": ratio,
                }
                for connection in self.connections:
                    if connection.congestion:
                        connection.send(frame)
                        self.congestion_frames_sent += 1

    # -- periodic stats -----------------------------------------------------------
    async def _stats_loop(self) -> None:
        """One stderr line per interval: per-worker queue depth and ops/s.

        The first brick of the streamed-metrics roadmap item, and the
        practical way to see what each process of a multi-process cluster
        is doing while a run hammers it.
        """
        assert self.stats_interval is not None
        loop = asyncio.get_running_loop()
        last_completed = {i: w.completed for i, w in self.workers.items()}
        last_time = loop.time()
        pid = os.getpid()
        while True:
            await asyncio.sleep(self.stats_interval)
            now = loop.time()
            elapsed = max(now - last_time, 1e-9)
            deltas = {
                i: w.completed - last_completed[i]
                for i, w in self.workers.items()
            }
            total_rate = sum(deltas.values()) / elapsed
            per_worker = " ".join(
                f"w{i}:q={self.workers[i].queue_length()}"
                f",ops/s={deltas[i] / elapsed:.0f}"
                for i in self.worker_ids
            )
            print(
                f"[repro-serve pid={pid}] ops/s={total_rate:.0f} "
                f"conns={len(self.connections)} {per_worker}",
                file=sys.stderr,
                flush=True,
            )
            last_completed = {i: w.completed for i, w in self.workers.items()}
            last_time = now


async def run_server(
    config: "ExperimentConfig",
    time_scale: float = DEFAULT_TIME_SCALE,
    seed: int = 1,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    ready: _t.Optional[_t.Callable[[LiveServer], None]] = None,
    worker_ids: _t.Optional[_t.Sequence[int]] = None,
    stats_interval: _t.Optional[float] = None,
    metrics_port: _t.Optional[int] = None,
) -> None:
    """Start a server from a config and serve until cancelled.

    ``ready`` is invoked with the bound server (its ``port`` resolved) --
    the CLI prints the endpoint, tests grab the ephemeral port.
    """
    server = LiveServer.from_config(
        config,
        time_scale=time_scale,
        seed=seed,
        host=host,
        port=port,
        worker_ids=worker_ids,
        stats_interval=stats_interval,
        metrics_port=metrics_port,
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
