"""The v2 binary wire codec: struct-packed data-plane frames.

Version 2 of the live protocol keeps v1's outer framing (a 4-byte
big-endian length prefix, ``MAX_FRAME_BYTES`` cap) and replaces the JSON
payload with a compact binary form.  The first payload byte is a frame
*tag*; the three data-plane frames that dominate the wire -- ``op``,
``res`` and ``congestion`` -- are fixed-layout little-endian structs,
while the control plane (handshake, admin, stats, errors) stays JSON
behind a dedicated tag, so irregular, rarely-sent frames keep their
flexibility without taxing the hot path.

Size ledger (the reason v2 exists; also in ``docs/performance.md``):

=============  ==========  ============  =======
frame          v1 JSON     v2 binary     shrink
=============  ==========  ============  =======
``op``         ~95 bytes   24 + 8/prio   ~2.4x
``res``        ~150 bytes  41 bytes      ~3.7x
``congestion`` ~60 bytes   15 bytes      ~4x
=============  ==========  ============  =======

Both codecs expose the same surface -- ``encode(frame) -> bytes`` (length
prefix included) and ``decode(buf, start, end, at) -> dict`` -- and decode
back to the *same dict shapes* v1 produces, so everything above the codec
(server dispatch, transport reassembly, fault drivers) is
version-agnostic.  ``at`` is the absolute stream offset of the payload,
threaded into every :class:`ProtocolError` so a corrupt frame reports
*where* in the byte stream it sat.

Decoding uses ``struct.unpack_from`` directly against the connection's
receive buffer (a ``bytearray``) at frame offsets -- no per-frame slice
copies on the binary path.
"""

from __future__ import annotations

import json
import struct
import typing as _t

from .protocol import MAX_FRAME_BYTES, ProtocolError, _LENGTH

#: Frame tags (first payload byte) of the binary protocol.
TAG_OP = 0x01
TAG_RES = 0x02
TAG_CONGESTION = 0x03
#: An op carrying a 64-bit trace context (sampled request).  A separate
#: tag rather than an optional suffix: ``TAG_OP`` decode enforces an
#: exact length, which is what catches truncation, so the traced layout
#: gets its own exact length instead of weakening that check.
TAG_OP_TRACE = 0x04
#: Control-plane frames (hello, hello-ack, admin, admin-ack, stats, error)
#: travel as JSON behind this tag.
TAG_JSON = 0x7F

_OP_HEAD = struct.Struct("<IHqIB")  # rid, server, key, size, n_priorities
_PRIO = struct.Struct("<d")
_TRACE = struct.Struct("<Q")  # 64-bit trace context, appended to the op
_RES = struct.Struct("<IHddIHd")  # rid, server, queue_wait, service, q, s, ew
_CONGESTION = struct.Struct("<Hd")  # server, ratio

#: Hard field bounds of the packed layouts (validated on encode so a bad
#: value raises :class:`ProtocolError` instead of ``struct.error``).
_U16 = 1 << 16
_U32 = 1 << 32
_I64 = 1 << 63
_U64 = 1 << 64


class JsonCodec:
    """Protocol v1: length-prefixed compact JSON (the inspectable form)."""

    version = 1

    def encode(self, frame: _t.Mapping[str, _t.Any]) -> bytes:
        payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
        return _LENGTH.pack(len(payload)) + payload

    def decode(
        self,
        buf: _t.Union[bytes, bytearray],
        start: int,
        end: int,
        at: int = 0,
    ) -> _t.Dict[str, _t.Any]:
        try:
            frame = json.loads(bytes(buf[start:end]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"bad frame payload at byte {at}: {exc}") from exc
        if not isinstance(frame, dict) or "t" not in frame:
            raise ProtocolError(
                f"frame at byte {at} is not a typed object: {frame!r}"
            )
        return frame


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


class BinaryCodec:
    """Protocol v2: tagged struct-packed frames (the fast form)."""

    version = 2

    # -- encode ---------------------------------------------------------------
    def encode(self, frame: _t.Mapping[str, _t.Any]) -> bytes:
        kind = frame.get("t")
        if kind == "op":
            trace = frame.get("trace")
            if trace is not None:
                return self.encode_op_traced(
                    frame["rid"],
                    frame["server"],
                    frame["key"],
                    frame["size"],
                    frame["prio"],
                    trace,
                )
            return self.encode_op(
                frame["rid"],
                frame["server"],
                frame["key"],
                frame["size"],
                frame["prio"],
            )
        if kind == "res":
            fb = frame.get("fb", {})
            return self.encode_res(
                frame["rid"],
                frame["server"],
                frame["queue_wait"],
                frame["service"],
                fb.get("q", 0),
                fb.get("s", 0),
                fb.get("ew", 0.0),
            )
        if kind == "congestion":
            server = int(frame["server"])
            _check(0 <= server < _U16, f"congestion server {server} out of range")
            payload = bytes((TAG_CONGESTION,)) + _CONGESTION.pack(
                server, float(frame["ratio"])
            )
            return _LENGTH.pack(len(payload)) + payload
        # Control plane: JSON behind a tag byte.
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if len(body) + 1 > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(body)} bytes exceeds the cap")
        return _LENGTH.pack(len(body) + 1) + bytes((TAG_JSON,)) + body

    def encode_op(
        self,
        rid: int,
        server: int,
        key: int,
        size: int,
        priority: _t.Sequence[float],
    ) -> bytes:
        """Fast path used by the transport and the firehose per request.

        One combined bounds test and one preallocated buffer: this runs
        once per op, so it avoids the per-field ``_check`` calls and the
        chained concatenations of the general path.
        """
        n_prio = len(priority)
        if not (
            0 <= rid < _U32
            and 0 <= server < _U16
            and -_I64 <= key < _I64
            and 0 <= size < _U32
            and n_prio < 256
        ):
            self._op_bounds_error(rid, server, key, size, n_prio)
        frame = bytearray(5 + _OP_HEAD.size + n_prio * _PRIO.size)
        _LENGTH.pack_into(frame, 0, len(frame) - 4)
        frame[4] = TAG_OP
        _OP_HEAD.pack_into(frame, 5, rid, server, key, size, n_prio)
        offset = 5 + _OP_HEAD.size
        for p in priority:
            _PRIO.pack_into(frame, offset, p)
            offset += 8
        return bytes(frame)

    def encode_op_traced(
        self,
        rid: int,
        server: int,
        key: int,
        size: int,
        priority: _t.Sequence[float],
        trace: int,
    ) -> bytes:
        """Fast path for a sampled op: the op layout plus a 64-bit context."""
        n_prio = len(priority)
        if not (
            0 <= rid < _U32
            and 0 <= server < _U16
            and -_I64 <= key < _I64
            and 0 <= size < _U32
            and n_prio < 256
        ):
            self._op_bounds_error(rid, server, key, size, n_prio)
        _check(0 <= trace < _U64, f"op trace context {trace} out of range")
        frame = bytearray(5 + _OP_HEAD.size + n_prio * _PRIO.size + _TRACE.size)
        _LENGTH.pack_into(frame, 0, len(frame) - 4)
        frame[4] = TAG_OP_TRACE
        _OP_HEAD.pack_into(frame, 5, rid, server, key, size, n_prio)
        offset = 5 + _OP_HEAD.size
        for p in priority:
            _PRIO.pack_into(frame, offset, p)
            offset += 8
        _TRACE.pack_into(frame, offset, trace)
        return bytes(frame)

    @staticmethod
    def _op_bounds_error(
        rid: int, server: int, key: int, size: int, n_prio: int
    ) -> None:
        _check(0 <= rid < _U32, f"op rid {rid} out of range")
        _check(0 <= server < _U16, f"op server {server} out of range")
        _check(-_I64 <= key < _I64, f"op key {key} out of range")
        _check(0 <= size < _U32, f"op size {size} out of range")
        raise ProtocolError(f"op priority tuple of {n_prio} too long")

    def encode_res(
        self,
        rid: int,
        server: int,
        queue_wait: float,
        service: float,
        queue_length: int,
        in_service: int,
        ewma_service: float,
    ) -> bytes:
        """Fast path used by the server's completion callback."""
        if not (
            0 <= rid < _U32
            and 0 <= server < _U16
            and 0 <= queue_length < _U32
            and 0 <= in_service < _U16
        ):
            self._res_bounds_error(rid, server, queue_length, in_service)
        frame = bytearray(5 + _RES.size)
        _LENGTH.pack_into(frame, 0, _RES.size + 1)
        frame[4] = TAG_RES
        _RES.pack_into(
            frame,
            5,
            rid,
            server,
            float(queue_wait),
            float(service),
            queue_length,
            in_service,
            float(ewma_service),
        )
        return bytes(frame)

    @staticmethod
    def _res_bounds_error(
        rid: int, server: int, queue_length: int, in_service: int
    ) -> None:
        _check(0 <= rid < _U32, f"res rid {rid} out of range")
        _check(0 <= server < _U16, f"res server {server} out of range")
        _check(
            0 <= queue_length < _U32, f"res queue length {queue_length} out of range"
        )
        raise ProtocolError(f"res in_service {in_service} out of range")

    # -- decode ---------------------------------------------------------------
    def decode(
        self,
        buf: _t.Union[bytes, bytearray],
        start: int,
        end: int,
        at: int = 0,
    ) -> _t.Dict[str, _t.Any]:
        length = end - start
        if length < 1:
            raise ProtocolError(f"empty binary frame at byte {at}")
        tag = buf[start]
        body = start + 1
        if tag == TAG_OP:
            if length - 1 < _OP_HEAD.size:
                raise ProtocolError(
                    f"op frame truncated at byte {at}: {length - 1} of "
                    f"{_OP_HEAD.size} header bytes"
                )
            rid, server, key, size, n_prio = _OP_HEAD.unpack_from(buf, body)
            want = _OP_HEAD.size + n_prio * _PRIO.size
            if length - 1 != want:
                raise ProtocolError(
                    f"op frame at byte {at} carries {length - 1} bytes but "
                    f"declares {n_prio} priorities ({want} bytes)"
                )
            offset = body + _OP_HEAD.size
            # A tuple, not a list: `priority_from_wire` trusts tuples from
            # this decoder (the doubles are valid by construction), so the
            # server skips re-validating every element per op.
            priority = tuple(
                _PRIO.unpack_from(buf, offset + i * _PRIO.size)[0]
                for i in range(n_prio)
            )
            return {
                "t": "op",
                "rid": rid,
                "server": server,
                "key": key,
                "size": size,
                "prio": priority,
            }
        if tag == TAG_OP_TRACE:
            if length - 1 < _OP_HEAD.size:
                raise ProtocolError(
                    f"traced op frame truncated at byte {at}: {length - 1} of "
                    f"{_OP_HEAD.size} header bytes"
                )
            rid, server, key, size, n_prio = _OP_HEAD.unpack_from(buf, body)
            want = _OP_HEAD.size + n_prio * _PRIO.size + _TRACE.size
            if length - 1 != want:
                raise ProtocolError(
                    f"traced op frame at byte {at} carries {length - 1} bytes "
                    f"but declares {n_prio} priorities ({want} bytes)"
                )
            offset = body + _OP_HEAD.size
            priority = tuple(
                _PRIO.unpack_from(buf, offset + i * _PRIO.size)[0]
                for i in range(n_prio)
            )
            (trace,) = _TRACE.unpack_from(buf, offset + n_prio * _PRIO.size)
            return {
                "t": "op",
                "rid": rid,
                "server": server,
                "key": key,
                "size": size,
                "prio": priority,
                "trace": trace,
            }
        if tag == TAG_RES:
            if length - 1 != _RES.size:
                raise ProtocolError(
                    f"res frame at byte {at}: {length - 1} bytes, "
                    f"expected {_RES.size}"
                )
            rid, server, queue_wait, service, q, s, ew = _RES.unpack_from(buf, body)
            return {
                "t": "res",
                "rid": rid,
                "server": server,
                "queue_wait": queue_wait,
                "service": service,
                "fb": {"q": q, "s": s, "ew": ew},
            }
        if tag == TAG_CONGESTION:
            if length - 1 != _CONGESTION.size:
                raise ProtocolError(
                    f"congestion frame at byte {at}: {length - 1} bytes, "
                    f"expected {_CONGESTION.size}"
                )
            server, ratio = _CONGESTION.unpack_from(buf, body)
            return {"t": "congestion", "server": server, "ratio": ratio}
        if tag == TAG_JSON:
            try:
                frame = json.loads(bytes(buf[body:end]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"bad control frame at byte {at}: {exc}"
                ) from exc
            if not isinstance(frame, dict) or "t" not in frame:
                raise ProtocolError(
                    f"control frame at byte {at} is not a typed object: {frame!r}"
                )
            return frame
        raise ProtocolError(
            f"unknown binary frame tag 0x{tag:02x} at byte {at}"
        )


#: Singleton codec instances (both are stateless).
JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

_CODECS: _t.Dict[int, _t.Union[JsonCodec, BinaryCodec]] = {
    1: JSON_CODEC,
    2: BINARY_CODEC,
}


def codec_for(version: int) -> _t.Union[JsonCodec, BinaryCodec]:
    """The codec realizing one negotiated protocol version."""
    codec = _CODECS.get(version)
    if codec is None:
        raise ProtocolError(f"unsupported protocol version {version!r}")
    return codec
