"""The multi-process cluster supervisor behind ``repro serve --procs N``.

One logical cluster, many OS processes: the supervisor partitions the
config's ``n_servers`` workers into contiguous shard groups
(:func:`~repro.cluster.addresses.worker_groups`) and forks one child per
group, each running a plain :class:`~repro.serve.server.LiveServer` that
hosts only its subset of worker ids on its own TCP port.  Clients learn
each endpoint's workers from its ``hello-ack`` and route ops by worker
id -- no process ever proxies for another, so the data path stays one
hop, exactly like the simulated tier.

The supervisor uses the ``fork`` start method and **must be started from
synchronous code, before any event loop runs in the parent** (forking a
live loop duplicates its internal state).  Every CLI/benchmark caller
starts the cluster first and only then enters ``asyncio.run``.  Children
report their bound endpoint over a pipe, so ``base_port=0`` (ephemeral
ports everywhere) works for tests and benchmarks that cannot reserve
fixed ports.
"""

from __future__ import annotations

import multiprocessing
import typing as _t

from ..cluster.addresses import derive_endpoints, worker_groups
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_TIME_SCALE,
    install_uvloop,
    run_server,
)
from .workers import DEFAULT_MAX_QUEUE

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..harness.config import ExperimentConfig

#: How long a forked child may take to bind its socket and report back.
READY_TIMEOUT_S = 15.0


def _serve_process(
    config: "ExperimentConfig",
    worker_ids: _t.Sequence[int],
    time_scale: float,
    seed: int,
    host: str,
    port: int,
    stats_interval: _t.Optional[float],
    pipe: _t.Any,
    use_uvloop: bool,
    metrics_port: _t.Optional[int] = None,
) -> None:
    """Child entry: serve one shard group until terminated."""
    import asyncio

    if use_uvloop:
        install_uvloop()

    def ready(server: _t.Any) -> None:
        pipe.send(("ready", server.host, server.port, server.metrics_port))

    try:
        asyncio.run(
            run_server(
                config,
                time_scale=time_scale,
                seed=seed,
                host=host,
                port=port,
                ready=ready,
                worker_ids=worker_ids,
                stats_interval=stats_interval,
                metrics_port=metrics_port,
            )
        )
    except KeyboardInterrupt:
        pass
    except Exception as exc:  # surface bind failures etc. to the parent
        try:
            pipe.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass


class ServeSupervisor:
    """Forks and owns one server process per shard group.

    Synchronous by design (see module docstring); use as a context
    manager or pair :meth:`start` with :meth:`stop`.  ``endpoints`` and
    ``groups`` describe the running cluster after :meth:`start`.
    """

    def __init__(
        self,
        config: "ExperimentConfig",
        procs: int,
        time_scale: float = DEFAULT_TIME_SCALE,
        seed: int = 1,
        host: str = DEFAULT_HOST,
        base_port: int = DEFAULT_PORT,
        stats_interval: _t.Optional[float] = None,
        use_uvloop: bool = False,
        metrics_base_port: _t.Optional[int] = None,
    ) -> None:
        self.config = config
        self.procs = int(procs)
        self.time_scale = float(time_scale)
        self.seed = int(seed)
        self.host = host
        self.base_port = int(base_port)
        self.stats_interval = stats_interval
        self.use_uvloop = bool(use_uvloop)
        #: Child ``index`` exports Prometheus text on
        #: ``metrics_base_port + index`` (0 = ephemeral everywhere).
        self.metrics_base_port = (
            int(metrics_base_port) if metrics_base_port is not None else None
        )
        self.groups = worker_groups(config.cluster.n_servers, self.procs)
        self.endpoints: _t.List[_t.Tuple[str, int]] = []
        #: Resolved per-child metrics ports after start() (None = no export).
        self.metrics_ports: _t.List[_t.Optional[int]] = []
        self._children: _t.List[multiprocessing.process.BaseProcess] = []

    def start(self) -> _t.List[_t.Tuple[str, int]]:
        """Fork the children, wait for every socket, return the endpoints."""
        if self._children:
            raise RuntimeError("supervisor already started")
        context = multiprocessing.get_context("fork")
        requested = derive_endpoints(self.host, self.base_port, self.procs)
        pipes = []
        for index, group in enumerate(self.groups):
            parent_end, child_end = context.Pipe(duplex=False)
            if self.metrics_base_port is None:
                metrics_port: _t.Optional[int] = None
            elif self.metrics_base_port == 0:
                metrics_port = 0
            else:
                metrics_port = self.metrics_base_port + index
            child = context.Process(
                target=_serve_process,
                args=(
                    self.config,
                    group,
                    self.time_scale,
                    self.seed,
                    requested[index][0],
                    requested[index][1],
                    self.stats_interval,
                    child_end,
                    self.use_uvloop,
                    metrics_port,
                ),
                name=f"repro-serve-{index}",
                daemon=True,
            )
            child.start()
            child_end.close()
            self._children.append(child)
            pipes.append(parent_end)
        try:
            ready = [self._await_ready(pipe) for pipe in pipes]
            self.endpoints = [(host, port) for host, port, _ in ready]
            self.metrics_ports = [metrics for _, _, metrics in ready]
        except Exception:
            self.stop()
            raise
        finally:
            for pipe in pipes:
                pipe.close()
        return list(self.endpoints)

    @staticmethod
    def _await_ready(pipe: _t.Any) -> _t.Tuple[str, int, _t.Optional[int]]:
        if not pipe.poll(READY_TIMEOUT_S):
            raise RuntimeError(
                f"server process not ready within {READY_TIMEOUT_S}s"
            )
        message = pipe.recv()
        if message[0] == "ready":
            metrics = message[3] if len(message) > 3 else None
            return (message[1], message[2], metrics)
        raise RuntimeError(f"server process failed to start: {message[1]}")

    @property
    def alive(self) -> bool:
        return bool(self._children) and all(
            child.is_alive() for child in self._children
        )

    def stop(self) -> None:
        """Terminate every child and reap it."""
        for child in self._children:
            if child.is_alive():
                child.terminate()
        for child in self._children:
            child.join(timeout=5.0)
            if child.is_alive():  # pragma: no cover - last resort
                child.kill()
                child.join(timeout=5.0)
        self._children = []
        self.endpoints = []
        self.metrics_ports = []

    def __enter__(self) -> "ServeSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: _t.Any) -> None:
        self.stop()
