"""The live load generator: scenario replay against a running service.

:func:`run_live` is the wall-clock mirror of
:func:`repro.harness.runner.run_experiment`: the same
:class:`~repro.harness.config.ExperimentConfig`, the same builder-registry
strategy assembly, the same open-loop workload replay and the same
:class:`~repro.harness.runner.RunResult` out -- except requests travel over
TCP to live asyncio workers instead of through the event calendar.  Fault
schedules replay too: scripted events become admin frames (slowdown,
crash/restart, response jitter) or client-side arrival compression (flash
crowds), window-for-window with the simulated injector.

Because the output is a genuine ``RunResult``, everything downstream --
:func:`~repro.harness.results.compare_strategies`, the analysis tables,
the summary JSON schema -- is *shared* with the simulation rather than
imitated, which is what the sim<->live differential harness
(:mod:`repro.loadgen.compare`) relies on.
"""

from __future__ import annotations

import asyncio
import os
import time
import typing as _t

from ..cluster.client import Client
from ..cluster.faults import (
    CrashFault,
    FaultEvent,
    FaultSchedule,
    FlashCrowdFault,
    NetworkJitterFault,
    RebalanceFault,
    SlowdownFault,
    drive_fault_windows,
    validate_rebalance_feasibility,
    windows_extras,
)
from ..cluster.remediation import RemediationDriver, build_remediation
from ..core.clock import WallClock
from ..harness.builders import ClusterContext, ModelBuilder, get_builder
from ..harness.config import ExperimentConfig
from ..harness.results import compare_strategies
from ..harness.runner import RunResult
from ..metrics.counters import MetricRegistry
from ..metrics.reservoir import ExactSample
from ..placement import MutablePlacement
from ..serve.protocol import MAX_PROTOCOL_VERSION
from ..serve.server import DEFAULT_HOST, DEFAULT_PORT
from ..sim.rng import StreamFactory
from .transport import LiveTransport, LiveTransportError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.messages import TaskCompletion
    from ..trace import TraceRecorder


class _LiveTracker:
    """Warmup-filtered completion counting (sim tracker, asyncio edition)."""

    def __init__(self, n_tasks: int, warmup_tasks: int) -> None:
        self.n_tasks = n_tasks
        self.warmup_tasks = warmup_tasks
        self.task_latencies = ExactSample()
        self.completed = 0
        self.measured = 0
        self.last_completion_at = 0.0
        self.done = asyncio.Event()

    def on_complete(self, completion: "TaskCompletion") -> None:
        self.completed += 1
        self.last_completion_at = completion.completed_at
        if completion.task.task_id >= self.warmup_tasks:
            self.measured += 1
            self.task_latencies.record(completion.latency)
        if self.completed == self.n_tasks:
            self.done.set()


class LiveFaultDriver:
    """Replays a :class:`FaultSchedule` against a live service.

    Event-for-event mapping from the simulated injector:

    ==================  =================================================
    simulated event      live realization
    ==================  =================================================
    SlowdownFault        ``admin slowdown`` / ``restore`` (service-time
                         multiplier on the targeted workers)
    CrashFault           ``admin crash`` / ``resume`` (workers stop
                         starting requests; queues survive)
    NetworkJitterFault   ``admin jitter``: extra lognormal per-response
                         delay standing in for both inflated network
                         directions on a loopback link
    FlashCrowdFault      client-side arrival compression via
                         :meth:`arrival_scale` (same as the simulation)
    RebalanceFault       client-side ring swap on the shared
                         :class:`~repro.placement.MutablePlacement`: the
                         live workers serve whatever they are sent, so a
                         decommission is purely a routing change -- which
                         is exactly what the simulation does too
    ==================  =================================================
    """

    def __init__(
        self,
        clock: WallClock,
        schedule: FaultSchedule,
        transport: LiveTransport,
        one_way_latency: float,
        placement: _t.Optional["MutablePlacement"] = None,
    ) -> None:
        validate_rebalance_feasibility(schedule, placement)
        self.clock = clock
        self.schedule = schedule
        self.transport = transport
        self.placement = placement
        self.one_way_latency = float(one_way_latency)
        self.windows: _t.Dict[str, int] = {e.kind: 0 for e in schedule.events}
        self._crowd_scale = 1.0
        self._jitter_depth = 0
        #: Windows currently applied and not yet reverted (for reset()).
        self._open: _t.List[FaultEvent] = []

    def start(self) -> None:
        for index, event in enumerate(self.schedule.events):
            self.clock.process(
                drive_fault_windows(
                    self.clock,
                    event,
                    self._apply_open,
                    self._revert_closed,
                    self._count_window,
                ),
                name=f"live-fault.{event.kind}.{index}",
            )

    def arrival_scale(self) -> float:
        return self._crowd_scale

    def _apply_open(self, event: FaultEvent) -> None:
        self._apply(event)
        self._open.append(event)

    def _revert_closed(self, event: FaultEvent) -> None:
        self._open.remove(event)
        self._revert(event)

    def _count_window(self, event: FaultEvent) -> None:
        self.windows[event.kind] = self.windows.get(event.kind, 0) + 1

    def reset(self) -> None:
        """Revert every still-open window (run teardown).

        The run can end -- normally or by timeout -- mid-window; without
        this, a throttled or crashed worker would stay degraded for the
        next run against the same server.  Call after the driver's
        processes have been cancelled, so no window re-opens afterwards.
        """
        while self._open:
            self._revert(self._open.pop())

    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, SlowdownFault):
            self.transport.admin(
                {
                    "t": "admin",
                    "cmd": "slowdown",
                    "servers": list(event.servers),
                    "factor": event.factor,
                }
            )
        elif isinstance(event, CrashFault):
            self.transport.admin(
                {"t": "admin", "cmd": "crash", "servers": list(event.servers)}
            )
        elif isinstance(event, NetworkJitterFault):
            self._jitter_depth += 1
            # Two degraded one-way hops' worth of extra delay per response.
            mean = max(2.0 * self.one_way_latency * event.factor, 1e-6)
            self.transport.admin(
                {"t": "admin", "cmd": "jitter", "mean": mean, "sigma": event.sigma}
            )
        elif isinstance(event, FlashCrowdFault):
            self._crowd_scale *= event.multiplier
        elif isinstance(event, RebalanceFault):
            assert self.placement is not None  # enforced at construction
            self.placement.exclude(event.servers)

    def _revert(self, event: FaultEvent) -> None:
        if isinstance(event, SlowdownFault):
            self.transport.admin(
                {
                    "t": "admin",
                    "cmd": "restore",
                    "servers": list(event.servers),
                    "factor": event.factor,
                }
            )
        elif isinstance(event, CrashFault):
            self.transport.admin(
                {"t": "admin", "cmd": "resume", "servers": list(event.servers)}
            )
        elif isinstance(event, NetworkJitterFault):
            self._jitter_depth -= 1
            if self._jitter_depth == 0:
                self.transport.admin({"t": "admin", "cmd": "clear-jitter"})
        elif isinstance(event, FlashCrowdFault):
            self._crowd_scale /= event.multiplier
        elif isinstance(event, RebalanceFault):
            assert self.placement is not None  # enforced at construction
            self.placement.readmit(event.servers)

    def extras(self) -> _t.Dict[str, float]:
        return windows_extras(self.windows)


def _validate_shape(config: ExperimentConfig, ack: _t.Mapping[str, _t.Any]) -> None:
    """The server must match the config's backend tier, or nothing the
    client computes (placement, capacities, costs) is meaningful."""
    mismatches = []
    for field, expected in (
        ("n_servers", config.cluster.n_servers),
        ("cores_per_server", config.cluster.cores_per_server),
        ("per_core_rate", config.cluster.per_core_rate),
    ):
        if ack.get(field) != expected:
            mismatches.append(f"{field}: server {ack.get(field)!r} != {expected!r}")
    server_scenario = ack.get("scenario")
    if (
        server_scenario is not None
        and config.scenario is not None
        and server_scenario != config.scenario
    ):
        mismatches.append(
            f"scenario: server {server_scenario!r} != {config.scenario!r}"
        )
    if mismatches:
        raise LiveTransportError(
            "server/config mismatch: " + "; ".join(mismatches)
        )


async def run_live(
    config: ExperimentConfig,
    seed: int = 1,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    wall_timeout: _t.Optional[float] = None,
    endpoints: _t.Optional[_t.Sequence[_t.Tuple[str, int]]] = None,
    pool: int = 1,
    protocol: int = MAX_PROTOCOL_VERSION,
) -> RunResult:
    """Drive one (config, seed) load-generation run against a live cluster.

    ``endpoints`` lists every server process of a multi-process cluster
    (defaults to the single ``(host, port)``); ``pool`` opens that many
    connections per endpoint; ``protocol`` caps codec negotiation (1
    pins JSON).
    """
    builder = get_builder(config.strategy)
    if isinstance(builder, ModelBuilder):
        raise ValueError(
            f"strategy {config.strategy!r} is the unrealizable global-queue "
            "model; it has no live realization (that is the paper's point)"
        )
    if endpoints is None:
        endpoints = [(host, port)]
    transport = await LiveTransport.connect(
        endpoints, pool=pool, protocol=protocol
    )
    try:
        _validate_shape(config, transport.ack)
    except BaseException:
        await transport.close()
        raise
    clock = transport.clock
    feeder: _t.Optional["asyncio.Task[None]"] = None
    done_waiter: _t.Optional["asyncio.Task[bool]"] = None
    faults: _t.Optional[LiveFaultDriver] = None
    remediation: _t.Optional[RemediationDriver] = None
    try:
        stats_before = await asyncio.wait_for(transport.fetch_stats(), timeout=10)
        streams = StreamFactory(seed)
        metrics = MetricRegistry()
        workload = config.workload()
        # Same mutable wrapper as the simulated runner, so rebalance
        # windows swap the ring for sim and live identically.
        placement = MutablePlacement(config.cluster.make_placement())
        placement.validate()
        ctx = ClusterContext(
            config=config,
            env=clock,
            network=transport,
            placement=placement,
            service_model=workload.service_model,
            streams=streams,
            metrics=metrics,
        )
        warmup_tasks = int(config.warmup_fraction * config.n_tasks)
        tracker = _LiveTracker(config.n_tasks, warmup_tasks)

        # Same recorder as the simulated runner: sampling is a pure
        # function of the task id, so a live run and its sim twin sample
        # the *same* tasks.  The transport hook propagates the context
        # over the wire per sampled op.
        recorder: _t.Optional["TraceRecorder"] = None
        if config.trace_sample > 0.0:
            from ..trace import TraceRecorder as _TraceRecorder

            recorder = _TraceRecorder(clock, config.trace_sample, warmup_tasks)
            transport.trace_sampler = recorder.wire_trace_id

        # Same late-bound pattern as the simulated runner: the driver is
        # assembled after the strategies exist, completions only start
        # arriving once the feeder runs.
        on_complete: _t.Callable[["TaskCompletion"], None] = tracker.on_complete
        if config.remediation != "off" or recorder is not None:
            _recorder = recorder

            def on_complete(completion: "TaskCompletion") -> None:
                if config.remediation != "off":
                    remediation.observe_completion(completion.latency)
                if _recorder is not None:
                    _recorder.on_complete(completion)
                tracker.on_complete(completion)

        # Same construction order as the simulated runner: shared machinery,
        # then clients (strategy before client).
        builder.build_shared(ctx)
        clients: _t.List[Client] = []
        strategies: _t.List[_t.Any] = []
        for client_id in range(config.n_clients):
            strategy = builder.build_client_strategy(ctx, client_id)
            strategies.append(strategy)
            clients.append(
                Client(
                    clock,
                    client_id=client_id,
                    network=transport,
                    strategy=strategy,
                    metrics=metrics,
                    on_complete=on_complete,
                    request_observer=(
                        recorder.observe_request if recorder is not None else None
                    ),
                )
            )
        faults = LiveFaultDriver(
            clock,
            config.faults(),
            transport,
            config.cluster.one_way_latency,
            placement=placement,
        )
        # The live substrate's backlog view is the piggybacked feedback
        # the transport already receives on every result frame.
        remediation = build_remediation(
            config, clock, placement, ctx.shared, strategies,
            transport.backlog_depths,
        )
        # Close the cluster-wide observability loop: stream this load
        # generator's client-side BusSnapshots to every endpoint over the
        # admin plane, so `repro watch` and the Prometheus exporter see
        # windowed client-side percentiles even for a --procs N cluster.
        # Gated on the server's capability advertisement (old servers
        # would reject the unknown admin command and poison the stream).
        if remediation is not None and "bus-report" in transport.features:
            reporter = f"loadgen-{os.getpid()}"
            remediation.bus.subscribe(
                on_snapshot=lambda snapshot: transport.report_bus(
                    reporter, snapshot.to_dict()
                )
            )
        generator = workload.generator(streams)
        expected_model_s = config.n_tasks / workload.task_rate
        if wall_timeout is None:
            wall_timeout = max(60.0, 12.0 * expected_model_s * clock.scale + 30.0)

        # Open-loop honesty metric: when the event loop falls behind the
        # arrival schedule, tasks fire late and effectively back-to-back
        # -- a silently closed loop.  Track how late (model seconds), so
        # saturated runs are detectable in the summary instead of quietly
        # under-reporting latency.
        schedule_lag = {"max": 0.0, "total": 0.0, "n": 0}

        async def feed() -> None:
            next_at = 0.0
            last_arrival = 0.0
            for _ in range(config.n_tasks):
                task = generator.next_task()
                gap = task.arrival_time - last_arrival
                last_arrival = task.arrival_time
                next_at += gap / faults.arrival_scale()
                if next_at > clock.now:
                    await clock.sleep_until(next_at)
                lag = clock.now - next_at
                if lag > 0.0:
                    schedule_lag["total"] += lag
                    if lag > schedule_lag["max"]:
                        schedule_lag["max"] = lag
                schedule_lag["n"] += 1
                if remediation is not None:
                    remediation.observe_arrival()
                clients[task.client_id].submit(task)

        wall_start = time.monotonic()
        # Model time zero = first arrival: latencies are measured against
        # the trace's intended arrival times, exactly like the simulation.
        clock.rebase()
        faults.start()
        if remediation is not None:
            clock.process(remediation.ticker(), name="metrics-ticker")
        feeder = asyncio.get_running_loop().create_task(feed(), name="live-feeder")
        done_waiter = asyncio.get_running_loop().create_task(tracker.done.wait())

        # Surface background crashes immediately as the real traceback,
        # not as a mysterious timeout minutes later (the sim raises the
        # same exceptions synchronously from env.run).  The clock funnels
        # the first exception of *any* spawned strategy process (credit
        # gates, the controller epoch loop, C3 pacers, hedge timers, fault
        # windows) into one future, so the watch set stays constant-sized
        # no matter how many short-lived per-request processes a strategy
        # spawns.
        background_failure: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )

        def note_background_error(error: BaseException) -> None:
            if not background_failure.done():
                background_failure.set_exception(error)

        clock.on_error(note_background_error)
        waiters: _t.Set[_t.Any] = {
            done_waiter,
            transport.failed,
            background_failure,
            feeder,
        }
        deadline = asyncio.get_running_loop().time() + wall_timeout
        try:
            while not tracker.done.is_set():
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    raise LiveTransportError(
                        f"live run timed out after {wall_timeout:.0f}s wall: "
                        f"{tracker.completed}/{config.n_tasks} tasks completed, "
                        f"{transport.pending_ops} ops in flight"
                    )
                await asyncio.wait(
                    waiters, timeout=remaining, return_when=asyncio.FIRST_COMPLETED
                )
                if transport.failed.done():
                    raise transport.failed.exception()  # type: ignore[misc]
                if background_failure.done():
                    raise _t.cast(
                        BaseException, background_failure.exception()
                    )
                if feeder.done():
                    feeder_error = feeder.exception()
                    if feeder_error is not None:
                        raise feeder_error
                    waiters.discard(feeder)  # fed everything; await completions
        finally:
            if not background_failure.done():
                background_failure.cancel()
            elif not background_failure.cancelled():
                background_failure.exception()  # consume for GC hygiene
        wall_duration = time.monotonic() - wall_start
        stats_after = await asyncio.wait_for(transport.fetch_stats(), timeout=10)

        requests_served = int(
            stats_after.get("completed", 0) - stats_before.get("completed", 0)
        )
        uptime_delta = float(
            stats_after.get("uptime_model_s", 0.0)
            - stats_before.get("uptime_model_s", 0.0)
        )
        busy_delta = sum(
            float(after.get("busy_time_s", 0.0)) - float(before.get("busy_time_s", 0.0))
            for before, after in zip(
                stats_before.get("workers", []), stats_after.get("workers", [])
            )
        )
        cores_total = config.cluster.n_servers * config.cluster.cores_per_server
        extras: _t.Dict[str, float] = {
            "mean_server_utilization": (
                busy_delta / (uptime_delta * cores_total) if uptime_delta > 0 else 0.0
            ),
            "live_time_scale": clock.scale,
            "live_wall_duration_s": wall_duration,
            "live_requests_rejected": float(stats_after.get("rejected", 0)),
            "live_congestion_frames": float(transport.congestion_signals),
            "live_protocol": float(transport.ack.get("proto", 1)),
            "live_links": float(transport.links),
            "schedule_lag_max_s": schedule_lag["max"],
            "schedule_lag_mean_s": (
                schedule_lag["total"] / schedule_lag["n"]
                if schedule_lag["n"]
                else 0.0
            ),
        }
        extras.update(builder.collect_extras(ctx, clients, ()))
        extras.update(faults.extras())
        if remediation is not None:
            extras.update(remediation.extras())
        if placement.swaps:
            extras["placement_swaps"] = float(placement.swaps)
        if recorder is not None:
            extras.update(recorder.extras())
            extras["live_traced_ops"] = float(
                stats_after.get("traced_ops", 0) - stats_before.get("traced_ops", 0)
            )

        return RunResult(
            config=config,
            seed=seed,
            task_latencies=tracker.task_latencies,
            request_latencies=None,
            queue_waits=None,
            service_times=None,
            client_waits=None,
            sim_duration=tracker.last_completion_at,
            events_processed=transport.ops_sent + transport.responses_received,
            tasks_measured=tracker.measured,
            tasks_completed=tracker.completed,
            requests_served=requests_served,
            extras=extras,
            traces=recorder.traces if recorder is not None else None,
        )
    finally:
        for task in (feeder, done_waiter):
            if task is not None and not task.done():
                task.cancel()
        clock.cancel_processes()
        if faults is not None:
            faults.reset()  # leave the server undegraded for the next run
        if remediation is not None:
            remediation.reset()  # revert any mid-episode lever
        await transport.close()


def live_summary(
    results: _t.Mapping[str, _t.Sequence[RunResult]],
    meta: _t.Optional[_t.Mapping[str, _t.Any]] = None,
) -> _t.Dict[str, _t.Any]:
    """The sim-identical summary dict for live runs (plus a ``meta`` block).

    The core shape is produced by the *same*
    :meth:`~repro.harness.results.ComparisonResult.to_dict` the simulation
    uses, so one schema validator covers both realms.
    """
    summary = compare_strategies(results).to_dict()
    if meta is not None:
        summary["meta"] = dict(meta)
    return summary


async def run_live_seeds(
    config: ExperimentConfig,
    seeds: _t.Sequence[int],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    wall_timeout: _t.Optional[float] = None,
    endpoints: _t.Optional[_t.Sequence[_t.Tuple[str, int]]] = None,
    pool: int = 1,
    protocol: int = MAX_PROTOCOL_VERSION,
) -> _t.List[RunResult]:
    """Sequential multi-seed live runs (live cells cannot overlap: they
    would contend for the same wall-clock backend)."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [
        await run_live(
            config,
            seed=seed,
            host=host,
            port=port,
            wall_timeout=wall_timeout,
            endpoints=endpoints,
            pool=pool,
            protocol=protocol,
        )
        for seed in seeds
    ]
