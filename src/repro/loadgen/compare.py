"""The sim<->live differential harness.

For each requested strategy, run the *same* scenario twice -- once through
the discrete-event simulation, once as a live load-generation run against
a loopback :class:`~repro.serve.server.LiveServer` -- and put the two
percentile summaries side by side.  Because both realms produce
:class:`~repro.harness.runner.RunResult` objects aggregated by the same
:func:`~repro.harness.results.compare_strategies`, the comparison is
apples-to-apples by construction.

What a comparison can and cannot assert (also in DESIGN.md): live numbers
include event-loop timer quantization and Python scheduling noise, so
*absolute* latencies drift from the simulation; the *ordering* of
strategies and the shape of the tail are the properties that must carry
over -- that is the claim BRB makes, and the thing this harness checks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import typing as _t
from pathlib import Path

from ..analysis.tables import render_table
from ..harness.config import ExperimentConfig
from ..harness.results import ComparisonResult, compare_strategies
from ..harness.runner import run_seeds
from ..scenarios import get_scenario
from ..serve.protocol import MAX_PROTOCOL_VERSION
from ..serve.server import DEFAULT_TIME_SCALE, LiveServer
from ..serve.supervisor import ServeSupervisor
from .driver import run_live_seeds

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..harness.parallel import GridExecutor


@dataclasses.dataclass
class CompareReport:
    """One scenario's paired sim and live comparisons."""

    scenario: str
    seeds: _t.Tuple[int, ...]
    sim: ComparisonResult
    live: ComparisonResult
    time_scale: float
    #: Server processes the live half ran against (1 = in-process loopback).
    procs: int = 1

    @property
    def strategies(self) -> _t.Tuple[str, ...]:
        return tuple(self.sim.strategies)

    def p99_ms(self, realm: str, strategy: str) -> float:
        comparison = self.sim if realm == "sim" else self.live
        return comparison.summary_of(strategy).p99 * 1e3

    def rows(self) -> _t.List[_t.Dict[str, _t.Any]]:
        rows = []
        for name in self.strategies:
            sim = self.sim.summary_of(name).scaled(1e3)
            live = self.live.summary_of(name).scaled(1e3)
            rows.append(
                {
                    "strategy": name,
                    "sim_p50_ms": sim.median,
                    "sim_p99_ms": sim.p99,
                    "live_p50_ms": live.median,
                    "live_p99_ms": live.p99,
                    "live/sim_p99": live.p99 / sim.p99 if sim.p99 > 0 else float("inf"),
                }
            )
        return rows

    def ordering(self, realm: str) -> _t.List[str]:
        """Strategies sorted by that realm's p99 (best first)."""
        return sorted(self.strategies, key=lambda name: self.p99_ms(realm, name))

    def orderings_agree(self) -> bool:
        return self.ordering("sim") == self.ordering("live")

    def render(self) -> str:
        lines = [
            render_table(
                self.rows(),
                title=(
                    f"sim vs live -- scenario {self.scenario!r}, "
                    f"seeds {list(self.seeds)}, time scale {self.time_scale:g}x"
                ),
                float_fmt=".3f",
            ),
            "",
            f"p99 ordering (sim):  {' < '.join(self.ordering('sim'))}",
            f"p99 ordering (live): {' < '.join(self.ordering('live'))}",
            (
                "orderings agree: the live run mirrors the simulation"
                if self.orderings_agree()
                else "orderings DIFFER between sim and live"
            ),
        ]
        baseline = "c3" if "c3" in self.strategies else None
        if baseline is not None:
            for name in self.strategies:
                if name == baseline or not name.endswith("-credits"):
                    continue
                live_brb = self.p99_ms("live", name)
                live_c3 = self.p99_ms("live", baseline)
                verdict = "<=" if live_brb <= live_c3 else ">"
                lines.append(
                    f"live p99: {name} {live_brb:.3f} ms {verdict} "
                    f"{baseline} {live_c3:.3f} ms"
                )
        return "\n".join(lines)

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "time_scale": self.time_scale,
            "procs": self.procs,
            "sim": self.sim.to_dict(),
            "live": self.live.to_dict(),
            "p99_ordering": {
                "sim": self.ordering("sim"),
                "live": self.ordering("live"),
                "agree": self.orderings_agree(),
            },
        }

    def save_json(self, path: _t.Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )


async def _live_strategy_loopback(
    config: ExperimentConfig,
    seeds: _t.Sequence[int],
    time_scale: float,
    wall_timeout: _t.Optional[float],
    pool: int,
    protocol: int,
) -> _t.List:
    """One strategy's live runs against a fresh in-process loopback server."""
    server = LiveServer.from_config(config, time_scale=time_scale, port=0)
    await server.start()
    try:
        return await run_live_seeds(
            config,
            seeds,
            endpoints=[(server.host, server.port)],
            pool=pool,
            protocol=protocol,
            wall_timeout=wall_timeout,
        )
    finally:
        await server.stop()


def _live_comparison(
    configs: _t.Mapping[str, ExperimentConfig],
    seeds: _t.Sequence[int],
    time_scale: float,
    wall_timeout: _t.Optional[float],
    procs: int,
    pool: int,
    protocol: int,
) -> ComparisonResult:
    """Run each strategy against its own fresh backend.

    A fresh backend per strategy keeps runs independent (no queue
    residue, no warmed EWMAs crossing strategies), mirroring the
    simulation's fresh-environment-per-run discipline.  ``procs > 1``
    forks a real multi-process cluster per strategy (the supervisor must
    start before any event loop runs, hence the sync shape of this
    function); ``procs == 1`` keeps the in-process loopback server.
    """
    results: _t.Dict[str, _t.List] = {}
    for name, config in configs.items():
        if procs > 1:
            supervisor = ServeSupervisor(
                config, procs=procs, time_scale=time_scale, base_port=0
            )
            endpoints = supervisor.start()
            try:
                results[name] = asyncio.run(
                    run_live_seeds(
                        config,
                        seeds,
                        endpoints=endpoints,
                        pool=pool,
                        protocol=protocol,
                        wall_timeout=wall_timeout,
                    )
                )
            finally:
                supervisor.stop()
        else:
            results[name] = asyncio.run(
                _live_strategy_loopback(
                    config, seeds, time_scale, wall_timeout, pool, protocol
                )
            )
    return compare_strategies(results)


def run_compare(
    scenario: str,
    strategies: _t.Sequence[str],
    n_tasks: int = 5000,
    seeds: _t.Sequence[int] = (1,),
    time_scale: float = DEFAULT_TIME_SCALE,
    wall_timeout: _t.Optional[float] = None,
    executor: _t.Optional["GridExecutor"] = None,
    procs: int = 1,
    pool: int = 1,
    protocol: int = MAX_PROTOCOL_VERSION,
) -> CompareReport:
    """Run the full differential: sim then live, one scenario, N strategies.

    ``executor`` applies to the *simulated* half only (the PR-2 seam:
    process fan-out and result-cache reuse); live cells are inherently
    serial -- they would contend for the same wall-clock backend.
    ``procs``/``pool``/``protocol`` shape the live half: server process
    count, connections per endpoint, and the wire codec cap.
    """
    if not strategies:
        raise ValueError("need at least one strategy to compare")
    spec = get_scenario(scenario)
    configs = {
        name: spec.build_config(strategy=name, n_tasks=n_tasks)
        for name in strategies
    }
    sim_results = {
        name: run_seeds(config, seeds, executor=executor)
        for name, config in configs.items()
    }
    sim = compare_strategies(sim_results)
    live = _live_comparison(
        configs, seeds, time_scale, wall_timeout, procs, pool, protocol
    )
    return CompareReport(
        scenario=scenario,
        seeds=tuple(seeds),
        sim=sim,
        live=live,
        time_scale=time_scale,
        procs=procs,
    )
