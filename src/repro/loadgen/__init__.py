"""Live load generation: scenario replay over the clock/transport seam.

The client half of the live serving subsystem: the registered strategy
builders assemble the *same* dispatch strategies the simulation runs, but
bound to a wall clock and a TCP transport, driving a
:mod:`repro.serve` service with the scenario library's workloads and
fault schedules.  ``repro loadgen`` runs one strategy; ``repro compare``
pairs live runs with simulations of the identical configuration.
"""

from .compare import CompareReport, run_compare
from .driver import (
    LiveFaultDriver,
    live_summary,
    run_live,
    run_live_seeds,
)
from .firehose import FirehoseResult, run_firehose
from .transport import LiveTransport, LiveTransportError, handshake

__all__ = [
    "CompareReport",
    "FirehoseResult",
    "LiveFaultDriver",
    "LiveTransport",
    "LiveTransportError",
    "handshake",
    "live_summary",
    "run_compare",
    "run_firehose",
    "run_live",
    "run_live_seeds",
]
