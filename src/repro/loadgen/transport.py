"""The live client transport: the Transport seam over pooled TCP links.

:class:`LiveTransport` is what makes the *unmodified* strategy stack run
against the live service: it implements the same ``register``/``send``
surface as the simulated :class:`~repro.cluster.network.Network`, so
clients, credit gates and the credits controller plug into it directly.
Underneath, it speaks to a whole cluster: one or many server processes
(endpoints), each owning a subset of the workers, with ``pool``
connections per endpoint and arbitrarily many pipelined ``op`` frames in
flight per connection (writes are coalesced per event-loop turn by
:class:`~repro.serve.protocol.BatchWriter`, reads are chunked by
:class:`~repro.serve.protocol.FrameStream`).

Routing
-------
* messages addressed to a **server** (:class:`~repro.cluster.messages.
  RequestMessage`) are turned into wire ``op`` frames on a link to the
  endpoint that owns that worker (round-robin across its pool); the
  request object itself stays client-side in a pending map keyed by a
  wire id, and the matching ``res`` frame is reassembled into the exact
  :class:`~repro.cluster.messages.ResponseMessage` the strategies expect,
  feedback included;
* messages between **local** endpoints (demand reports and credit grants
  between gates and the in-process controller) are delivered on the next
  event-loop turn -- the live analogue of the simulated network's
  asynchronous delivery, and what keeps the control-plane free of
  re-entrant callback chains;
* ``congestion`` frames from the service become
  :class:`~repro.cluster.messages.CongestionSignal` deliveries to the
  controller address, closing the credits feedback loop.  Only the first
  (*primary*) connection of each endpoint's pool subscribes to them, so
  the controller sees each signal exactly once;
* ``admin`` frames fan out per endpoint, their ``servers`` target list
  cut down to the workers that endpoint owns; ``stats`` replies are
  merged back into one cluster-wide frame.

The wire codec is negotiated per connection in :func:`handshake`
(binary v2 when both sides speak it, v1 JSON otherwise), so this client
interoperates with old JSON-only servers unchanged.
"""

from __future__ import annotations

import asyncio
import typing as _t

from ..cluster.addresses import CONTROLLER_ADDRESS, client_address
from ..cluster.messages import CongestionSignal, ResponseMessage, ServerFeedback
from ..core.clock import WallClock
from ..serve.codec import BINARY_CODEC, codec_for
from ..serve.protocol import (
    MAX_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    BatchWriter,
    FrameStream,
    ProtocolError,
    encode_frame,
    hello_frame,
    priority_to_wire,
    read_frame,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.messages import RequestMessage

Endpoint = _t.Tuple[str, int]

#: Wire ids live in the op frame's u32 field.
_RID_MASK = 0xFFFFFFFF


class LiveTransportError(RuntimeError):
    """The live connection failed or the service rejected a request."""


async def handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    max_proto: int = MAX_PROTOCOL_VERSION,
    congestion: bool = True,
) -> _t.Dict[str, _t.Any]:
    """Exchange hello/hello-ack (always in v1 JSON) and negotiate the codec.

    Returns the ack; its ``proto`` field is the version every subsequent
    frame on this connection travels in.  ``max_proto=1`` pins the
    connection to JSON (the ``--protocol json`` escape hatch).
    """
    writer.write(encode_frame(hello_frame(max_proto, congestion)))
    await writer.drain()
    ack = await read_frame(reader)
    if ack is None:
        raise LiveTransportError("server closed the connection during handshake")
    if ack.get("t") == "error":
        raise LiveTransportError(f"handshake rejected: {ack.get('error')}")
    if ack.get("t") != "hello-ack":
        raise LiveTransportError(f"unexpected handshake reply {ack!r}")
    proto = ack.get("proto", PROTOCOL_VERSION)
    if (
        not isinstance(proto, int)
        or isinstance(proto, bool)
        or not PROTOCOL_VERSION <= proto <= max(max_proto, PROTOCOL_VERSION)
    ):
        raise LiveTransportError(f"server negotiated unusable protocol {proto!r}")
    return ack


class _Link:
    """One pooled connection to one endpoint, handshake already done."""

    def __init__(
        self,
        transport: "LiveTransport",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        version: int,
        endpoint: Endpoint,
        primary: bool,
    ) -> None:
        self.transport = transport
        self.endpoint = endpoint
        self.primary = primary
        self.codec = codec_for(version)
        self.stream = FrameStream(reader, self.codec)
        self.out = BatchWriter(writer)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"live-link.{endpoint[0]}:{endpoint[1]}"
        )

    def send_frame(self, frame: _t.Mapping[str, _t.Any]) -> None:
        self.out.send(self.codec.encode(frame))

    async def _read_loop(self) -> None:
        transport = self.transport
        try:
            while True:
                frame = await self.stream.read_frame()
                if frame is None:
                    transport._fail(
                        LiveTransportError("server closed the connection")
                    )
                    return
                transport._handle_frame(self, frame)
        except asyncio.CancelledError:
            pass
        except (ProtocolError, ConnectionError) as exc:
            transport._fail(LiveTransportError(f"live connection failed: {exc}"))
        except Exception as exc:
            # Anything else (a malformed frame field, a client-callback
            # bug) must kill the run loudly -- a silently-dead read loop
            # would stall the driver until its wall timeout.
            transport._fail(
                LiveTransportError(f"live transport crashed handling a frame: {exc}")
            )

    async def close(self, flush: bool = True) -> None:
        self._reader_task.cancel()
        await self.out.close(flush_timeout=1.0 if flush else 0.0)


class LiveTransport:
    """Transport-seam realization over a connected live cluster.

    Build one with :meth:`connect`; the constructor wires an already
    established set of links.
    """

    def __init__(
        self, clock: WallClock, ack: _t.Dict[str, _t.Any]
    ) -> None:
        self.clock = clock
        #: The first endpoint's hello-ack: the cluster shape every other
        #: endpoint was checked against (drivers validate configs with it).
        self.ack = ack
        self._handlers: _t.Dict[_t.Hashable, _t.Callable[[_t.Any], None]] = {}
        self._pending: _t.Dict[int, "RequestMessage"] = {}
        self._next_rid = 0
        self._links: _t.List[_Link] = []
        self._endpoint_links: "_t.Dict[Endpoint, _t.List[_Link]]" = {}
        self._endpoint_workers: "_t.Dict[Endpoint, _t.FrozenSet[int]]" = {}
        self._worker_links: _t.Dict[int, _t.List[_Link]] = {}
        self._rr: _t.Dict[Endpoint, int] = {}
        self._stats_waiters: "_t.Dict[Endpoint, _t.List[asyncio.Future[_t.Dict[str, _t.Any]]]]" = {}
        self._metrics_waiters: "_t.Dict[Endpoint, _t.List[asyncio.Future[_t.Dict[str, _t.Any]]]]" = {}
        self._client_bus_waiters: "_t.Dict[Endpoint, _t.List[asyncio.Future[_t.Dict[str, _t.Any]]]]" = {}
        #: Set on connection loss / protocol error / op rejection.
        self.failed: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )
        self.ops_sent = 0
        self.responses_received = 0
        self.congestion_signals = 0
        #: Trace-context hook: when set, called per outbound op with the
        #: request; a non-None return is the 64-bit context to propagate
        #: (v2: the traced-op frame; v1: an optional JSON key old servers
        #: ignore, preserving interop).
        self.trace_sampler: _t.Optional[
            _t.Callable[["RequestMessage"], _t.Optional[int]]
        ] = None
        #: Latest piggybacked backlog (queued + in service) per server id,
        #: refreshed on every result frame -- the live realm's view of
        #: server heat for the metrics bus (sim reads the servers directly).
        self._backlog: _t.Dict[int, float] = {}

    @classmethod
    async def connect(
        cls,
        endpoints: _t.Sequence[Endpoint],
        pool: int = 1,
        protocol: int = MAX_PROTOCOL_VERSION,
    ) -> "LiveTransport":
        """Connect ``pool`` links to every endpoint and assemble routing.

        Every endpoint must present the same cluster shape and time
        scale, and together they must own each worker exactly once.
        """
        if not endpoints:
            raise ValueError("need at least one endpoint")
        if pool < 1:
            raise ValueError("pool must be at least 1")
        opened: _t.List[
            _t.Tuple[Endpoint, bool, asyncio.StreamReader, asyncio.StreamWriter, _t.Dict[str, _t.Any]]
        ] = []
        try:
            for endpoint in endpoints:
                for slot in range(pool):
                    reader, writer = await asyncio.open_connection(*endpoint)
                    try:
                        ack = await handshake(
                            reader,
                            writer,
                            max_proto=protocol,
                            congestion=slot == 0,
                        )
                    except BaseException:
                        writer.close()
                        raise
                    opened.append((endpoint, slot == 0, reader, writer, ack))
            cls._validate_acks(endpoints, [o[4] for o in opened], pool)
        except BaseException:
            for _, _, _, writer, _ in opened:
                writer.close()
            raise
        base_ack = opened[0][4]
        transport = cls(
            clock=WallClock(scale=float(base_ack["time_scale"])), ack=base_ack
        )
        n_servers = int(base_ack["n_servers"])
        for endpoint, primary, reader, writer, ack in opened:
            link = _Link(
                transport,
                reader,
                writer,
                version=int(ack.get("proto", PROTOCOL_VERSION)),
                endpoint=endpoint,
                primary=primary,
            )
            transport._links.append(link)
            transport._endpoint_links.setdefault(endpoint, []).append(link)
            if primary:
                # An old server's ack has no workers list: it hosts all.
                workers = ack.get("workers")
                if workers is None:
                    workers = list(range(n_servers))
                transport._endpoint_workers[endpoint] = frozenset(
                    int(w) for w in workers
                )
                transport._rr[endpoint] = 0
                transport._stats_waiters[endpoint] = []
                transport._metrics_waiters[endpoint] = []
                transport._client_bus_waiters[endpoint] = []
        for endpoint, workers in transport._endpoint_workers.items():
            for worker_id in workers:
                transport._worker_links[worker_id] = transport._endpoint_links[
                    endpoint
                ]
        return transport

    @staticmethod
    def _validate_acks(
        endpoints: _t.Sequence[Endpoint],
        acks: _t.Sequence[_t.Dict[str, _t.Any]],
        pool: int,
    ) -> None:
        base = acks[0]
        for index, ack in enumerate(acks):
            for field in (
                "n_servers",
                "cores_per_server",
                "per_core_rate",
                "time_scale",
                "scenario",
                "seed",
            ):
                if ack.get(field) != base.get(field):
                    endpoint = endpoints[index // pool]
                    raise LiveTransportError(
                        f"cluster endpoints disagree on {field}: "
                        f"{endpoint} says {ack.get(field)!r}, "
                        f"{endpoints[0]} says {base.get(field)!r}"
                    )
        n_servers = int(base.get("n_servers", 0))
        owner: _t.Dict[int, Endpoint] = {}
        for index in range(0, len(acks), pool):
            endpoint = endpoints[index // pool]
            workers = acks[index].get("workers")
            if workers is None:
                workers = list(range(n_servers))
            for worker_id in workers:
                worker_id = int(worker_id)
                if worker_id in owner:
                    raise LiveTransportError(
                        f"worker {worker_id} claimed by both {owner[worker_id]} "
                        f"and {endpoint}"
                    )
                owner[worker_id] = endpoint
        missing = sorted(set(range(n_servers)) - set(owner))
        if missing:
            raise LiveTransportError(
                f"no endpoint hosts workers {missing}; the endpoint list does "
                "not cover the cluster"
            )

    # -- Transport protocol ---------------------------------------------------
    def register(
        self, address: _t.Hashable, handler: _t.Callable[[_t.Any], None]
    ) -> None:
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def send(
        self, src: _t.Hashable, dst: _t.Hashable, message: _t.Any
    ) -> None:
        """Route one message: servers over the wire, everything else local."""
        if isinstance(dst, tuple) and len(dst) == 2 and dst[0] == "server":
            self._send_op(int(dst[1]), message)
        else:
            handler = self._handlers.get(dst)
            if handler is None:
                raise KeyError(f"no handler registered for {dst!r}")
            # Next-turn delivery: like the simulated network, control
            # messages never re-enter the sender's stack synchronously.
            asyncio.get_running_loop().call_soon(
                self._deliver_local, handler, message
            )

    def _deliver_local(
        self, handler: _t.Callable[[_t.Any], None], message: _t.Any
    ) -> None:
        try:
            handler(message)
        except Exception as exc:
            # A handler bug must fail the run visibly, not vanish into the
            # event loop's default exception logger.
            self._fail(
                LiveTransportError(f"local handler raised for {message!r}: {exc}")
            )

    # -- data path ------------------------------------------------------------
    def _send_op(self, worker_id: int, request: "RequestMessage") -> None:
        links = self._worker_links.get(worker_id)
        if links is None:
            raise LiveTransportError(
                f"op addressed to worker {worker_id}, which no endpoint hosts"
            )
        if len(links) == 1:
            link = links[0]
        else:
            endpoint = links[0].endpoint
            index = self._rr[endpoint]
            self._rr[endpoint] = (index + 1) % len(links)
            link = links[index]
        rid = self._next_rid
        self._next_rid = (rid + 1) & _RID_MASK
        self._pending[rid] = request
        self.ops_sent += 1
        trace = (
            self.trace_sampler(request) if self.trace_sampler is not None else None
        )
        codec = link.codec
        if codec is BINARY_CODEC:
            if trace is not None:
                link.out.send(
                    codec.encode_op_traced(
                        rid,
                        worker_id,
                        request.op.key,
                        request.op.value_size,
                        request.priority,
                        trace,
                    )
                )
                return
            # Hot path: struct-pack the op without building the frame dict.
            link.out.send(
                codec.encode_op(
                    rid,
                    worker_id,
                    request.op.key,
                    request.op.value_size,
                    request.priority,
                )
            )
        else:
            frame = {
                "t": "op",
                "rid": rid,
                "server": worker_id,
                "key": request.op.key,
                "size": request.op.value_size,
                "prio": priority_to_wire(request.priority),
            }
            if trace is not None:
                # v1 interop: old servers read only the fields they know,
                # so the context is silently dropped rather than rejected.
                frame["trace"] = trace
            link.send_frame(frame)

    def admin(self, frame: _t.Mapping[str, _t.Any]) -> None:
        """Fan one admin frame out to the endpoints it concerns.

        A frame with a ``servers`` target list goes only to the endpoints
        owning those workers, trimmed to each one's subset; a frame
        without one (stats, jitter, clear-jitter) goes to every endpoint.
        """
        if frame.get("t") != "admin":
            raise ValueError("admin frames must have t='admin'")
        servers = frame.get("servers")
        for endpoint, links in self._endpoint_links.items():
            if servers is None:
                links[0].send_frame(frame)
                continue
            owned = self._endpoint_workers[endpoint]
            local = [s for s in servers if int(s) in owned]
            if not local:
                continue
            trimmed = dict(frame)
            trimmed["servers"] = local
            links[0].send_frame(trimmed)

    @property
    def features(self) -> _t.FrozenSet[str]:
        """Optional capabilities the cluster advertised in its hello-ack.

        Empty for servers predating the advertisement; callers gate
        optional admin commands on membership instead of probing.
        """
        raw = self.ack.get("features")
        if not isinstance(raw, (list, tuple)):
            return frozenset()
        return frozenset(str(f) for f in raw)

    def report_bus(
        self, reporter: str, snapshot: _t.Mapping[str, _t.Any]
    ) -> None:
        """Push one client-side BusSnapshot to every endpoint.

        Fire-and-forget: the snapshot rides the admin plane (no
        ``servers`` key, so the fan-out reaches the whole cluster) and
        each server keeps the newest per reporter for ``client-bus``
        readers like ``repro watch``.
        """
        self.admin(
            {
                "t": "admin",
                "cmd": "bus-report",
                "reporter": reporter,
                "snapshot": dict(snapshot),
            }
        )

    async def fetch_client_bus(self) -> _t.Dict[str, _t.Dict[str, _t.Any]]:
        """Collect every endpoint's client-side snapshots, merged.

        Endpoints may have seen different report generations (reports are
        fire-and-forget); the newest snapshot per reporter (by ``seq``)
        wins.
        """
        loop = asyncio.get_running_loop()
        futures: _t.List["asyncio.Future[_t.Dict[str, _t.Any]]"] = []
        for endpoint in self._endpoint_links:
            future: "asyncio.Future[_t.Dict[str, _t.Any]]" = loop.create_future()
            self._client_bus_waiters[endpoint].append(future)
            futures.append(future)
        self.admin({"t": "admin", "cmd": "client-bus"})
        replies = await asyncio.gather(*futures)
        merged: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
        for reply in replies:
            snapshots = reply.get("snapshots")
            if not isinstance(snapshots, dict):
                continue
            for reporter, snapshot in snapshots.items():
                if not isinstance(snapshot, dict):
                    continue
                seen = merged.get(reporter)
                if seen is None or float(snapshot.get("seq", 0)) >= float(
                    seen.get("seq", 0)
                ):
                    merged[reporter] = snapshot
        return merged

    async def fetch_stats(self) -> _t.Dict[str, _t.Any]:
        """Request every endpoint's stats frame and merge the replies."""
        loop = asyncio.get_running_loop()
        futures: _t.List["asyncio.Future[_t.Dict[str, _t.Any]]"] = []
        for endpoint in self._endpoint_links:
            future: "asyncio.Future[_t.Dict[str, _t.Any]]" = loop.create_future()
            self._stats_waiters[endpoint].append(future)
            futures.append(future)
        self.admin({"t": "admin", "cmd": "stats"})
        replies = await asyncio.gather(*futures)
        return self._merge_stats(replies)

    async def fetch_metrics(self) -> str:
        """Request every endpoint's Prometheus text and concatenate it.

        Worker lines carry global worker ids, so the concatenation of a
        multi-process cluster's pages reads as one cluster-wide page.
        """
        loop = asyncio.get_running_loop()
        futures: _t.List["asyncio.Future[_t.Dict[str, _t.Any]]"] = []
        for endpoint in self._endpoint_links:
            future: "asyncio.Future[_t.Dict[str, _t.Any]]" = loop.create_future()
            self._metrics_waiters[endpoint].append(future)
            futures.append(future)
        self.admin({"t": "admin", "cmd": "metrics"})
        replies = await asyncio.gather(*futures)
        return "".join(str(reply.get("text", "")) for reply in replies)

    @staticmethod
    def _merge_stats(
        replies: _t.Sequence[_t.Dict[str, _t.Any]]
    ) -> _t.Dict[str, _t.Any]:
        if len(replies) == 1:
            return dict(replies[0])
        merged: _t.Dict[str, _t.Any] = {"t": "stats"}
        for key in (
            "completed",
            "rejected",
            "frames_received",
            "frames_sent",
            "bytes_sent",
            "writes",
            "traced_ops",
        ):
            if any(key in reply for reply in replies):
                merged[key] = sum(reply.get(key, 0) for reply in replies)
        # Model clocks start at each process's serving start; report the
        # cluster's as the furthest one along.
        merged["uptime_model_s"] = max(
            float(reply.get("uptime_model_s", 0.0)) for reply in replies
        )
        merged["workers"] = sorted(
            (worker for reply in replies for worker in reply.get("workers", [])),
            key=lambda worker: worker.get("worker", 0),
        )
        return merged

    # -- inbound frames -------------------------------------------------------
    def _handle_frame(self, link: _Link, frame: _t.Dict[str, _t.Any]) -> None:
        kind = frame.get("t")
        if kind == "res":
            self._handle_result(frame)
        elif kind == "congestion":
            self.congestion_signals += 1
            handler = self._handlers.get(CONTROLLER_ADDRESS)
            if handler is not None:  # strategies without a controller drop it
                handler(
                    CongestionSignal(
                        server_id=int(frame["server"]),
                        time=self.clock.now,
                        overload_ratio=float(frame["ratio"]),
                    )
                )
        elif kind == "stats":
            waiters = self._stats_waiters.get(link.endpoint)
            if waiters:
                future = waiters.pop(0)
                if not future.done():
                    future.set_result(frame)
        elif kind == "metrics":
            waiters = self._metrics_waiters.get(link.endpoint)
            if waiters:
                future = waiters.pop(0)
                if not future.done():
                    future.set_result(frame)
        elif kind == "client-bus":
            waiters = self._client_bus_waiters.get(link.endpoint)
            if waiters:
                future = waiters.pop(0)
                if not future.done():
                    future.set_result(frame)
        elif kind == "admin-ack":
            pass  # fault commands are fire-and-forget
        elif kind == "error":
            self._fail(
                LiveTransportError(f"service error: {frame.get('error')!r}")
            )
        else:
            self._fail(LiveTransportError(f"unexpected frame {frame!r}"))

    def _handle_result(self, frame: _t.Dict[str, _t.Any]) -> None:
        try:
            rid = int(frame["rid"])
            request = self._pending.pop(rid)
        except (KeyError, TypeError, ValueError):
            self._fail(
                LiveTransportError(f"result for unknown wire id: {frame!r}")
            )
            return
        now = self.clock.now
        # Reconstruct the timestamp trail from wire durations: durations
        # are clock-offset-free, so client and server clocks never need to
        # agree on an epoch.
        service = float(frame.get("service", 0.0))
        queue_wait = float(frame.get("queue_wait", 0.0))
        request.completed_at = now
        request.service_start_at = now - service
        request.enqueued_at = request.service_start_at - queue_wait
        feedback_raw = frame.get("fb", {})
        feedback = ServerFeedback(
            server_id=int(frame["server"]),
            queue_length=int(feedback_raw.get("q", 0)),
            in_service=int(feedback_raw.get("s", 0)),
            ewma_service_time=float(feedback_raw.get("ew", 0.0)),
        )
        self._backlog[feedback.server_id] = float(
            feedback.queue_length + feedback.in_service
        )
        self.responses_received += 1
        handler = self._handlers.get(client_address(request.client_id))
        if handler is None:
            self._fail(
                LiveTransportError(
                    f"response for unregistered client {request.client_id}"
                )
            )
            return
        handler(ResponseMessage(request=request, feedback=feedback))

    # -- failure and teardown ------------------------------------------------------
    def _fail(self, exc: Exception) -> None:
        if not self.failed.done():
            self.failed.set_exception(exc)

    def backlog_depths(self) -> _t.List[float]:
        """Per-server latest piggybacked backlog, dense over the id space.

        Servers that have not responded yet (or never will: crashed)
        report their last-known value, 0.0 before any response -- the
        same optimistic default the strategies' feedback trackers use.
        """
        n_servers = int(self.ack.get("n_servers", 0))
        return [self._backlog.get(s, 0.0) for s in range(n_servers)]

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    @property
    def links(self) -> int:
        """Open connection count (endpoints x pool)."""
        return len(self._links)

    def io_counters(self) -> _t.Dict[str, int]:
        """Client-side send totals across all links (the syscall ledger)."""
        return {
            "frames_sent": sum(link.out.frames_sent for link in self._links),
            "bytes_sent": sum(link.out.bytes_sent for link in self._links),
            "writes": sum(link.out.writes for link in self._links),
            "frames_received": sum(
                link.stream.frames_read for link in self._links
            ),
        }

    async def close(self) -> None:
        # Flush queued frames first (teardown sends fault-revert admin
        # commands that must reach the server) -- unless the transport
        # already failed, in which case there is nobody left to flush to.
        flush = not self.failed.done()
        if not self.failed.done():
            self.failed.cancel()
        else:
            self.failed.exception()  # consume for GC hygiene
        for link in self._links:
            await link.close(flush=flush)
