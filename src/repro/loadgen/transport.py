"""The live client transport: the Transport seam over one TCP connection.

:class:`LiveTransport` is what makes the *unmodified* strategy stack run
against the live service: it implements the same ``register``/``send``
surface as the simulated :class:`~repro.cluster.network.Network`, so
clients, credit gates and the credits controller plug into it directly.

Routing
-------
* messages addressed to a **server** (:class:`~repro.cluster.messages.
  RequestMessage`) are turned into wire ``op`` frames; the request object
  itself stays client-side in a pending map keyed by a wire id, and the
  matching ``res`` frame is reassembled into the exact
  :class:`~repro.cluster.messages.ResponseMessage` the strategies expect,
  feedback included;
* messages between **local** endpoints (demand reports and credit grants
  between gates and the in-process controller) are delivered on the next
  event-loop turn -- the live analogue of the simulated network's
  asynchronous delivery, and what keeps the control-plane free of
  re-entrant callback chains;
* ``congestion`` frames from the service become
  :class:`~repro.cluster.messages.CongestionSignal` deliveries to the
  controller address, closing the credits feedback loop.
"""

from __future__ import annotations

import asyncio
import typing as _t

from ..cluster.addresses import CONTROLLER_ADDRESS, client_address
from ..cluster.messages import CongestionSignal, ResponseMessage, ServerFeedback
from ..core.clock import WallClock
from ..serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    priority_to_wire,
    read_frame,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.messages import RequestMessage


class LiveTransportError(RuntimeError):
    """The live connection failed or the service rejected a request."""


async def handshake(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> _t.Dict[str, _t.Any]:
    """Exchange hello/hello-ack before the reader loop starts."""
    writer.write(encode_frame({"t": "hello", "proto": PROTOCOL_VERSION}))
    await writer.drain()
    ack = await read_frame(reader)
    if ack is None:
        raise LiveTransportError("server closed the connection during handshake")
    if ack.get("t") == "error":
        raise LiveTransportError(f"handshake rejected: {ack.get('error')}")
    if ack.get("t") != "hello-ack" or ack.get("proto") != PROTOCOL_VERSION:
        raise LiveTransportError(f"unexpected handshake reply {ack!r}")
    return ack


class LiveTransport:
    """Transport-seam realization over an established live connection."""

    def __init__(
        self,
        clock: WallClock,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.clock = clock
        self._reader = reader
        self._writer = writer
        self._handlers: _t.Dict[_t.Hashable, _t.Callable[[_t.Any], None]] = {}
        self._pending: _t.Dict[int, "RequestMessage"] = {}
        self._next_rid = 0
        self._outbox: "asyncio.Queue[bytes]" = asyncio.Queue()
        self._stats_waiters: _t.List["asyncio.Future[_t.Dict[str, _t.Any]]"] = []
        #: Set on connection loss / protocol error / op rejection.
        self.failed: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        self.ops_sent = 0
        self.responses_received = 0
        self.congestion_signals = 0
        self._tasks = [
            asyncio.get_running_loop().create_task(self._send_loop()),
            asyncio.get_running_loop().create_task(self._read_loop()),
        ]

    # -- Transport protocol ---------------------------------------------------
    def register(
        self, address: _t.Hashable, handler: _t.Callable[[_t.Any], None]
    ) -> None:
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def send(
        self, src: _t.Hashable, dst: _t.Hashable, message: _t.Any
    ) -> None:
        """Route one message: servers over the wire, everything else local."""
        if isinstance(dst, tuple) and len(dst) == 2 and dst[0] == "server":
            self._send_op(int(dst[1]), message)
        else:
            handler = self._handlers.get(dst)
            if handler is None:
                raise KeyError(f"no handler registered for {dst!r}")
            # Next-turn delivery: like the simulated network, control
            # messages never re-enter the sender's stack synchronously.
            asyncio.get_running_loop().call_soon(
                self._deliver_local, handler, message
            )

    def _deliver_local(
        self, handler: _t.Callable[[_t.Any], None], message: _t.Any
    ) -> None:
        try:
            handler(message)
        except Exception as exc:
            # A handler bug must fail the run visibly, not vanish into the
            # event loop's default exception logger.
            self._fail(
                LiveTransportError(f"local handler raised for {message!r}: {exc}")
            )

    # -- data path ------------------------------------------------------------
    def _send_op(self, worker_id: int, request: "RequestMessage") -> None:
        rid = self._next_rid
        self._next_rid += 1
        self._pending[rid] = request
        self.ops_sent += 1
        self._enqueue(
            {
                "t": "op",
                "rid": rid,
                "server": worker_id,
                "key": request.op.key,
                "size": request.op.value_size,
                "prio": priority_to_wire(request.priority),
            }
        )

    def _enqueue(self, frame: _t.Mapping[str, _t.Any]) -> None:
        self._outbox.put_nowait(encode_frame(frame))

    def admin(self, frame: _t.Mapping[str, _t.Any]) -> None:
        """Send one admin frame (fault injection, stats requests)."""
        if frame.get("t") != "admin":
            raise ValueError("admin frames must have t='admin'")
        self._enqueue(frame)

    async def fetch_stats(self) -> _t.Dict[str, _t.Any]:
        """Request the server's stats frame and await it."""
        future: "asyncio.Future[_t.Dict[str, _t.Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._stats_waiters.append(future)
        self.admin({"t": "admin", "cmd": "stats"})
        return await future

    # -- loops ---------------------------------------------------------------
    async def _send_loop(self) -> None:
        try:
            while True:
                data = await self._outbox.get()
                self._writer.write(data)
                await self._writer.drain()
        except asyncio.CancelledError:
            pass
        except ConnectionError as exc:
            self._fail(LiveTransportError(f"connection lost while sending: {exc}"))

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    self._fail(LiveTransportError("server closed the connection"))
                    return
                self._handle_frame(frame)
        except asyncio.CancelledError:
            pass
        except (ProtocolError, ConnectionError) as exc:
            self._fail(LiveTransportError(f"live connection failed: {exc}"))
        except Exception as exc:
            # Anything else (a malformed frame field, a client-callback
            # bug) must kill the run loudly -- a silently-dead read loop
            # would stall the driver until its wall timeout.
            self._fail(
                LiveTransportError(f"live transport crashed handling a frame: {exc}")
            )

    def _handle_frame(self, frame: _t.Dict[str, _t.Any]) -> None:
        kind = frame.get("t")
        if kind == "res":
            self._handle_result(frame)
        elif kind == "congestion":
            self.congestion_signals += 1
            handler = self._handlers.get(CONTROLLER_ADDRESS)
            if handler is not None:  # strategies without a controller drop it
                handler(
                    CongestionSignal(
                        server_id=int(frame["server"]),
                        time=self.clock.now,
                        overload_ratio=float(frame["ratio"]),
                    )
                )
        elif kind == "stats":
            if self._stats_waiters:
                future = self._stats_waiters.pop(0)
                if not future.done():
                    future.set_result(frame)
        elif kind == "admin-ack":
            pass  # fault commands are fire-and-forget
        elif kind == "error":
            self._fail(
                LiveTransportError(f"service error: {frame.get('error')!r}")
            )
        else:
            self._fail(LiveTransportError(f"unexpected frame {frame!r}"))

    def _handle_result(self, frame: _t.Dict[str, _t.Any]) -> None:
        try:
            rid = int(frame["rid"])
            request = self._pending.pop(rid)
        except (KeyError, TypeError, ValueError):
            self._fail(
                LiveTransportError(f"result for unknown wire id: {frame!r}")
            )
            return
        now = self.clock.now
        # Reconstruct the timestamp trail from wire durations: durations
        # are clock-offset-free, so client and server clocks never need to
        # agree on an epoch.
        service = float(frame.get("service", 0.0))
        queue_wait = float(frame.get("queue_wait", 0.0))
        request.completed_at = now
        request.service_start_at = now - service
        request.enqueued_at = request.service_start_at - queue_wait
        feedback_raw = frame.get("fb", {})
        feedback = ServerFeedback(
            server_id=int(frame["server"]),
            queue_length=int(feedback_raw.get("q", 0)),
            in_service=int(feedback_raw.get("s", 0)),
            ewma_service_time=float(feedback_raw.get("ew", 0.0)),
        )
        self.responses_received += 1
        handler = self._handlers.get(client_address(request.client_id))
        if handler is None:
            self._fail(
                LiveTransportError(
                    f"response for unregistered client {request.client_id}"
                )
            )
            return
        handler(ResponseMessage(request=request, feedback=feedback))

    # -- failure and teardown ------------------------------------------------------
    def _fail(self, exc: Exception) -> None:
        if not self.failed.done():
            self.failed.set_exception(exc)

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    async def close(self) -> None:
        # Give the sender a moment to flush queued frames (teardown sends
        # fault-revert admin commands that must reach the server).
        deadline = asyncio.get_running_loop().time() + 1.0
        while (
            not self._outbox.empty()
            and not self.failed.done()
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.01)
        for task in self._tasks:
            task.cancel()
        # Swallow the failure if nobody awaited it (normal teardown).
        if not self.failed.done():
            self.failed.cancel()
        else:
            self.failed.exception()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
