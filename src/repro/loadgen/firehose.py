"""The firehose: a raw wire-throughput driver for the live cluster.

The loadgen driver (:mod:`repro.loadgen.driver`) measures *scheduling*:
it replays a paper workload on a scaled model clock, so its throughput is
bounded by the scenario's arrival rate, not by the transport.  The
firehose measures the *wire path* itself.  It speaks the same protocol
(handshake, negotiated codec, pipelined op frames over pooled
connections) but skips the strategy stack entirely: a fixed window of
multigets is kept in flight on every run, and the moment one multiget
completes, the next is issued.  The number it reports is therefore the
throughput ceiling of codec + framing + write batching + event loop --
the quantity the binary-protocol work is supposed to move, and what
``benchmarks/test_bench_live_throughput.py`` and ``repro firehose`` put
on the record.

A *multiget* here is ``fanout`` single-key ops issued together and
considered complete when the last response arrives, mirroring the
paper's fan-out/fan-in request structure; its RTT is wall-clock time
from first op sent to last response in.

To measure the transport rather than the backend, point the firehose at
a server built with a small time scale and a generous core count (see
the benchmark), so that calibrated service sleeps collapse below the
event-loop timer resolution and queueing never becomes the bottleneck.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import typing as _t

from ..serve.codec import BINARY_CODEC, codec_for
from ..serve.protocol import (
    MAX_PROTOCOL_VERSION,
    BatchWriter,
    FrameStream,
    ProtocolError,
    priority_to_wire,
)
from .transport import Endpoint, LiveTransport, LiveTransportError, handshake

#: Wire ids live in the op frame's u32 field.
_RID_MASK = 0xFFFFFFFF

#: Fixed priority for firehose ops: everything equal, FIFO per worker.
_PRIORITY: _t.Tuple[float, ...] = (0.0,)


@dataclasses.dataclass
class FirehoseResult:
    """One firehose run's measurements (wall-clock units throughout)."""

    multigets: int
    fanout: int
    window: int
    pool: int
    endpoints: int
    protocol: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float
    #: Client-side send/receive ledger over the *measured* (post-warmup)
    #: span: frames_sent, bytes_sent, writes, frames_received.
    client_io: _t.Dict[str, int]
    #: Server-side cumulative totals (include warmup traffic).
    server_io: _t.Dict[str, int]
    congestion_frames: int

    @property
    def ops(self) -> int:
        return self.multigets * self.fanout

    @property
    def multigets_per_s(self) -> float:
        return self.multigets / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def ops_per_s(self) -> float:
        return self.multigets_per_s * self.fanout

    @property
    def writes_per_multiget(self) -> float:
        """Client write syscalls per multiget: the batching payoff."""
        return self.client_io["writes"] / self.multigets if self.multigets else 0.0

    @property
    def bytes_per_op(self) -> float:
        """Client bytes on the wire per op (length prefix included)."""
        return self.client_io["bytes_sent"] / self.ops if self.ops else 0.0

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "multigets": self.multigets,
            "fanout": self.fanout,
            "window": self.window,
            "pool": self.pool,
            "endpoints": self.endpoints,
            "protocol": self.protocol,
            "elapsed_s": self.elapsed_s,
            "multigets_per_s": self.multigets_per_s,
            "ops_per_s": self.ops_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "writes_per_multiget": self.writes_per_multiget,
            "bytes_per_op": self.bytes_per_op,
            "client_io": dict(self.client_io),
            "server_io": dict(self.server_io),
            "congestion_frames": self.congestion_frames,
        }


class _FireLink:
    """One raw connection: negotiated codec, framed reader, coalescing outbox."""

    __slots__ = ("endpoint", "codec", "stream", "out", "task")

    def __init__(
        self,
        endpoint: Endpoint,
        codec: _t.Any,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.endpoint = endpoint
        self.codec = codec
        self.stream = FrameStream(reader, codec)
        self.out = BatchWriter(writer)
        self.task: _t.Optional["asyncio.Task[None]"] = None


def _percentile(sorted_values: _t.Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = int(round(q / 100.0 * (len(sorted_values) - 1)))
    return sorted_values[index]


class _FirehoseRun:
    """Shared state between the issue path and the per-link read loops."""

    def __init__(
        self,
        links: _t.List[_FireLink],
        worker_links: _t.Dict[int, _t.List[_FireLink]],
        total: int,
        warmup: int,
        fanout: int,
        value_size: int,
        key_space: int,
    ) -> None:
        self.links = links
        self.worker_ids = sorted(worker_links)
        self.worker_links = worker_links
        self.total = total
        self.warmup = warmup
        self.fanout = fanout
        self.value_size = value_size
        self.key_space = key_space
        self.pending: _t.Dict[int, int] = {}
        self.remaining = [fanout] * total
        self.starts = [0.0] * total
        self.rtts: _t.List[float] = []
        self.completed = 0
        self.next_mg = 0
        self.op_counter = 0
        self.t_measure_start = 0.0
        self.t_measure_end = 0.0
        self.measure_io_base: _t.Dict[str, int] = {}
        self.congestion_frames = 0
        loop = asyncio.get_running_loop()
        self.done = asyncio.Event()
        self.failed: "asyncio.Future[None]" = loop.create_future()
        self.stats_futures: _t.Dict[Endpoint, "asyncio.Future[_t.Dict[str, _t.Any]]"] = {}

    # -- issue path ---------------------------------------------------------
    def issue_one(self) -> None:
        mg = self.next_mg
        self.next_mg = mg + 1
        self.starts[mg] = time.perf_counter()
        n_workers = len(self.worker_ids)
        for _ in range(self.fanout):
            op = self.op_counter
            self.op_counter = op + 1
            worker_id = self.worker_ids[op % n_workers]
            links = self.worker_links[worker_id]
            link = links[op % len(links)] if len(links) > 1 else links[0]
            rid = op & _RID_MASK
            self.pending[rid] = mg
            key = op % self.key_space
            codec = link.codec
            if codec is BINARY_CODEC:
                link.out.send(
                    codec.encode_op(
                        rid, worker_id, key, self.value_size, _PRIORITY
                    )
                )
            else:
                link.out.send(
                    codec.encode(
                        {
                            "t": "op",
                            "rid": rid,
                            "server": worker_id,
                            "key": key,
                            "size": self.value_size,
                            "prio": priority_to_wire(_PRIORITY),
                        }
                    )
                )

    def io_counters(self) -> _t.Dict[str, int]:
        return {
            "frames_sent": sum(link.out.frames_sent for link in self.links),
            "bytes_sent": sum(link.out.bytes_sent for link in self.links),
            "writes": sum(link.out.writes for link in self.links),
            "frames_received": sum(
                link.stream.frames_read for link in self.links
            ),
        }

    # -- inbound frames -------------------------------------------------------
    def on_res(self, frame: _t.Dict[str, _t.Any]) -> None:
        mg = self.pending.pop(int(frame["rid"]), -1)
        if mg < 0:
            self.fail(
                LiveTransportError(f"result for unknown wire id: {frame!r}")
            )
            return
        left = self.remaining[mg] - 1
        self.remaining[mg] = left
        if left:
            return
        now = time.perf_counter()
        if mg >= self.warmup:
            self.rtts.append(now - self.starts[mg])
        self.completed += 1
        if self.completed == self.warmup:
            # Warmup drained: the window is full and in steady state, so
            # the measured span starts here.
            self.t_measure_start = now
            self.measure_io_base = self.io_counters()
        if self.next_mg < self.total:
            self.issue_one()
        elif self.completed == self.total:
            self.t_measure_end = now
            self.done.set()

    async def read_loop(self, link: _FireLink) -> None:
        try:
            while True:
                frame = await link.stream.read_frame()
                if frame is None:
                    if not self.done.is_set():
                        self.fail(
                            LiveTransportError("server closed the connection")
                        )
                    return
                kind = frame.get("t")
                if kind == "res":
                    self.on_res(frame)
                elif kind == "congestion":
                    self.congestion_frames += 1
                elif kind == "stats":
                    future = self.stats_futures.get(link.endpoint)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif kind == "admin-ack":
                    pass
                elif kind == "error":
                    self.fail(
                        LiveTransportError(
                            f"service error: {frame.get('error')!r}"
                        )
                    )
                else:
                    self.fail(
                        LiveTransportError(f"unexpected frame {frame!r}")
                    )
        except asyncio.CancelledError:
            pass
        except (ProtocolError, ConnectionError) as exc:
            self.fail(LiveTransportError(f"live connection failed: {exc}"))

    def fail(self, exc: Exception) -> None:
        if not self.failed.done():
            self.failed.set_exception(exc)


async def run_firehose(
    endpoints: _t.Sequence[Endpoint],
    multigets: int = 5000,
    fanout: int = 4,
    value_size: int = 1024,
    window: int = 64,
    pool: int = 1,
    protocol: int = MAX_PROTOCOL_VERSION,
    warmup: _t.Optional[int] = None,
    key_space: int = 16384,
    wall_timeout: float = 300.0,
) -> FirehoseResult:
    """Saturate a live cluster and measure its wire-path throughput.

    Keeps ``window`` multigets pipelined across ``pool`` connections per
    endpoint until ``multigets`` of them (after ``warmup`` discarded ones)
    have completed; ops round-robin over every worker the cluster
    advertises.  Returns throughput, multiget RTT percentiles and the
    I/O ledger on both sides.
    """
    if multigets < 1 or fanout < 1 or window < 1 or pool < 1:
        raise ValueError("multigets, fanout, window and pool must be >= 1")
    if warmup is None:
        # Enough to fill the window and warm every worker's EWMA, bounded
        # so short smoke runs are not dominated by it.
        warmup = min(max(window, 100), multigets)
    total = warmup + multigets

    opened: _t.List[
        _t.Tuple[
            Endpoint,
            asyncio.StreamReader,
            asyncio.StreamWriter,
            _t.Dict[str, _t.Any],
        ]
    ] = []
    try:
        for endpoint in endpoints:
            for _slot in range(pool):
                reader, writer = await asyncio.open_connection(*endpoint)
                try:
                    # The firehose never consumes congestion broadcasts:
                    # opt every connection out so saturation does not turn
                    # into a broadcast storm.
                    ack = await handshake(
                        reader, writer, max_proto=protocol, congestion=False
                    )
                except BaseException:
                    writer.close()
                    raise
                opened.append((endpoint, reader, writer, ack))
        LiveTransport._validate_acks(
            endpoints, [entry[3] for entry in opened], pool
        )
    except BaseException:
        for _, _, writer, _ in opened:
            writer.close()
        raise

    n_servers = int(opened[0][3]["n_servers"])
    negotiated = min(
        int(entry[3].get("proto", 1)) for entry in opened
    )
    links: _t.List[_FireLink] = []
    worker_links: _t.Dict[int, _t.List[_FireLink]] = {}
    primary: _t.Dict[Endpoint, _FireLink] = {}
    for endpoint, reader, writer, ack in opened:
        link = _FireLink(
            endpoint, codec_for(int(ack.get("proto", 1))), reader, writer
        )
        links.append(link)
        primary.setdefault(endpoint, link)
        workers = ack.get("workers")
        if workers is None:  # an old server's ack has no list: it hosts all
            workers = range(n_servers)
        for worker_id in workers:
            worker_links.setdefault(int(worker_id), []).append(link)

    run = _FirehoseRun(
        links, worker_links, total, warmup, fanout, value_size, key_space
    )
    loop = asyncio.get_running_loop()
    for link in links:
        link.task = loop.create_task(
            run.read_loop(link),
            name=f"firehose.{link.endpoint[0]}:{link.endpoint[1]}",
        )
    try:
        for _ in range(min(window, total)):
            run.issue_one()
        waiter = loop.create_task(run.done.wait())
        finished, _pending = await asyncio.wait(
            {waiter, run.failed},
            timeout=wall_timeout,
            return_when=asyncio.FIRST_COMPLETED,
        )
        if run.failed in finished:
            waiter.cancel()
            run.failed.exception()
            raise _t.cast(Exception, run.failed.exception())
        if not finished:
            waiter.cancel()
            raise LiveTransportError(
                f"firehose did not complete {total} multigets within "
                f"{wall_timeout}s ({run.completed} done)"
            )
        server_io = await _collect_server_stats(run, primary)
    finally:
        if not run.failed.done():
            run.failed.cancel()
        else:
            run.failed.exception()
        for link in links:
            if link.task is not None:
                link.task.cancel()
            await link.out.close(flush_timeout=0.5)

    rtts = sorted(run.rtts)
    measured_io = {
        key: value - run.measure_io_base.get(key, 0)
        for key, value in run.io_counters().items()
    }
    return FirehoseResult(
        multigets=multigets,
        fanout=fanout,
        window=window,
        pool=pool,
        endpoints=len(endpoints),
        protocol=negotiated,
        elapsed_s=run.t_measure_end - run.t_measure_start,
        p50_ms=_percentile(rtts, 50.0) * 1e3,
        p99_ms=_percentile(rtts, 99.0) * 1e3,
        client_io=measured_io,
        server_io=server_io,
        congestion_frames=run.congestion_frames,
    )


async def _collect_server_stats(
    run: _FirehoseRun, primary: _t.Dict[Endpoint, _FireLink]
) -> _t.Dict[str, int]:
    """One stats round-trip per endpoint, summed into a cluster ledger."""
    loop = asyncio.get_running_loop()
    for endpoint, link in primary.items():
        run.stats_futures[endpoint] = loop.create_future()
        link.out.send(link.codec.encode({"t": "admin", "cmd": "stats"}))
    try:
        replies = await asyncio.wait_for(
            asyncio.gather(*run.stats_futures.values()), timeout=10.0
        )
    except asyncio.TimeoutError:
        return {}
    totals: _t.Dict[str, int] = {}
    for reply in replies:
        for key in (
            "completed",
            "rejected",
            "frames_received",
            "frames_sent",
            "bytes_sent",
            "writes",
        ):
            if key in reply:
                totals[key] = totals.get(key, 0) + int(reply[key])
    return totals
