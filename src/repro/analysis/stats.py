"""Statistical helpers: bootstrap confidence intervals, seed stability.

The paper reports that "the standard deviation is not shown as it is
largely negligible"; the seed-sweep bench uses these helpers to verify
that claim holds in the reproduction too.
"""

from __future__ import annotations

import math
import typing as _t

from ..sim.rng import Stream


def mean(values: _t.Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: _t.Sequence[float]) -> float:
    """Sample standard deviation (n-1)."""
    if len(values) < 2:
        raise ValueError("stdev needs at least two values")
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def coefficient_of_variation(values: _t.Sequence[float]) -> float:
    """stdev / mean -- the "negligible deviation" check."""
    m = mean(values)
    if m == 0:
        raise ValueError("coefficient of variation undefined for zero mean")
    return stdev(values) / m


def bootstrap_ci(
    values: _t.Sequence[float],
    statistic: _t.Callable[[_t.Sequence[float]], float] = mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 17,
) -> _t.Tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic."""
    if not values:
        raise ValueError("bootstrap of empty sequence")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples too small")
    stream = Stream(seed, "bootstrap")
    n = len(values)
    stats: _t.List[float] = []
    for _ in range(n_resamples):
        resample = [values[stream.randrange(n)] for _ in range(n)]
        stats.append(statistic(resample))
    stats.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_idx = int(alpha * n_resamples)
    hi_idx = min(n_resamples - 1, int((1.0 - alpha) * n_resamples))
    return stats[lo_idx], stats[hi_idx]


def relative_gap(measured: float, reference: float) -> float:
    """(measured - reference) / reference; the paper's "within X%" metric."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return (measured - reference) / reference


def slo_attainment(values: _t.Sequence[float], threshold: float) -> float:
    """Fraction of observations at or below ``threshold`` (an SLO check).

    The operational reading of tail latency: "what share of tasks finished
    within X ms".  Complements percentile tables in the ablation reports.
    """
    if not values:
        raise ValueError("slo attainment of empty sequence")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return sum(1 for v in values if v <= threshold) / len(values)


def geometric_mean(values: _t.Sequence[float]) -> float:
    """Geometric mean (for aggregating speedup ratios)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
