"""ASCII charts: grouped bars (Figure 2's shape) and CDF sketches.

These render into benchmark stdout so the reproduced figures are visible
directly in ``pytest benchmarks/ --benchmark-only`` output and in
EXPERIMENTS.md without any plotting stack.
"""

from __future__ import annotations

import math
import typing as _t


def bar_chart(
    values: _t.Mapping[str, float],
    width: int = 50,
    unit: str = "ms",
    title: _t.Optional[str] = None,
) -> str:
    """Horizontal bar chart of name -> value."""
    if not values:
        raise ValueError("no values to plot")
    if width < 10:
        raise ValueError("width too small")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must contain a positive maximum")
    label_w = max(len(name) for name in values)
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{name.ljust(label_w)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: _t.Mapping[str, _t.Mapping[str, float]],
    width: int = 46,
    unit: str = "ms",
    title: _t.Optional[str] = None,
) -> str:
    """Figure-2 style: one block per percentile group, bars per strategy."""
    if not groups:
        raise ValueError("no groups to plot")
    peak = max(v for series in groups.values() for v in series.values())
    if peak <= 0:
        raise ValueError("values must contain a positive maximum")
    label_w = max(len(name) for series in groups.values() for name in series)
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    for group, series in groups.items():
        lines.append(f"-- {group} --")
        for name, value in series.items():
            bar = "#" * max(1, int(round(width * value / peak)))
            lines.append(f"  {name.ljust(label_w)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def cdf_sketch(
    points: _t.Sequence[_t.Tuple[float, float]],
    rows: int = 12,
    width: int = 60,
    log_x: bool = True,
    title: _t.Optional[str] = None,
) -> str:
    """Rough CDF plot of (value, cumulative fraction) points."""
    if len(points) < 2:
        raise ValueError("need at least two CDF points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x:
        if min(xs) <= 0:
            raise ValueError("log_x requires positive values")
        xs = [math.log10(x) for x in xs]
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(rows)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / span * (width - 1)))
        row = min(rows - 1, int((1.0 - y) * (rows - 1)))
        grid[row][col] = "*"
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    for i, row_cells in enumerate(grid):
        frac = 1.0 - i / (rows - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row_cells))
    axis = "-" * width
    lines.append("     +" + axis)
    if log_x:
        lines.append(
            f"      10^{x_lo:.1f}".ljust(width // 2 + 6)
            + f"10^{x_hi:.1f}".rjust(width // 2)
        )
    return "\n".join(lines)
