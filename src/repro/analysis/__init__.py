"""Analysis: tables, ASCII plots and statistics for experiment reports."""

from .ascii_plots import bar_chart, cdf_sketch, grouped_bar_chart
from .stats import (
    bootstrap_ci,
    coefficient_of_variation,
    geometric_mean,
    mean,
    relative_gap,
    slo_attainment,
    stdev,
)
from .tables import percentile_matrix, ratio_table, render_table

__all__ = [
    "bar_chart",
    "bootstrap_ci",
    "cdf_sketch",
    "coefficient_of_variation",
    "geometric_mean",
    "grouped_bar_chart",
    "mean",
    "percentile_matrix",
    "ratio_table",
    "relative_gap",
    "render_table",
    "slo_attainment",
    "stdev",
]
