"""Plain-text table rendering for benchmark reports.

No plotting dependencies are available offline, so every figure is
regenerated as an aligned text table (the paper's Figure 2 bar chart
becomes a percentile x strategy matrix) plus ASCII charts from
:mod:`repro.analysis.ascii_plots`.
"""

from __future__ import annotations

import typing as _t

Row = _t.Mapping[str, _t.Any]


def _format_cell(value: _t.Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    rows: _t.Sequence[Row],
    columns: _t.Optional[_t.Sequence[str]] = None,
    float_fmt: str = ".3f",
    title: _t.Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        raise ValueError("no rows to render")
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [
        [_format_cell(row.get(c, ""), float_fmt) for c in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))
    ]
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(r))))
    return "\n".join(lines)


def percentile_matrix(
    summaries: _t.Mapping[str, _t.Mapping[float, float]],
    percentiles: _t.Sequence[float],
    unit_scale: float = 1e3,
    unit: str = "ms",
) -> str:
    """Figure-2-style matrix: one row per strategy, one column per pctl."""
    rows: _t.List[_t.Dict[str, _t.Any]] = []
    for name, pcts in summaries.items():
        row: _t.Dict[str, _t.Any] = {"strategy": name}
        for p in percentiles:
            row[f"p{p:g} ({unit})"] = pcts[p] * unit_scale
        rows.append(row)
    return render_table(rows)


def ratio_table(
    ratios: _t.Mapping[float, float],
    label: str,
    kind: str = "x",
) -> str:
    """Render per-percentile ratios ("C3 / BRB = 2.7x @ p99")."""
    rows = [
        {"percentile": f"p{p:g}", label: f"{v:.2f}{kind}"}
        for p, v in sorted(ratios.items())
    ]
    return render_table(rows, float_fmt=".2f")
