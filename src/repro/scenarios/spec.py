"""Scenario specifications: named, frozen bundles of workload + faults.

A :class:`ScenarioSpec` composes the three axes an experiment varies --
workload parameters (load, skew, fan-out, ...), cluster topology, and a
:class:`~repro.cluster.faults.FaultSchedule` -- into one named, immutable
object.  :meth:`ScenarioSpec.build_config` turns a spec into a concrete
:class:`~repro.harness.config.ExperimentConfig` for any strategy and task
count, so every registered strategy can run every registered scenario.

Specs are frozen (overrides are stored as tuples of pairs) so they can be
module-level constants and compare/hash by value; use
:func:`make_scenario` to build one from plain dicts.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..cluster.faults import FaultSchedule, NO_FAULTS
from ..cluster.topology import ClusterSpec
from ..harness.config import ExperimentConfig


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: workload + topology + fault script."""

    name: str
    #: One-line human description for ``repro scenarios``.
    summary: str
    #: ``ExperimentConfig`` field overrides, as a tuple of (field, value).
    config_overrides: _t.Tuple[_t.Tuple[str, _t.Any], ...] = ()
    #: ``ClusterSpec`` field overrides, as a tuple of (field, value).
    cluster_overrides: _t.Tuple[_t.Tuple[str, _t.Any], ...] = ()
    #: Scripted fault events this scenario injects.
    faults: FaultSchedule = NO_FAULTS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(
            self, "config_overrides", tuple(tuple(kv) for kv in self.config_overrides)
        )
        object.__setattr__(
            self, "cluster_overrides", tuple(tuple(kv) for kv in self.cluster_overrides)
        )
        reserved = {"strategy", "cluster", "fault_schedule", "scenario"}
        for field, _ in self.config_overrides:
            if field in reserved:
                raise ValueError(
                    f"scenario {self.name!r} may not override {field!r} directly"
                )

    # -- materialization --------------------------------------------------------
    def build_config(
        self,
        strategy: str = "unifincr-credits",
        n_tasks: _t.Optional[int] = None,
        **overrides: _t.Any,
    ) -> ExperimentConfig:
        """A concrete :class:`ExperimentConfig` for this scenario.

        ``overrides`` (and ``n_tasks``) win over the scenario's own
        settings, so callers can scale a scenario down for smoke tests
        without redefining it.  A whole ``cluster=ClusterSpec(...)`` or
        ``fault_schedule=FaultSchedule(...)`` may be passed to replace the
        scenario's topology or fault script outright.
        """
        if "scenario" in overrides:
            raise ValueError(
                "the scenario name is recorded automatically; "
                "it cannot be overridden"
            )
        cluster = overrides.pop("cluster", None)
        if cluster is None:
            cluster = ClusterSpec(**dict(self.cluster_overrides))
        fault_schedule = overrides.pop("fault_schedule", self.faults)
        fields: _t.Dict[str, _t.Any] = dict(self.config_overrides)
        fields.update(overrides)
        if n_tasks is not None:
            fields["n_tasks"] = n_tasks
        return ExperimentConfig(
            strategy=strategy,
            cluster=cluster,
            fault_schedule=fault_schedule,
            scenario=self.name,
            **fields,
        )

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Machine-readable form (``repro scenarios --json``): the name,
        the workload/cluster parameter overrides and the typed fault
        events, so loadgen configs and external tooling never have to
        scrape the human-oriented listing."""
        return {
            "name": self.name,
            "summary": self.summary,
            "config_overrides": dict(self.config_overrides),
            "cluster_overrides": dict(self.cluster_overrides),
            "faults": self.faults.to_dicts(),
        }

    def describe(self) -> str:
        lines = [f"{self.name}: {self.summary}"]
        for field, value in self.config_overrides:
            lines.append(f"  {field} = {value!r}")
        for field, value in self.cluster_overrides:
            lines.append(f"  cluster.{field} = {value!r}")
        for fault in self.faults.describe():
            lines.append(f"  fault: {fault}")
        return "\n".join(lines)


def make_scenario(
    name: str,
    summary: str,
    overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None,
    cluster: _t.Optional[_t.Mapping[str, _t.Any]] = None,
    faults: FaultSchedule = NO_FAULTS,
) -> ScenarioSpec:
    """Build a frozen :class:`ScenarioSpec` from plain dicts."""
    return ScenarioSpec(
        name=name,
        summary=summary,
        config_overrides=tuple(sorted((overrides or {}).items())),
        cluster_overrides=tuple(sorted((cluster or {}).items())),
        faults=faults,
    )
