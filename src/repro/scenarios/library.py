"""The built-in scenario library.

Eight named workload scenarios covering the paper's evaluation plus the
fault shapes tail-latency systems are judged on.  Fault onsets are virtual
seconds; at the scaled default task counts (5k-12k tasks, ~10k tasks/s at
70% load) a run lasts roughly 0.5-1.2 s, so every recurring fault below
fires at least once.  Scale-down smoke runs (a few hundred tasks) may end
before a window opens; the schedule still validates and reports zero
windows.
"""

from __future__ import annotations

from ..cluster.faults import (
    CrashFault,
    FaultSchedule,
    FlashCrowdFault,
    NetworkJitterFault,
    SlowdownFault,
)
from .registry import register_scenario
from .spec import make_scenario

INFINITE = float("inf")


#: The paper's Section 2.2 evaluation setup, fault-free.
STEADY_STATE = register_scenario(
    make_scenario(
        "steady-state",
        "the paper's SoundCloud-like workload at 70% load, no faults",
    )
)

#: One replica periodically degraded 4x (GC pauses / compaction), the
#: shape of the repo's Ablation F straggler benchmark.
STRAGGLER = register_scenario(
    make_scenario(
        "straggler",
        "one server 4x slower in recurring windows (GC / compaction)",
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0,), factor=4.0, start=0.05, duration=0.1, period=0.25
                ),
            )
        ),
    )
)

#: Staggered GC pauses sweeping across three servers; windows on distinct
#: servers overlap when drift accumulates.
RECURRING_GC = register_scenario(
    make_scenario(
        "recurring-gc",
        "staggered 2.5x GC pauses recurring on three different servers",
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0,), factor=2.5, start=0.04, duration=0.08, period=0.21
                ),
                SlowdownFault(
                    servers=(3,), factor=2.5, start=0.09, duration=0.08, period=0.23
                ),
                SlowdownFault(
                    servers=(6,), factor=2.5, start=0.14, duration=0.08, period=0.25
                ),
            )
        ),
    )
)

#: A load step: arrivals briefly exceed capacity, then recede.
FLASH_CROWD = register_scenario(
    make_scenario(
        "flash-crowd",
        "recurring 2.2x arrival surges over a 60%-load baseline",
        overrides={"load": 0.60},
        faults=FaultSchedule(
            (
                FlashCrowdFault(
                    multiplier=2.2, start=0.15, duration=0.2, period=0.6
                ),
            )
        ),
    )
)

#: Popularity concentrates on few keys: replica hotspots via the placement.
HOTSPOT_SKEW = register_scenario(
    make_scenario(
        "hotspot-skew",
        "hot keyspace: Zipf(1.2) over 20k keys, more playlist expansions",
        overrides={
            "zipf_skew": 1.2,
            "n_keys": 20_000,
            "playlist_fraction": 0.35,
        },
    )
)

#: A permanently mixed fleet: three of nine servers are older/slower.
HETEROGENEOUS_CLUSTER = register_scenario(
    make_scenario(
        "heterogeneous-cluster",
        "three of nine servers permanently 1.5x slower (mixed hardware)",
        overrides={"load": 0.65},
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0, 1, 2), factor=1.5, start=0.0, duration=INFINITE
                ),
            )
        ),
    )
)

#: The fabric degrades: one-way latency inflates with log-normal jitter.
NETWORK_JITTER = register_scenario(
    make_scenario(
        "network-jitter",
        "recurring 6x one-way latency inflation with log-normal jitter",
        faults=FaultSchedule(
            (
                NetworkJitterFault(
                    factor=6.0, sigma=0.4, start=0.1, duration=0.15, period=0.4
                ),
            )
        ),
    )
)

#: A replica goes down and comes back; queued work must survive.
CRASH_RESTART = register_scenario(
    make_scenario(
        "crash-restart",
        "one server crashes for 80ms in recurring windows, queue retained",
        faults=FaultSchedule(
            (
                CrashFault(servers=(0,), start=0.1, duration=0.08, period=0.4),
            )
        ),
    )
)
