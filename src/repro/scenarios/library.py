"""The built-in scenario library.

Fifteen named workload scenarios covering the paper's evaluation, the
fault shapes tail-latency systems are judged on, the placement
pathologies sharded stores hit at scale, and the self-healing pairs the
SLO control plane is evaluated on (see ``docs/scenarios.md`` for the
full catalog).  Fault onsets are virtual seconds; at the scaled
default task counts (5k-12k tasks, ~10k tasks/s at 70% load) a run lasts
roughly 0.5-1.2 s, so every recurring fault below fires at least once.
Scale-down smoke runs (a few hundred tasks) may end before a window
opens; the schedule still validates and reports zero windows.
"""

from __future__ import annotations

from ..cluster.faults import (
    CrashFault,
    FaultSchedule,
    FlashCrowdFault,
    NetworkJitterFault,
    RebalanceFault,
    SlowdownFault,
)
from ..cluster.topology import ClusterSpec
from .registry import register_scenario
from .spec import make_scenario

INFINITE = float("inf")

#: The paper's default ring (9 servers, RF 3, one partition per server);
#: placement-driven scenarios derive their targets from it so the fault
#: script and the routing layer can never disagree about who holds what.
_PAPER_RING = ClusterSpec().make_placement()


#: The paper's Section 2.2 evaluation setup, fault-free.
STEADY_STATE = register_scenario(
    make_scenario(
        "steady-state",
        "the paper's SoundCloud-like workload at 70% load, no faults",
    )
)

#: One replica periodically degraded 4x (GC pauses / compaction), the
#: shape of the repo's Ablation F straggler benchmark.
STRAGGLER = register_scenario(
    make_scenario(
        "straggler",
        "one server 4x slower in recurring windows (GC / compaction)",
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0,), factor=4.0, start=0.05, duration=0.1, period=0.25
                ),
            )
        ),
    )
)

#: Staggered GC pauses sweeping across three servers; windows on distinct
#: servers overlap when drift accumulates.
RECURRING_GC = register_scenario(
    make_scenario(
        "recurring-gc",
        "staggered 2.5x GC pauses recurring on three different servers",
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0,), factor=2.5, start=0.04, duration=0.08, period=0.21
                ),
                SlowdownFault(
                    servers=(3,), factor=2.5, start=0.09, duration=0.08, period=0.23
                ),
                SlowdownFault(
                    servers=(6,), factor=2.5, start=0.14, duration=0.08, period=0.25
                ),
            )
        ),
    )
)

#: A load step: arrivals briefly exceed capacity, then recede.
FLASH_CROWD = register_scenario(
    make_scenario(
        "flash-crowd",
        "recurring 2.2x arrival surges over a 60%-load baseline",
        overrides={"load": 0.60},
        faults=FaultSchedule(
            (
                FlashCrowdFault(
                    multiplier=2.2, start=0.15, duration=0.2, period=0.6
                ),
            )
        ),
    )
)

#: Popularity concentrates on few keys: replica hotspots via the placement.
HOTSPOT_SKEW = register_scenario(
    make_scenario(
        "hotspot-skew",
        "hot keyspace: Zipf(1.2) over 20k keys, more playlist expansions",
        overrides={
            "zipf_skew": 1.2,
            "n_keys": 20_000,
            "playlist_fraction": 0.35,
        },
    )
)

#: A permanently mixed fleet: three of nine servers are older/slower.
HETEROGENEOUS_CLUSTER = register_scenario(
    make_scenario(
        "heterogeneous-cluster",
        "three of nine servers permanently 1.5x slower (mixed hardware)",
        overrides={"load": 0.65},
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=(0, 1, 2), factor=1.5, start=0.0, duration=INFINITE
                ),
            )
        ),
    )
)

#: The fabric degrades: one-way latency inflates with log-normal jitter.
NETWORK_JITTER = register_scenario(
    make_scenario(
        "network-jitter",
        "recurring 6x one-way latency inflation with log-normal jitter",
        faults=FaultSchedule(
            (
                NetworkJitterFault(
                    factor=6.0, sigma=0.4, start=0.1, duration=0.15, period=0.4
                ),
            )
        ),
    )
)

#: One replica group absorbs most of the traffic: the placement-aware
#: hotspot (contrast with hotspot-skew, whose heat spreads hash-uniformly).
HOT_SHARD = register_scenario(
    make_scenario(
        "hot-shard",
        "40% of key draws hit partition 0's replica group (3 of 9 servers)",
        overrides={
            "hot_shard": 0,
            "hot_shard_weight": 0.4,
            "n_keys": 20_000,
            "load": 0.6,
        },
    )
)

#: Exactly the servers holding the hot partition lag (compaction on one
#: replica group): per-key eligible sets decide who can dodge the lag.
REPLICA_LAG = register_scenario(
    make_scenario(
        "replica-lag",
        "partition 0's whole replica group recurringly 2.5x slower",
        faults=FaultSchedule(
            (
                SlowdownFault(
                    servers=_PAPER_RING.replicas_of(0),
                    factor=2.5,
                    start=0.05,
                    duration=0.12,
                    period=0.3,
                ),
            )
        ),
    )
)

#: A mid-run ring change: one server is decommissioned and later rejoins;
#: routing follows the surviving replicas window-for-window.
RING_REBALANCE = register_scenario(
    make_scenario(
        "ring-rebalance",
        "server 2 leaves the placement ring mid-run and rejoins (recurring)",
        faults=FaultSchedule(
            (
                RebalanceFault(
                    servers=(2,), start=0.08, duration=0.15, period=0.4
                ),
            )
        ),
    )
)

#: Popularity mass concentrated in few shards: a coarse vnode ring under
#: heavy Zipf skew, so hot keys share partitions instead of spreading.
SHARD_SKEW = register_scenario(
    make_scenario(
        "shard-skew",
        "Zipf(1.3) popularity over a coarse 12-partition vnode ring",
        overrides={"zipf_skew": 1.3, "n_keys": 20_000},
        cluster={"placement_kind": "chash", "n_partitions": 12},
    )
)

#: A replica goes down and comes back; queued work must survive.
CRASH_RESTART = register_scenario(
    make_scenario(
        "crash-restart",
        "one server crashes for 80ms in recurring windows, queue retained",
        faults=FaultSchedule(
            (
                CrashFault(servers=(0,), start=0.1, duration=0.08, period=0.4),
            )
        ),
    )
)

# -- self-healing pairs -------------------------------------------------------
# Each fault scenario above has a ``*-remediated`` twin that closes the
# loop: the streamed metrics bus feeds the SLO breach detector, and on
# breach the remediation driver acts through the placement/credits/
# hedging levers (see docs/observability.md).  Compare against the base
# scenario run in ``remediation="monitor"`` mode -- same bus, same
# detector, no action -- so breach-window counts are like for like.

#: The windowed-p99 target the remediated scenarios defend (model ms):
#: comfortably above the steady-state tail, well below the faulted one.
REMEDIATION_SLO_P99_MS = 10.0

HOT_SHARD_REMEDIATED = register_scenario(
    make_scenario(
        "hot-shard-remediated",
        "hot-shard with the SLO loop spreading the hot partition",
        overrides={
            "hot_shard": 0,
            "hot_shard_weight": 0.4,
            "n_keys": 20_000,
            "load": 0.6,
            "remediation": "slo",
            "slo_p99_ms": REMEDIATION_SLO_P99_MS,
        },
    )
)

FLASH_CROWD_REMEDIATED = register_scenario(
    make_scenario(
        "flash-crowd-remediated",
        "flash-crowd with the SLO loop reacting to arrival surges",
        overrides={
            "load": 0.60,
            "remediation": "slo",
            "slo_p99_ms": REMEDIATION_SLO_P99_MS,
        },
        faults=FaultSchedule(
            (
                FlashCrowdFault(
                    multiplier=2.2, start=0.15, duration=0.2, period=0.6
                ),
            )
        ),
    )
)

CRASH_RESTART_REMEDIATED = register_scenario(
    make_scenario(
        "crash-restart-remediated",
        "crash-restart with the SLO loop excluding the downed server",
        overrides={
            "remediation": "slo",
            "slo_p99_ms": REMEDIATION_SLO_P99_MS,
        },
        faults=FaultSchedule(
            (
                CrashFault(servers=(0,), start=0.1, duration=0.08, period=0.4),
            )
        ),
    )
)
