"""The scenario registry: named scenarios, resolvable from anywhere.

Mirrors the strategy-builder registry in :mod:`repro.harness.builders`:
scenarios register under their name, ``SCENARIOS`` is a live read-only
view, and :func:`get_scenario` resolves names with a helpful error.  The
built-in library (:mod:`repro.scenarios.library`) registers itself on
package import; third-party code can add its own scenarios the same way.
"""

from __future__ import annotations

import typing as _t

from .spec import ScenarioSpec

_REGISTRY: _t.Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (its ``name`` becomes the key)."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (mainly for tests of third-party registration)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Resolve a scenario name, with a helpful error on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {tuple(_REGISTRY)}"
        ) from None


def scenario_names() -> _t.Tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


class _Scenarios(_t.Mapping[str, ScenarioSpec]):
    """Live, read-only mapping view of the registry."""

    def __getitem__(self, name: str) -> ScenarioSpec:
        return get_scenario(name)

    def __iter__(self) -> _t.Iterator[str]:
        return iter(tuple(_REGISTRY))

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __repr__(self) -> str:
        return f"Scenarios({tuple(_REGISTRY)})"


#: Live view of every registered scenario, keyed by name.
SCENARIOS: _t.Mapping[str, ScenarioSpec] = _Scenarios()
