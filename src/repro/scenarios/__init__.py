"""Scenario layer: named workload + topology + fault-schedule bundles.

``SCENARIOS`` is a live registry of named :class:`ScenarioSpec` objects;
the built-in library registers eight scenarios on import
(``steady-state``, ``straggler``, ``recurring-gc``, ``flash-crowd``,
``hotspot-skew``, ``heterogeneous-cluster``, ``network-jitter``,
``crash-restart``).  Every scenario composes with every registered
strategy::

    from repro.scenarios import get_scenario
    from repro.harness import run_experiment

    config = get_scenario("straggler").build_config(strategy="c3", n_tasks=5000)
    result = run_experiment(config, seed=1)
"""

from .registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .spec import ScenarioSpec, make_scenario
from . import library  # noqa: F401  -- registers the built-in scenarios

__all__ = [
    "SCENARIOS",
    "ScenarioSpec",
    "get_scenario",
    "library",
    "make_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
