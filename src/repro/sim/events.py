"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-calendar design (as popularized by
SimPy): an :class:`Event` is a one-shot occurrence that carries a value and
a list of callbacks.  Events are *triggered* (given a value and scheduled on
the environment's calendar) and later *processed* (their callbacks run at
the scheduled virtual time).

Everything in the cluster substrate -- message deliveries, service
completions, controller epochs -- is expressed in terms of these events.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Environment


class _PendingType:
    """Sentinel for "this event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


#: Unique sentinel marking an untriggered event's value slot.
PENDING = _PendingType()

#: Scheduling priority for urgent events (processed before normal ones that
#: share the same timestamp).  Used by the kernel for interrupts.
URGENT = 0

#: Default scheduling priority.
NORMAL = 1

#: Scheduling priority for deferred work that must run after every NORMAL
#: event of the same timestamp (e.g. store matching flushes).
LOW = 2


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The ``cause`` attribute carries the value passed to
    :meth:`~repro.sim.process.Process.interrupt`.
    """

    @property
    def cause(self) -> object:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence in virtual time.

    An event goes through three states:

    1. *pending*  -- created, not yet triggered; ``triggered`` is False.
    2. *triggered* -- it has a value and sits on the event calendar.
    3. *processed* -- the environment popped it and ran its callbacks.

    Callbacks are plain callables receiving the event.  New callbacks may
    only be added before the event is processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to run when the event is processed; ``None`` afterwards.
        self.callbacks: _t.Optional[_t.List[_t.Callable[["Event"], None]]] = []
        self._value: object = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the calendar."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was handled (prevents error escalation)."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- triggering --------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event to allow ``return env.event().succeed(x)`` chains.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): triggering is the kernel's hottest
        # entry point (every store match and process end lands here).
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` as its value.

        A failed event re-raises inside any process that waits on it.  If no
        one waits on it and it is never defused, the environment raises the
        exception at processing time so errors never pass silently.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state/value of another event.

        Useful as a callback: ``evt_a.callbacks.append(evt_b.trigger)``.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay in virtual time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened constructor: one Timeout is allocated per yielded wait,
        # which makes this the single most-called initializer in a run.
        # Writing the slots directly and pushing the calendar entry inline
        # skips the Event.__init__ and env.schedule() frames (and the
        # redundant PENDING placeholder the base init would assign).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(env._queue, (env._now + delay, NORMAL, next(env._eid), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue:
    """Ordered mapping from the events of a condition to their values.

    Mirrors the interface of a read-only dict keyed by event instances, in
    trigger order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: _t.List[Event] = []

    def __getitem__(self, key: Event) -> object:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self) -> _t.Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def keys(self) -> _t.List[Event]:
        return list(self.events)

    def values(self) -> _t.List[object]:
        return [e._value for e in self.events]

    def items(self) -> _t.List[_t.Tuple[Event, object]]:
        return [(e, e._value) for e in self.events]

    def todict(self) -> _t.Dict[Event, object]:
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a list of sub-events.

    ``evaluate`` decides when the condition is met; :meth:`all_events` and
    :meth:`any_events` provide the usual AND / OR semantics.  The condition's
    value is a :class:`ConditionValue` of all sub-events triggered so far.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: _t.Callable[[_t.List[Event], int], bool],
        events: _t.Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately met (e.g. empty AllOf)?
        if self._evaluate(self._events, 0):
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None or event.triggered:
                if event.triggered:
                    value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Propagate the failure; mark handled on the sub-event.
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: _t.List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: _t.List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition met once *all* sub-events triggered."""

    def __init__(self, env: "Environment", events: _t.Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition met once *any* sub-event triggered."""

    def __init__(self, env: "Environment", events: _t.Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
