"""Shared resources for processes: resources, stores and priority stores.

These follow the put/get event protocol: a ``put()``/``get()``/``request()``
call returns an event that a process yields; the event triggers once the
operation could be carried out.  The matching loop between queued puts and
gets runs eagerly whenever either side changes.

The BRB *model* realization (ideal global queue with work-pulling servers)
is built directly on :class:`PriorityFilterStore`: server cores ``get`` the
smallest-priority item that satisfies a predicate ("a request for a
partition this server replicates").
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from .events import Event, LOW

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


# ---------------------------------------------------------------------------
# Base put/get machinery
# ---------------------------------------------------------------------------


class Put(Event):
    """Event returned by ``put()`` calls; triggers when the item is stored."""

    __slots__ = ("resource", "item")

    def __init__(self, resource: "BaseStore", item: object) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.item = item
        resource.put_queue.append(self)
        resource._schedule_trigger()

    def cancel(self) -> None:
        """Withdraw the pending put (no-op once triggered)."""
        if not self.triggered and self in self.resource.put_queue:
            self.resource.put_queue.remove(self)


class Get(Event):
    """Event returned by ``get()`` calls; triggers with the retrieved item."""

    __slots__ = ("resource", "filter")

    def __init__(
        self,
        resource: "BaseStore",
        filter: _t.Optional[_t.Callable[[object], bool]] = None,
    ) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.filter = filter
        resource.get_queue.append(self)
        resource._schedule_trigger()

    def cancel(self) -> None:
        """Withdraw the pending get (no-op once triggered)."""
        if not self.triggered and self in self.resource.get_queue:
            self.resource.get_queue.remove(self)


class BaseStore:
    """Common machinery for stores: queues of blocked puts/gets + matching."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.put_queue: _t.List[Put] = []
        self.get_queue: _t.List[Get] = []
        self._trigger_pending = False

    # Subclasses implement _do_put/_do_get returning True when satisfied.
    def _do_put(self, event: Put) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_get(self, event: Get) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _schedule_trigger(self) -> None:
        """Defer matching to the end of the current timestamp.

        All puts and gets issued at one instant are collected before any
        matching happens (the flush runs at LOW priority after every NORMAL
        event with the same timestamp).  For priority stores this is what
        makes priorities meaningful when consumers are idle: a batch of
        same-instant arrivals is ordered *before* a waiting consumer grabs
        the first one.  This mirrors how a real server drains a kernel
        socket buffer: everything that arrived is visible before the next
        scheduling decision.
        """
        if self._trigger_pending:
            return
        self._trigger_pending = True
        # Bare-callback timer instead of a throwaway Event: the flush is
        # pure control flow, nothing ever waits on it.  Same (time,
        # priority, sequence) calendar slot as the old flush event, so
        # matching order is byte-identical.
        self.env.call_later(0.0, self._flush, priority=LOW)

    def _flush(self, _arg: object = None) -> None:
        self._trigger_pending = False
        self._trigger(None)

    def _trigger(self, _event: _t.Optional[Event]) -> None:
        """Run the matching loop until no more progress is possible."""
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(self.put_queue):
                put_ev = self.put_queue[idx]
                if self._do_put(put_ev):
                    self.put_queue.pop(idx)
                    progress = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self.get_queue):
                get_ev = self.get_queue[idx]
                if self._do_get(get_ev):
                    self.get_queue.pop(idx)
                    progress = True
                else:
                    idx += 1

    def put(self, item: object) -> Put:
        """Request to store ``item``; returns the event to yield on."""
        return Put(self, item)

    def get(self) -> Get:
        """Request to retrieve an item; returns the event to yield on."""
        return Get(self)


# ---------------------------------------------------------------------------
# Concrete stores
# ---------------------------------------------------------------------------


class Store(BaseStore):
    """FIFO store of arbitrary items with optional capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self.items: _t.List[object] = []

    def __len__(self) -> int:
        return len(self.items)

    def _do_put(self, event: Put) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: Get) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False


class FilterStore(Store):
    """Store whose gets may carry a predicate selecting acceptable items."""

    def get(
        self, filter: _t.Optional[_t.Callable[[object], bool]] = None
    ) -> Get:
        return Get(self, filter=filter)

    def _do_get(self, event: Get) -> bool:
        for idx, item in enumerate(self.items):
            if event.filter is None or event.filter(item):
                self.items.pop(idx)
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Wrapper pairing an arbitrary (unorderable) item with a priority key.

    Lower keys are retrieved first.  A monotonically increasing sequence
    number breaks ties FIFO, which the scheduling disciplines rely on.
    """

    __slots__ = ("key", "seq", "item")
    _seq = count()

    def __init__(self, key: _t.Any, item: object) -> None:
        self.key = key
        self.seq = next(PriorityItem._seq)
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return (self.key, self.seq) < (other.key, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PriorityItem(key={self.key!r}, item={self.item!r})"


class PriorityStore(BaseStore):
    """Store retrieving the smallest item first (heap-ordered).

    Items should be :class:`PriorityItem` instances (or anything orderable).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self.items: _t.List[_t.Any] = []

    def __len__(self) -> int:
        return len(self.items)

    def _do_put(self, event: Put) -> bool:
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: Get) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False


class PriorityFilterStore(PriorityStore):
    """Priority store whose gets may filter items.

    ``get(filter)`` returns the *smallest* item satisfying the predicate.
    This backs the paper's ideal "model" realization: a single global
    priority queue from which each free server core pulls the
    highest-priority request it is able to serve.

    The filtered retrieval is O(n log n) in the worst case; the model
    realization only ever holds the backlog in it, which stays modest at the
    simulated loads.
    """

    def get(
        self, filter: _t.Optional[_t.Callable[[object], bool]] = None
    ) -> Get:
        return Get(self, filter=filter)

    def _do_get(self, event: Get) -> bool:
        if event.filter is None:
            return super()._do_get(event)
        skipped: _t.List[_t.Any] = []
        found = None
        while self.items:
            item = heapq.heappop(self.items)
            if event.filter(item):
                found = item
                break
            skipped.append(item)
        for item in skipped:
            heapq.heappush(self.items, item)
        if found is None:
            return False
        event.succeed(found)
        return True


# ---------------------------------------------------------------------------
# Counted resource (server cores, controller slots, ...)
# ---------------------------------------------------------------------------


class Request(Event):
    """Event returned by :meth:`Resource.request`.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: _t.Optional[float] = None
        resource.queue.append(self)
        resource._trigger()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        if not self.triggered and self in self.resource.queue:
            self.resource.queue.remove(self)


class Resource:
    """A counted resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.queue: _t.List[Request] = []
        self.users: _t.List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Queue for a slot; the returned event triggers once granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted slot (idempotent)."""
        if request in self.users:
            self.users.remove(request)
            self._trigger()
        else:
            request.cancel()

    def _trigger(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self.queue.pop(0)
            req.usage_since = self.env.now
            self.users.append(req)
            req.succeed()
