"""The discrete-event simulation environment (virtual clock + calendar).

:class:`Environment` owns the event calendar -- a binary heap of
``(time, priority, sequence, event)`` tuples -- and the virtual clock.  All
latency numbers produced by this repository are differences of this virtual
clock, which makes them deterministic and immune to GIL scheduling noise
(the concern flagged by the reproduction notes).
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from .events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    SimulationError,
    Timeout,
)
from .process import Process, ProcessGenerator

Infinity: float = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when the calendar is empty."""


class StopSimulation(Exception):
    """Signals :meth:`Environment.run` to return (event-triggered stop)."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event.ok:
            raise cls(event.value)
        # Propagate failures of the until-event.
        raise _t.cast(BaseException, event.value)


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Virtual time at which the clock starts (seconds by convention
        throughout this repository).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: _t.List[_t.Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: _t.Optional[Process] = None
        #: Total number of events processed so far (for micro-benchmarks).
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` units of virtual time later."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: _t.Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that triggers once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Put a triggered event on the calendar ``delay`` from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if the calendar is empty)."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next event on the calendar, advancing the clock."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        self.events_processed += 1

        if not event._ok and not event._defused:
            # Nobody handled this failure: crash the simulation loudly.
            exc = _t.cast(BaseException, event._value)
            raise exc

    def run(self, until: _t.Union[None, float, Event] = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the calendar is exhausted;
        * a number -- run until virtual time reaches that value;
        * an :class:`Event` -- run until the event is processed, returning
          its value.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until={at} must lie in the future (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=NORMAL)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until.value  # already processed
            until.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if isinstance(until, Event) and until._value is not PENDING:
                return until.value
            if isinstance(until, Event):
                raise SimulationError(
                    "calendar ran dry before the until-event triggered"
                ) from None
            return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} pending={len(self._queue)}>"
