"""The discrete-event simulation environment (virtual clock + calendar).

:class:`Environment` owns the event calendar -- a flat binary heap of
``(time, priority, sequence, entry)`` tuples -- and the virtual clock.  All
latency numbers produced by this repository are differences of this virtual
clock, which makes them deterministic and immune to GIL scheduling noise
(the concern flagged by the reproduction notes).

The calendar holds two kinds of entries, distinguished by exact type:

* :class:`~repro.sim.events.Event` -- the full one-shot occurrence with a
  value and a callback list (what processes yield and compose);
* :class:`Timer` -- a bare ``fn(arg)`` callback with **no** event wrapper.
  This is the hot-path representation used by the network model, the store
  flush machinery and anything else that only ever needs "call this later":
  scheduling one costs a single small allocation instead of an Event, a
  callbacks list and a closure.

Timers support *lazy cancellation*: :meth:`Timer.cancel` flips a flag and
the calendar discards the entry when it reaches the top of the heap --
nothing is ever removed from the middle of the heap (removal would be
O(n) and would perturb the sequence numbering the determinism contract
rests on).  A cancelled timer does **not** count toward
``events_processed``.

Determinism contract: entries fire in exactly ``(time, priority,
sequence)`` lexicographic order, where the sequence number is drawn from
one shared counter at scheduling time.  Timers and events share the
counter, so converting a call site from a Timeout-plus-callback to a
Timer preserves byte-identical execution order (the engine differential
tests in ``tests/sim/`` pin this).

The ``run()`` loop is deliberately inlined (no per-event ``step()`` call,
hot attributes bound to locals): the kernel is the multiplier under every
benchmark in this repository, and the inlining is worth ~15% events/sec
on its own -- see ``docs/performance.md`` for the measured ledger.
``step()`` remains the single-event API and must be kept semantically in
sync with the inlined loop.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush
from itertools import count

from .events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    SimulationError,
    Timeout,
)
from .process import Process, ProcessGenerator

Infinity: float = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when the calendar is empty."""


class StopSimulation(Exception):
    """Signals :meth:`Environment.run` to return (event-triggered stop)."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event.ok:
            raise cls(event.value)
        # Propagate failures of the until-event.
        raise _t.cast(BaseException, event.value)


class Timer:
    """A scheduled bare callback: the calendar's no-wrapper fast path.

    Created through :meth:`Environment.call_later` / ``call_at``; fires as
    ``fn(arg)``.  :meth:`cancel` is lazy -- the heap entry stays where it
    is and is skipped (without counting as a processed event) when popped.
    """

    __slots__ = ("fn", "arg", "cancelled")

    def __init__(self, fn: _t.Callable[[_t.Any], None], arg: _t.Any) -> None:
        self.fn = fn
        self.arg = arg
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the timer dead; the calendar discards it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Timer {getattr(self.fn, '__qualname__', self.fn)!r} {state}>"


class PeriodicTimer:
    """A self-rearming :class:`Timer`: ``fn(arg)`` every ``interval``.

    Created through :meth:`Environment.call_every`.  Cancellation stops
    the rearm; the in-flight calendar entry is lazily discarded like any
    cancelled timer.
    """

    __slots__ = ("env", "interval", "fn", "arg", "priority", "cancelled", "_timer")

    def __init__(
        self,
        env: "Environment",
        interval: float,
        fn: _t.Callable[[_t.Any], None],
        arg: _t.Any,
        priority: int,
    ) -> None:
        self.env = env
        self.interval = interval
        self.fn = fn
        self.arg = arg
        self.priority = priority
        self.cancelled = False
        self._timer = env.call_later(interval, self._fire, arg, priority)

    def _fire(self, arg: _t.Any) -> None:
        self.fn(arg)
        if not self.cancelled:
            self._timer = self.env.call_later(
                self.interval, self._fire, self.arg, self.priority
            )

    def cancel(self) -> None:
        self.cancelled = True
        self._timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return (
            f"<PeriodicTimer {getattr(self.fn, '__qualname__', self.fn)!r} "
            f"every {self.interval} {state}>"
        )


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Virtual time at which the clock starts (seconds by convention
        throughout this repository).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Flat calendar: (time, priority, sequence, Event | Timer).
        self._queue: _t.List[_t.Tuple[float, int, int, _t.Any]] = []
        self._eid = count()
        self._active_proc: _t.Optional[Process] = None
        #: Total number of entries fired so far (for micro-benchmarks).
        #: Cancelled timers are skipped, not fired, and do not count.
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` units of virtual time later."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: _t.Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that triggers once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Put a triggered event on the calendar ``delay`` from now."""
        heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def call_later(
        self,
        delay: float,
        fn: _t.Callable[[_t.Any], None],
        arg: _t.Any = None,
        priority: int = NORMAL,
    ) -> Timer:
        """Schedule ``fn(arg)`` after ``delay``; no event wrapper.

        Returns the :class:`Timer`, whose :meth:`~Timer.cancel` lazily
        withdraws the call.  This is the fast path for fire-and-forget
        work (message delivery, deferred flushes): it allocates one small
        object where ``timeout(...)`` + a callback costs an Event, a
        callbacks list and usually a closure.
        """
        if delay < 0:
            # Same contract as Timeout: scheduling into the past would
            # silently drag the virtual clock backwards on pop.
            raise ValueError(f"negative delay {delay}")
        timer = Timer(fn, arg)
        heappush(
            self._queue, (self._now + delay, priority, next(self._eid), timer)
        )
        return timer

    def call_every(
        self,
        interval: float,
        fn: _t.Callable[[_t.Any], None],
        arg: _t.Any = None,
        priority: int = NORMAL,
    ) -> "PeriodicTimer":
        """Schedule ``fn(arg)`` every ``interval``, starting one from now.

        The periodic hook behind the streamed metrics ticker: cheaper
        and allocation-lighter than an equivalent ``timeout()``-yielding
        process, and cancellable via the returned handle.  Note the
        calendar only advances while *other* events exist -- a periodic
        timer alone does not keep ``run(until=event)`` alive, it rides
        along with the run.
        """
        if interval <= 0:
            raise ValueError(f"non-positive interval {interval}")
        return PeriodicTimer(self, interval, fn, arg, priority)

    def call_at(
        self,
        at: float,
        fn: _t.Callable[[_t.Any], None],
        arg: _t.Any = None,
        priority: int = NORMAL,
    ) -> Timer:
        """Schedule ``fn(arg)`` at absolute virtual time ``at`` (>= now)."""
        if at < self._now:
            raise ValueError(f"call_at time {at} lies in the past (now={self._now})")
        timer = Timer(fn, arg)
        heappush(self._queue, (at, priority, next(self._eid), timer))
        return timer

    def peek(self) -> float:
        """Time of the next calendar entry (``inf`` if the calendar is empty).

        Lazily cancelled timers still occupy their slot until popped, so
        ``peek`` may report the time of an entry that will be discarded.
        """
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next calendar entry, advancing the clock.

        Single-step API; :meth:`run` inlines the same logic -- keep the
        two in sync when touching the dispatch semantics.
        """
        queue = self._queue
        while True:
            try:
                now, _, _, entry = heappop(queue)
            except IndexError:
                raise EmptySchedule("no scheduled events left") from None
            if entry.__class__ is Timer:
                if entry.cancelled:
                    # Lazily discarded: not counted, and the clock does
                    # not advance to a dead entry's deadline.
                    continue
                self._now = now
                entry.fn(entry.arg)
                self.events_processed += 1
                return
            break

        self._now = now
        callbacks = entry.callbacks
        entry.callbacks = None  # mark processed
        for callback in callbacks:
            callback(entry)
        self.events_processed += 1

        if not entry._ok and not entry._defused:
            # Nobody handled this failure: crash the simulation loudly.
            raise _t.cast(BaseException, entry._value)

    def run(self, until: _t.Union[None, float, Event] = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the calendar is exhausted;
        * a number -- run until virtual time reaches that value;
        * an :class:`Event` -- run until the event is processed, returning
          its value.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until={at} must lie in the future (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=NORMAL)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until.value  # already processed
            until.callbacks.append(StopSimulation.callback)

        # Inlined dispatch loop (the semantic twin of step()): hot
        # globals/attributes are bound once.  The processed counter is
        # bumped on the instance per entry -- callbacks may legitimately
        # read env.events_processed mid-run, so it cannot lag in a local.
        queue = self._queue
        pop = heappop
        timer_class = Timer
        try:
            while True:
                try:
                    now, _, _, entry = pop(queue)
                except IndexError:
                    raise EmptySchedule from None
                if entry.__class__ is timer_class:
                    if entry.cancelled:
                        # Lazily discarded: not counted, and the clock
                        # does not advance to a dead entry's deadline.
                        continue
                    self._now = now
                    entry.fn(entry.arg)
                    self.events_processed += 1
                    continue

                self._now = now
                callbacks = entry.callbacks
                entry.callbacks = None  # mark processed
                for callback in callbacks:
                    callback(entry)
                self.events_processed += 1

                if not entry._ok and not entry._defused:
                    # Unhandled failure: crash the simulation loudly.
                    raise _t.cast(BaseException, entry._value)
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if isinstance(until, Event) and until._value is not PENDING:
                return until.value
            if isinstance(until, Event):
                raise SimulationError(
                    "calendar ran dry before the until-event triggered"
                ) from None
            return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} pending={len(self._queue)}>"
