"""Discrete-event simulation kernel (virtual time, processes, resources).

A small, dependency-free kernel in the style of SimPy: generator-based
processes yield :class:`~repro.sim.events.Event` objects and are resumed
when those events fire.  All timing in the reproduction is virtual time
kept by :class:`~repro.sim.engine.Environment`, which sidesteps GIL and OS
scheduler noise entirely.

Quick example::

    from repro.sim import Environment

    env = Environment()

    def worker(env, name):
        yield env.timeout(1.0)
        return name

    proc = env.process(worker(env, "a"))
    env.run()
    assert env.now == 1.0 and proc.value == "a"
"""

from .engine import EmptySchedule, Environment, Infinity, StopSimulation
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    NORMAL,
    PENDING,
    SimulationError,
    Timeout,
    URGENT,
)
from .process import Process, ProcessGenerator
from .resources import (
    FilterStore,
    Get,
    PriorityFilterStore,
    PriorityItem,
    PriorityStore,
    Put,
    Request,
    Resource,
    Store,
)
from .rng import Stream, StreamFactory, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Get",
    "Infinity",
    "Interrupt",
    "NORMAL",
    "PENDING",
    "PriorityFilterStore",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "ProcessGenerator",
    "Put",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Stream",
    "StreamFactory",
    "Timeout",
    "URGENT",
    "derive_seed",
]
