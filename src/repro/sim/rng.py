"""Deterministic, named random-number streams.

Every stochastic component of the simulator (arrivals, value sizes,
fan-outs, service-time noise, replica tie-breaking, ...) draws from its own
named stream derived from a single root seed.  This gives two properties the
evaluation needs:

* **Reproducibility** -- a run is fully determined by ``(config, seed)``.
* **Common random numbers across strategies** -- when comparing BRB to C3
  under the same seed, both see *identical* workloads because the workload
  streams are independent of how many draws the strategy-internal streams
  make.  This sharpens the paired comparisons in the Figure 2 reproduction.
"""

from __future__ import annotations

import hashlib
import math
import random
import typing as _t


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that child seeds are effectively independent and do not
    collide for distinct names.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Memoized rejection-inversion constants for :meth:`Stream.zipf`, keyed by
#: ``(n, skew)``.  The constants are pure functions of the key, so sharing
#: them across streams and runs cannot perturb any draw.
_ZIPF_CONSTANTS: _t.Dict[_t.Tuple[int, float], _t.Tuple[float, float, float, float]] = {}


class Stream(random.Random):
    """A named random stream (a seeded ``random.Random`` with helpers)."""

    def __init__(self, seed: int, name: str = "") -> None:
        super().__init__(seed)
        self.name = name

    # -- distribution helpers used throughout the workload models ----------
    def exponential(self, mean: float) -> float:
        """Draw from Exp with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.expovariate(1.0 / mean)

    def bounded_pareto(self, alpha: float, lo: float, hi: float) -> float:
        """Draw from a Pareto distribution truncated to ``[lo, hi]``.

        Uses inverse-CDF sampling of the bounded Pareto; this is the value
        size model from the Facebook Memcached study the paper cites.
        """
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        u = self.random()
        la = lo**alpha
        ha = hi**alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def zipf(self, n: int, skew: float) -> int:
        """Draw a rank in ``[0, n)`` from a Zipf(skew) distribution.

        Implemented by inverse-CDF over precomputed weights would be costly
        per call; instead uses the rejection-inversion method of Hormann &
        Derflinger, which is O(1) per draw for skew > 0.

        The method's per-``(n, skew)`` constants are memoized in
        ``_ZIPF_CONSTANTS`` (the original closure-based formulation
        recomputed them -- and defined two closures -- on *every* draw).
        The arithmetic is unchanged expression for expression, so draws
        are bit-identical to the unmemoized version.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            raise ValueError("skew must be positive")
        if n == 1:
            return 0
        if skew == 1.0:
            skew = 1.0000001  # avoid the harmonic special case below

        # Rejection-inversion sampling (Hormann & Derflinger 1996), with
        # h(x) = exp((1-skew) log x) / (1-skew) expanded inline.
        consts = _ZIPF_CONSTANTS.get((n, skew))
        if consts is None:
            one_minus = 1.0 - skew
            h_x1 = math.exp(one_minus * math.log(1.5)) / one_minus - 1.0
            h_n = math.exp(one_minus * math.log(n + 0.5)) / one_minus
            threshold = (2.0 - math.exp(skew * math.log(2.0))) ** (-1.0)
            consts = (one_minus, h_x1, h_n, threshold)
            _ZIPF_CONSTANTS[(n, skew)] = consts
        one_minus, h_x1, h_n, threshold = consts
        draw = self.random
        exp = math.exp
        log = math.log
        while True:
            u = h_n + draw() * (h_x1 - h_n)
            x = exp(log(one_minus * u) / one_minus)
            k = int(x + 0.5)
            k = max(1, min(n, k))
            if k - x <= threshold or u >= exp(
                one_minus * log(k + 0.5)
            ) / one_minus - exp(-skew * log(k)):
                return k - 1

    def lognormal_mean(self, mean: float, sigma: float) -> float:
        """Draw log-normal with the given *arithmetic* mean and log-sigma."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self.lognormvariate(mu, sigma)


class StreamFactory:
    """Factory of named, independent :class:`Stream` objects.

    Streams are memoized: asking for the same name twice returns the same
    stream object (so sequential draws continue, they do not restart).
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: _t.Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream registered under ``name`` (creating it once)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = Stream(derive_seed(self.root_seed, name), name=name)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "StreamFactory":
        """Derive a child factory (e.g. one per client) with its own root."""
        return StreamFactory(derive_seed(self.root_seed, f"factory:{name}"))

    def __repr__(self) -> str:
        return f"StreamFactory(root_seed={self.root_seed}, streams={sorted(self._streams)})"
