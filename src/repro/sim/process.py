"""Generator-based processes for the simulation kernel.

A *process* wraps a Python generator that yields events.  When a yielded
event is processed, the generator is resumed with the event's value (or the
event's exception is thrown into it).  A process is itself an event that
triggers when the generator returns, which lets processes wait for each
other (fork/join) and compose with :class:`~repro.sim.events.Condition`.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

from .events import Event, Interrupt, NORMAL, PENDING, SimulationError, URGENT

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

ProcessGenerator = _t.Generator[Event, object, object]


class Initialize(Event):
    """Internal event that kicks a freshly created process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.process = process
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal urgent event that delivers an :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object) -> None:
        super().__init__(process.env)
        if process._value is not PENDING:
            raise SimulationError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [self._interrupt]
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process._value is not PENDING:
            return  # terminated in the meantime; interrupt is moot
        # Unsubscribe the process from whatever it is waiting on, then
        # deliver the interrupt immediately.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        process._resume(event)


class Process(Event):
    """Drives a generator, suspending it on every yielded event."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: _t.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits for (None when running).
        self._target: _t.Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> _t.Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw an :class:`Interrupt` into the process as soon as possible."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of ``event``.

        Hot path: this runs once per yielded event of every process.  The
        generator and the calendar push are bound to locals, and the
        common exit (subscribe to a pending event) is checked first.
        """
        env = self.env
        env._active_proc = self
        self._target = None
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The event failed: throw the exception into the process.
                    event.defuse()
                    exc = _t.cast(BaseException, event._value)
                    next_event = generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as exc:
                # Generator finished: the process event succeeds (the push
                # is env.schedule inlined; see Event.succeed).
                self._ok = True
                self._value = exc.value
                heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
                break
            except BaseException as exc:
                # Uncaught exception: the process event fails.
                self._ok = False
                self._value = exc
                heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
                break

            if not isinstance(next_event, Event):
                proc_error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = _FailedNow(env, proc_error)
                continue
            if next_event.env is not env:
                proc_error = RuntimeError(
                    f"process {self.name!r} yielded an event from a foreign environment"
                )
                event = _FailedNow(env, proc_error)
                continue

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: loop immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} {state}>"


class _FailedNow(Event):
    """An already-failed, already-processed pseudo-event.

    Used internally to feed an error back into a generator without going
    through the calendar.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", exc: BaseException) -> None:
        super().__init__(env)
        self._ok = False
        self._value = exc
        self._defused = True
        self.callbacks = None  # behave as already processed
