"""Generic parameter sweeps: one axis, many strategies, common seeds.

The ablation benches all share one shape -- vary a single knob, run a set
of strategies per point on a common seed grid, tabulate percentiles and
ratios.  This module packages that shape for downstream users.

Example::

    from repro.harness import ExperimentConfig
    from repro.harness.sweep import sweep

    result = sweep(
        ExperimentConfig(n_tasks=5000),
        parameter="load",
        values=[0.5, 0.7, 0.9],
        strategies=("c3", "unifincr-credits"),
        seeds=(1, 2),
    )
    print(result.render(percentile=99.0))

Dotted parameter paths reach into the nested cluster spec:
``parameter="cluster.one_way_latency"``.

``base`` may also be the *name* of a registered scenario -- the sweep then
runs over that scenario's workload and fault schedule::

    result = sweep("straggler", parameter="load", values=[0.5, 0.7],
                   strategies=("c3", "unifincr-credits"))
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from ..analysis.tables import render_table
from ..metrics.summary import PAPER_PERCENTILES
from .builders import get_builder
from .config import ExperimentConfig
from .results import ComparisonResult, compare_strategies
from .runner import run_seeds


def _replace_parameter(
    config: ExperimentConfig, parameter: str, value: _t.Any
) -> ExperimentConfig:
    """Return a config copy with ``parameter`` (possibly dotted) set.

    Dotted paths descend through nested dataclasses to arbitrary depth
    (``cluster.one_way_latency``, or deeper once topology grows nested
    specs); each intermediate segment must name a dataclass field whose
    value is itself a dataclass.
    """
    parts = parameter.split(".")
    if not all(parts):
        raise ValueError(f"malformed parameter path {parameter!r}")

    def _rebuild(obj: _t.Any, path: _t.Sequence[str], prefix: str) -> _t.Any:
        here = f"{prefix}.{path[0]}" if prefix else path[0]
        if not dataclasses.is_dataclass(obj):
            raise ValueError(
                f"cannot descend into {prefix!r}: "
                f"{type(obj).__name__} is not a dataclass"
            )
        names = tuple(f.name for f in dataclasses.fields(obj))
        if path[0] not in names:
            raise ValueError(
                f"unknown config field {here!r}; "
                f"{type(obj).__name__} has: {', '.join(names)}"
            )
        if len(path) == 1:
            return dataclasses.replace(obj, **{path[0]: value})
        inner = _rebuild(getattr(obj, path[0]), path[1:], here)
        return dataclasses.replace(obj, **{path[0]: inner})

    return _t.cast(ExperimentConfig, _rebuild(config, parts, ""))


@dataclasses.dataclass
class SweepResult:
    """Comparisons indexed by the swept parameter's values."""

    parameter: str
    values: _t.Tuple[_t.Any, ...]
    strategies: _t.Tuple[str, ...]
    comparisons: _t.Dict[_t.Any, ComparisonResult]

    def percentile_series(
        self, strategy: str, percentile: float
    ) -> _t.List[_t.Tuple[_t.Any, float]]:
        """(value, latency-seconds) pairs for one strategy/percentile."""
        return [
            (v, self.comparisons[v].summary_of(strategy).percentile(percentile))
            for v in self.values
        ]

    def speedup_series(
        self, slow: str, fast: str, percentile: float
    ) -> _t.List[_t.Tuple[_t.Any, float]]:
        """(value, slow/fast ratio) pairs along the sweep."""
        return [
            (v, self.comparisons[v].speedup(slow, fast)[percentile])
            for v in self.values
        ]

    def rows(self, percentile: float = 99.0) -> _t.List[_t.Dict[str, _t.Any]]:
        """Flat table rows: one per swept value, strategies as columns."""
        out: _t.List[_t.Dict[str, _t.Any]] = []
        for v in self.values:
            row: _t.Dict[str, _t.Any] = {self.parameter: v}
            for name in self.strategies:
                row[f"{name} p{percentile:g} (ms)"] = (
                    self.comparisons[v].summary_of(name).percentile(percentile) * 1e3
                )
            out.append(row)
        return out

    def render(self, percentile: float = 99.0) -> str:
        return render_table(
            self.rows(percentile),
            title=f"sweep over {self.parameter} (p{percentile:g})",
        )

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "points": {
                str(v): self.comparisons[v].to_dict() for v in self.values
            },
        }

    def canonical_json(self) -> str:
        """Key-sorted compact JSON -- the differential harness's yardstick."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def save_json(self, path: _t.Union[str, "Path"]) -> None:
        from pathlib import Path as _Path

        _Path(path).write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )


def sweep(
    base: _t.Union[ExperimentConfig, str],
    parameter: str,
    values: _t.Sequence[_t.Any],
    strategies: _t.Sequence[str],
    seeds: _t.Sequence[int] = (1,),
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
    n_tasks: _t.Optional[int] = None,
    executor: _t.Optional["GridExecutor"] = None,
) -> SweepResult:
    """Run the full (value x strategy x seed) grid.

    ``base`` is either a ready :class:`ExperimentConfig` or the name of a
    registered scenario; ``n_tasks`` (scenario mode only) scales the run.
    ``executor`` (see :mod:`repro.harness.parallel`) fans the *whole* grid
    -- not one value at a time -- across workers; results are merged back
    in grid order, so the output is byte-identical to a serial sweep.
    """
    if isinstance(base, str):
        from ..scenarios import get_scenario  # local import: scenarios sit above

        base = get_scenario(base).build_config(n_tasks=n_tasks)
    elif n_tasks is not None:
        raise ValueError("n_tasks is only meaningful with a scenario name")
    if not values:
        raise ValueError("sweep needs at least one value")
    if not strategies:
        raise ValueError("sweep needs at least one strategy")
    for name in strategies:
        get_builder(name)  # fail fast with the registry's helpful error

    # One strategy->config mapping per swept value, as a *list* so a
    # repeated value stays its own grid cell (exactly like the serial loop,
    # where the later duplicate overwrites the earlier in `comparisons`).
    grid_configs: _t.List[_t.Dict[str, ExperimentConfig]] = []
    for value in values:
        config = _replace_parameter(base, parameter, value)
        grid_configs.append(
            {name: config.with_strategy(name) for name in strategies}
        )

    comparisons: _t.Dict[_t.Any, ComparisonResult] = {}
    if executor is None:
        for value, value_configs in zip(values, grid_configs):
            comparisons[value] = compare_strategies(
                {
                    name: run_seeds(config, seeds)
                    for name, config in value_configs.items()
                },
                percentiles=percentiles,
            )
    else:
        from .parallel import enumerate_run_grid, split_by_strategy

        jobs = enumerate_run_grid(grid_configs, seeds)
        results = executor.run_jobs(jobs)
        block = len(strategies) * len(seeds)
        for v, value in enumerate(values):
            comparisons[value] = compare_strategies(
                split_by_strategy(
                    results[v * block : (v + 1) * block],
                    strategies,
                    len(seeds),
                ),
                percentiles=percentiles,
            )
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        strategies=tuple(strategies),
        comparisons=comparisons,
    )


if _t.TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from .parallel import GridExecutor
