"""Generic parameter sweeps: one axis, many strategies, common seeds.

The ablation benches all share one shape -- vary a single knob, run a set
of strategies per point on a common seed grid, tabulate percentiles and
ratios.  This module packages that shape for downstream users.

Example::

    from repro.harness import ExperimentConfig
    from repro.harness.sweep import sweep

    result = sweep(
        ExperimentConfig(n_tasks=5000),
        parameter="load",
        values=[0.5, 0.7, 0.9],
        strategies=("c3", "unifincr-credits"),
        seeds=(1, 2),
    )
    print(result.render(percentile=99.0))

Dotted parameter paths reach into the nested cluster spec:
``parameter="cluster.one_way_latency"``.

``base`` may also be the *name* of a registered scenario -- the sweep then
runs over that scenario's workload and fault schedule::

    result = sweep("straggler", parameter="load", values=[0.5, 0.7],
                   strategies=("c3", "unifincr-credits"))
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis.tables import render_table
from ..metrics.summary import PAPER_PERCENTILES
from .builders import get_builder
from .config import ExperimentConfig
from .results import ComparisonResult, compare_strategies
from .runner import run_seeds


def _replace_parameter(
    config: ExperimentConfig, parameter: str, value: _t.Any
) -> ExperimentConfig:
    """Return a config copy with ``parameter`` (possibly dotted) set."""
    if "." not in parameter:
        if not hasattr(config, parameter):
            raise ValueError(f"unknown config field {parameter!r}")
        return dataclasses.replace(config, **{parameter: value})
    head, rest = parameter.split(".", 1)
    if head != "cluster" or "." in rest:
        raise ValueError(f"unsupported parameter path {parameter!r}")
    if not hasattr(config.cluster, rest):
        raise ValueError(f"unknown cluster field {rest!r}")
    new_cluster = dataclasses.replace(config.cluster, **{rest: value})
    return dataclasses.replace(config, cluster=new_cluster)


@dataclasses.dataclass
class SweepResult:
    """Comparisons indexed by the swept parameter's values."""

    parameter: str
    values: _t.Tuple[_t.Any, ...]
    strategies: _t.Tuple[str, ...]
    comparisons: _t.Dict[_t.Any, ComparisonResult]

    def percentile_series(
        self, strategy: str, percentile: float
    ) -> _t.List[_t.Tuple[_t.Any, float]]:
        """(value, latency-seconds) pairs for one strategy/percentile."""
        return [
            (v, self.comparisons[v].summary_of(strategy).percentile(percentile))
            for v in self.values
        ]

    def speedup_series(
        self, slow: str, fast: str, percentile: float
    ) -> _t.List[_t.Tuple[_t.Any, float]]:
        """(value, slow/fast ratio) pairs along the sweep."""
        return [
            (v, self.comparisons[v].speedup(slow, fast)[percentile])
            for v in self.values
        ]

    def rows(self, percentile: float = 99.0) -> _t.List[_t.Dict[str, _t.Any]]:
        """Flat table rows: one per swept value, strategies as columns."""
        out: _t.List[_t.Dict[str, _t.Any]] = []
        for v in self.values:
            row: _t.Dict[str, _t.Any] = {self.parameter: v}
            for name in self.strategies:
                row[f"{name} p{percentile:g} (ms)"] = (
                    self.comparisons[v].summary_of(name).percentile(percentile) * 1e3
                )
            out.append(row)
        return out

    def render(self, percentile: float = 99.0) -> str:
        return render_table(
            self.rows(percentile),
            title=f"sweep over {self.parameter} (p{percentile:g})",
        )

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "points": {
                str(v): self.comparisons[v].to_dict() for v in self.values
            },
        }


def sweep(
    base: _t.Union[ExperimentConfig, str],
    parameter: str,
    values: _t.Sequence[_t.Any],
    strategies: _t.Sequence[str],
    seeds: _t.Sequence[int] = (1,),
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
    n_tasks: _t.Optional[int] = None,
) -> SweepResult:
    """Run the full (value x strategy x seed) grid.

    ``base`` is either a ready :class:`ExperimentConfig` or the name of a
    registered scenario; ``n_tasks`` (scenario mode only) scales the run.
    """
    if isinstance(base, str):
        from ..scenarios import get_scenario  # local import: scenarios sit above

        base = get_scenario(base).build_config(n_tasks=n_tasks)
    elif n_tasks is not None:
        raise ValueError("n_tasks is only meaningful with a scenario name")
    if not values:
        raise ValueError("sweep needs at least one value")
    if not strategies:
        raise ValueError("sweep needs at least one strategy")
    for name in strategies:
        get_builder(name)  # fail fast with the registry's helpful error
    comparisons: _t.Dict[_t.Any, ComparisonResult] = {}
    for value in values:
        config = _replace_parameter(base, parameter, value)
        comparisons[value] = compare_strategies(
            {
                name: run_seeds(config.with_strategy(name), seeds)
                for name in strategies
            },
            percentiles=percentiles,
        )
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        strategies=tuple(strategies),
        comparisons=comparisons,
    )
