"""Experiment runner: build a cluster for a strategy, feed it, measure it.

This is the integration point of the whole library: given an
:class:`~repro.harness.config.ExperimentConfig` and a seed it assembles
the simulation (workload, placement, network, servers, clients) by
resolving the config's strategy through the builder registry
(:mod:`repro.harness.builders`), runs the config's fault schedule, replays
the workload and returns a :class:`RunResult` with warmup-filtered task
latencies and audit counters.

The runner itself is strategy-agnostic: it never inspects the strategy
name.  Everything strategy-specific -- shared machinery, per-client
dispatch strategies, per-server execution engines, extra audit counters --
comes from the registered :class:`~repro.harness.builders.StrategyBuilder`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

from ..cluster.client import Client
from ..cluster.faults import FaultInjector
from ..cluster.messages import TaskCompletion
from ..cluster.remediation import RemediationDriver, build_remediation
from ..cluster.network import Network
from ..metrics.counters import MetricRegistry
from ..metrics.reservoir import ExactSample
from ..metrics.summary import DEFAULT_PERCENTILES, LatencySummary
from ..placement import MutablePlacement
from ..sim.engine import Environment
from ..sim.rng import StreamFactory
from .builders import ClusterContext, get_builder
from .config import ExperimentConfig


@dataclasses.dataclass
class RunResult:
    """Outcome of one (config, seed) simulation run."""

    config: ExperimentConfig
    seed: int
    #: Warmup-filtered task latencies (seconds).
    task_latencies: ExactSample
    #: Warmup-filtered per-request latencies (only if requested).
    request_latencies: _t.Optional[ExactSample]
    #: Per-request queue waits at the servers (only if requested).
    queue_waits: _t.Optional[ExactSample]
    #: Per-request service durations (only if requested).
    service_times: _t.Optional[ExactSample]
    #: Per-request client-side waits before dispatch: credit gating or C3
    #: pacing (only if requested).
    client_waits: _t.Optional[ExactSample]
    #: Virtual time at which the last task completed.
    sim_duration: float
    #: Events the kernel processed (micro-benchmark fodder).
    events_processed: int
    #: Tasks measured (after warmup exclusion).
    tasks_measured: int
    #: All tasks completed (including warmup).
    tasks_completed: int
    #: Requests served by the backend tier.
    requests_served: int
    #: Audit counters (congestion signals, grants, gated requests, ...).
    extras: _t.Dict[str, float]
    #: Sampled span trees (only when ``config.trace_sample > 0``).  Not
    #: part of :meth:`to_dict`: the golden byte-equality contract covers
    #: the schedule, and tracing is observation, not schedule.
    traces: _t.Optional[_t.List["TaskTrace"]] = None

    def summary(
        self, percentiles: _t.Sequence[float] = DEFAULT_PERCENTILES
    ) -> LatencySummary:
        return LatencySummary.from_recorder(
            self.config.strategy, self.task_latencies, percentiles
        )

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Canonical, JSON-friendly form of one run.

        This is the byte-equality contract the engine differential tests
        compare: two engines are *equivalent* for a (config, seed) pair
        exactly when this structure -- which folds every task latency into
        a SHA-256 digest of the full-precision float reprs, plus the audit
        counters and extras -- matches key for key, byte for byte.
        """
        latencies = self.task_latencies.values()
        digest = hashlib.sha256(
            "\n".join(repr(v) for v in latencies).encode("ascii")
        ).hexdigest()
        return {
            "strategy": self.config.strategy,
            "seed": self.seed,
            "n_tasks": self.config.n_tasks,
            "sim_duration": self.sim_duration,
            "events_processed": self.events_processed,
            "tasks_measured": self.tasks_measured,
            "tasks_completed": self.tasks_completed,
            "requests_served": self.requests_served,
            "task_latency_count": len(latencies),
            "task_latency_digest": digest,
            "extras": {k: self.extras[k] for k in sorted(self.extras)},
        }


class _CompletionTracker:
    """Counts completions, applies warmup filtering, fires the done event."""

    def __init__(
        self,
        env: Environment,
        n_tasks: int,
        warmup_tasks: int,
        record_requests: bool,
    ) -> None:
        self.env = env
        self.n_tasks = n_tasks
        self.warmup_tasks = warmup_tasks
        self.task_latencies = ExactSample()
        self.request_latencies = ExactSample() if record_requests else None
        self.queue_waits = ExactSample() if record_requests else None
        self.service_times = ExactSample() if record_requests else None
        self.client_waits = ExactSample() if record_requests else None
        self.completed = 0
        self.measured = 0
        self.done = env.event()

    def on_complete(self, completion: TaskCompletion) -> None:
        self.completed += 1
        if completion.task.task_id >= self.warmup_tasks:
            self.measured += 1
            self.task_latencies.record(completion.latency)
        if self.completed == self.n_tasks:
            self.done.succeed(self.env.now)

    def record(self, value: float) -> None:
        """Request-latency recorder interface (warmup not task-scoped)."""
        if self.request_latencies is not None:
            self.request_latencies.record(value)

    def observe_request(self, request: _t.Any) -> None:
        """Latency-anatomy hook: split the trail into queue wait + service.

        Model-realization requests have no meaningful enqueue-to-start
        separation from the client's perspective, but the timestamps are
        filled identically, so the decomposition is uniform.
        """
        if self.queue_waits is None:
            return
        if request.service_start_at >= 0 and request.enqueued_at >= 0:
            self.queue_waits.record(request.queue_wait)
        if request.completed_at >= 0 and request.service_start_at >= 0:
            self.service_times.record(request.service_time)
        if request.dispatched_at >= 0 and request.created_at >= 0:
            self.client_waits.record(request.dispatched_at - request.created_at)


def run_experiment(config: ExperimentConfig, seed: int = 1) -> RunResult:
    """Simulate one (config, seed) pair end to end."""
    builder = get_builder(config.strategy)
    streams = StreamFactory(seed)
    env = Environment()
    metrics = MetricRegistry()
    workload = config.workload()
    # The mutable wrapper is what lets RebalanceFault windows re-home
    # partitions mid-run; with no rebalance events it is pure delegation.
    placement = MutablePlacement(config.cluster.make_placement())
    placement.validate()
    network = Network(
        env,
        latency=config.cluster.make_latency_model(),
        stream=streams.stream("network.latency"),
        metrics=metrics,
    )
    ctx = ClusterContext(
        config=config,
        env=env,
        network=network,
        placement=placement,
        service_model=workload.service_model,
        streams=streams,
        metrics=metrics,
    )
    warmup_tasks = int(config.warmup_fraction * config.n_tasks)
    tracker = _CompletionTracker(
        env, config.n_tasks, warmup_tasks, config.record_requests
    )

    # Tracing rides the same observation hooks as request recording: it
    # adds no calendar events and draws from no RNG stream, so schedules
    # (and therefore goldens) are identical with or without it.  With
    # sampling off no recorder exists at all.
    recorder: _t.Optional[TraceRecorder] = None
    if config.trace_sample > 0.0:
        from ..trace import TraceRecorder as _TraceRecorder

        recorder = _TraceRecorder(env, config.trace_sample, warmup_tasks)

    # The remediation driver (if any) is assembled after the servers
    # exist, but completion callbacks only fire once env.run starts, so
    # a late-bound closure over ``remediation`` is safe.
    remediation: _t.Optional[RemediationDriver] = None
    on_complete: _t.Callable[[TaskCompletion], None] = tracker.on_complete
    if config.remediation != "off" or recorder is not None:
        _recorder = recorder

        def on_complete(completion: TaskCompletion) -> None:
            if config.remediation != "off":
                remediation.observe_completion(completion.latency)
            if _recorder is not None:
                _recorder.on_complete(completion)
            tracker.on_complete(completion)

    request_observer: _t.Optional[_t.Callable[[_t.Any], None]] = (
        tracker.observe_request if config.record_requests else None
    )
    if recorder is not None:
        _base_observer = request_observer
        _trace_observer = recorder.observe_request
        if _base_observer is None:
            request_observer = _trace_observer
        else:

            def request_observer(request: _t.Any) -> None:
                _base_observer(request)
                _trace_observer(request)

    # Construction order matters for byte-identical determinism: shared
    # machinery, then clients (strategy before client), then servers, then
    # the fault script -- the same order the pre-registry runner used.
    builder.build_shared(ctx)
    clients: _t.List[Client] = []
    strategies: _t.List[_t.Any] = []
    for client_id in range(config.n_clients):
        strategy = builder.build_client_strategy(ctx, client_id)
        strategies.append(strategy)
        clients.append(
            Client(
                env,
                client_id=client_id,
                network=network,
                strategy=strategy,
                request_recorder=tracker if config.record_requests else None,
                metrics=metrics,
                on_complete=on_complete,
                request_observer=request_observer,
            )
        )
    servers = [
        builder.build_server(ctx, server_id)
        for server_id in range(config.cluster.n_servers)
    ]
    injector = FaultInjector(
        env, config.faults(), servers, network, placement=placement
    )
    remediation = build_remediation(
        config,
        env,
        placement,
        ctx.shared,
        strategies,
        # Backlog = queued + in service: pacing strategies keep queues
        # near zero while saturating cores, so queues alone miss heat.
        lambda: [s.queue_length() + s.in_service for s in servers],
    )
    if remediation is not None:
        env.call_every(remediation.interval, remediation.tick)

    generator = workload.generator(streams)

    def feeder() -> _t.Generator:
        last_arrival = 0.0
        for _ in range(config.n_tasks):
            task = generator.next_task()
            # Flash-crowd faults compress inter-arrival gaps; at scale 1
            # this reduces exactly to waiting until task.arrival_time.
            gap = task.arrival_time - last_arrival
            last_arrival = task.arrival_time
            delay = gap / injector.arrival_scale()
            if delay > 0:
                yield env.timeout(delay)
            if remediation is not None:
                remediation.observe_arrival()
            clients[task.client_id].submit(task)

    env.process(feeder(), name="workload-feeder")
    end_time = env.run(until=tracker.done)

    # -- audit: conservation laws -------------------------------------------
    total_completed = sum(c.tasks_completed for c in clients)
    if total_completed != config.n_tasks:
        raise RuntimeError(
            f"lost tasks: {total_completed} completed of {config.n_tasks}"
        )
    requests_served = sum(s.completed for s in servers)
    # Hedging may leave duplicate copies in flight when the last task
    # completes; every *non-hedged* strategy must conserve exactly (checked
    # against the generated op count by the integration tests).

    extras: _t.Dict[str, float] = {
        "mean_server_utilization": sum(s.utilization for s in servers) / len(servers),
    }
    extras.update(builder.collect_extras(ctx, clients, servers))
    extras.update(injector.extras())
    if remediation is not None:
        extras.update(remediation.extras())
    if placement.swaps:
        extras["placement_swaps"] = float(placement.swaps)
    if recorder is not None:
        extras.update(recorder.extras())

    return RunResult(
        config=config,
        seed=seed,
        task_latencies=tracker.task_latencies,
        request_latencies=tracker.request_latencies,
        queue_waits=tracker.queue_waits,
        service_times=tracker.service_times,
        client_waits=tracker.client_waits,
        sim_duration=float(_t.cast(float, end_time)),
        events_processed=env.events_processed,
        tasks_measured=tracker.measured,
        tasks_completed=tracker.completed,
        requests_served=requests_served,
        extras=extras,
        traces=recorder.traces if recorder is not None else None,
    )


def run_seeds(
    config: ExperimentConfig,
    seeds: _t.Sequence[int],
    executor: _t.Optional["GridExecutor"] = None,
) -> _t.List[RunResult]:
    """Run the same experiment under several seeds (paper: 6 repetitions).

    ``executor`` (see :mod:`repro.harness.parallel`) fans the seeds across
    worker processes; the default runs them serially, in seed order.
    Results are returned in seed order either way.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if executor is None:
        return [run_experiment(config, seed) for seed in seeds]
    from .parallel import RunJob  # local import: parallel sits above runner

    return executor.run_jobs([RunJob(config=config, seed=seed) for seed in seeds])


if _t.TYPE_CHECKING:  # pragma: no cover
    from ..trace import TaskTrace, TraceRecorder
    from .parallel import GridExecutor
