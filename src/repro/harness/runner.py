"""Experiment runner: build a cluster for a strategy, feed it, measure it.

This is the integration point of the whole library: given an
:class:`~repro.harness.config.ExperimentConfig` and a seed it assembles
the simulation (workload, placement, network, servers, clients, and the
strategy-specific machinery -- C3 selectors, credits controller + gates,
or the ideal global queue), replays the workload and returns a
:class:`RunResult` with warmup-filtered task latencies and audit counters.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..baselines.c3 import C3Selector
from ..baselines.hedging import HedgedStrategy
from ..baselines.selectors import make_selector
from ..baselines.strategies import ObliviousStrategy
from ..cluster.faults import SlowdownInjector
from ..cluster.client import Client
from ..cluster.messages import TaskCompletion
from ..cluster.network import Network
from ..cluster.server import BackendServer, PullServer
from ..core.brb_client import BRBCreditsStrategy, BRBModelStrategy
from ..core.credits import CreditGate, CreditsController, equal_initial_shares
from ..core.model_queue import GlobalQueue
from ..core.priorities import make_assigner
from ..metrics.counters import MetricRegistry
from ..metrics.reservoir import ExactSample
from ..metrics.summary import DEFAULT_PERCENTILES, LatencySummary
from ..scheduling.disciplines import (
    EdfDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
)
from ..sim.engine import Environment
from ..sim.rng import StreamFactory
from .config import ExperimentConfig


@dataclasses.dataclass
class RunResult:
    """Outcome of one (config, seed) simulation run."""

    config: ExperimentConfig
    seed: int
    #: Warmup-filtered task latencies (seconds).
    task_latencies: ExactSample
    #: Warmup-filtered per-request latencies (only if requested).
    request_latencies: _t.Optional[ExactSample]
    #: Per-request queue waits at the servers (only if requested).
    queue_waits: _t.Optional[ExactSample]
    #: Per-request service durations (only if requested).
    service_times: _t.Optional[ExactSample]
    #: Per-request client-side waits before dispatch: credit gating or C3
    #: pacing (only if requested).
    client_waits: _t.Optional[ExactSample]
    #: Virtual time at which the last task completed.
    sim_duration: float
    #: Events the kernel processed (micro-benchmark fodder).
    events_processed: int
    #: Tasks measured (after warmup exclusion).
    tasks_measured: int
    #: All tasks completed (including warmup).
    tasks_completed: int
    #: Requests served by the backend tier.
    requests_served: int
    #: Audit counters (congestion signals, grants, gated requests, ...).
    extras: _t.Dict[str, float]

    def summary(
        self, percentiles: _t.Sequence[float] = DEFAULT_PERCENTILES
    ) -> LatencySummary:
        return LatencySummary.from_recorder(
            self.config.strategy, self.task_latencies, percentiles
        )


class _CompletionTracker:
    """Counts completions, applies warmup filtering, fires the done event."""

    def __init__(
        self,
        env: Environment,
        n_tasks: int,
        warmup_tasks: int,
        record_requests: bool,
    ) -> None:
        self.env = env
        self.n_tasks = n_tasks
        self.warmup_tasks = warmup_tasks
        self.task_latencies = ExactSample()
        self.request_latencies = ExactSample() if record_requests else None
        self.queue_waits = ExactSample() if record_requests else None
        self.service_times = ExactSample() if record_requests else None
        self.client_waits = ExactSample() if record_requests else None
        self.completed = 0
        self.measured = 0
        self.done = env.event()

    def on_complete(self, completion: TaskCompletion) -> None:
        self.completed += 1
        if completion.task.task_id >= self.warmup_tasks:
            self.measured += 1
            self.task_latencies.record(completion.latency)
        if self.completed == self.n_tasks:
            self.done.succeed(self.env.now)

    def record(self, value: float) -> None:
        """Request-latency recorder interface (warmup not task-scoped)."""
        if self.request_latencies is not None:
            self.request_latencies.record(value)

    def observe_request(self, request: _t.Any) -> None:
        """Latency-anatomy hook: split the trail into queue wait + service.

        Model-realization requests have no meaningful enqueue-to-start
        separation from the client's perspective, but the timestamps are
        filled identically, so the decomposition is uniform.
        """
        if self.queue_waits is None:
            return
        if request.service_start_at >= 0 and request.enqueued_at >= 0:
            self.queue_waits.record(request.queue_wait)
        if request.completed_at >= 0 and request.service_start_at >= 0:
            self.service_times.record(request.service_time)
        if request.dispatched_at >= 0 and request.created_at >= 0:
            self.client_waits.record(request.dispatched_at - request.created_at)


def _build_clients(
    config: ExperimentConfig,
    env: Environment,
    network: Network,
    placement: _t.Any,
    service_model: _t.Any,
    streams: StreamFactory,
    tracker: _CompletionTracker,
    metrics: MetricRegistry,
) -> _t.Tuple[_t.List[Client], _t.Dict[str, _t.Any]]:
    """Create per-client strategies plus any shared machinery."""
    strategy_name = config.strategy
    shared: _t.Dict[str, _t.Any] = {}
    clients: _t.List[Client] = []

    needs_credits = strategy_name.endswith("-credits")
    needs_model = strategy_name.endswith("-model")

    if needs_model:
        shared["global_queue"] = GlobalQueue(
            env,
            latency=config.cluster.make_latency_model(),
            stream=streams.stream("model.submit-latency"),
        )
    if needs_credits:
        shared["controller"] = CreditsController(
            env,
            network,
            n_clients=config.n_clients,
            server_capacities=config.cluster.server_capacities(),
            epoch=config.credits_epoch,
            allocation_interval=config.credits_measurement_interval,
            metrics=metrics,
        )
        shared["gates"] = []

    for client_id in range(config.n_clients):
        if strategy_name == "c3" or strategy_name == "c3-norate":
            selector = C3Selector(
                env,
                concurrency_weight=config.n_clients,
                stream=streams.stream(f"c3.tiebreak.{client_id}"),
                rate_control=(strategy_name == "c3"),
                # Start at the per-client fair share of one server so the
                # cubic controller explores around the right operating point.
                initial_rate=config.cluster.server_capacity() / config.n_clients,
            )
            strategy: _t.Any = ObliviousStrategy(placement, selector, service_model)
        elif strategy_name == "hedged":
            selector = make_selector(
                "least-outstanding", stream=streams.stream(f"selector.{client_id}")
            )
            strategy = HedgedStrategy(
                placement,
                selector,
                service_model,
                hedge_delay=config.hedge_delay,
            )
        elif strategy_name.startswith("oblivious-"):
            kind = {
                "oblivious-random": "random",
                "oblivious-rr": "round-robin",
                "oblivious-lor": "least-outstanding",
            }[strategy_name]
            selector = make_selector(
                kind, stream=streams.stream(f"selector.{client_id}")
            )
            strategy = ObliviousStrategy(placement, selector, service_model)
        elif needs_credits:
            assigner = make_assigner(strategy_name.split("-")[0])
            gate = CreditGate(
                env,
                network,
                client_id=client_id,
                server_ids=list(range(config.cluster.n_servers)),
                epoch=config.credits_epoch,
                measurement_interval=config.credits_measurement_interval,
                initial_share=equal_initial_shares(
                    config.cluster.server_capacities(),
                    config.n_clients,
                    config.credits_measurement_interval,
                ),
            )
            shared["gates"].append(gate)
            strategy = BRBCreditsStrategy(
                placement, assigner, service_model, gate=gate
            )
        elif needs_model:
            assigner = make_assigner(strategy_name.split("-")[0])
            strategy = BRBModelStrategy(
                placement, assigner, service_model, global_queue=shared["global_queue"]
            )
        else:  # pragma: no cover - config validates strategy names
            raise ValueError(f"cannot build strategy {strategy_name!r}")

        clients.append(
            Client(
                env,
                client_id=client_id,
                network=network,
                strategy=strategy,
                request_recorder=tracker if config.record_requests else None,
                metrics=metrics,
                on_complete=tracker.on_complete,
                request_observer=(
                    tracker.observe_request if config.record_requests else None
                ),
            )
        )
    return clients, shared


def _build_servers(
    config: ExperimentConfig,
    env: Environment,
    network: Network,
    placement: _t.Any,
    service_model: _t.Any,
    streams: StreamFactory,
    shared: _t.Dict[str, _t.Any],
    metrics: MetricRegistry,
) -> _t.List[_t.Any]:
    strategy_name = config.strategy
    servers: _t.List[_t.Any] = []
    if strategy_name.endswith("-model"):
        for server_id in range(config.cluster.n_servers):
            servers.append(
                PullServer(
                    env,
                    server_id=server_id,
                    cores=config.cluster.cores_per_server,
                    service_model=service_model,
                    network=network,
                    service_stream=streams.stream(f"service.{server_id}"),
                    global_queue=shared["global_queue"].store,
                    partitions=placement.partitions_of_server(server_id),
                    metrics=metrics,
                )
            )
        return servers

    needs_credits = strategy_name.endswith("-credits")
    for server_id in range(config.cluster.n_servers):
        if needs_credits:
            if strategy_name.startswith("edf"):
                discipline: _t.Any = EdfDiscipline()
            else:
                discipline = PriorityDiscipline()
        else:
            discipline = FifoDiscipline()
        servers.append(
            BackendServer(
                env,
                server_id=server_id,
                cores=config.cluster.cores_per_server,
                service_model=service_model,
                network=network,
                service_stream=streams.stream(f"service.{server_id}"),
                discipline=discipline,
                metrics=metrics,
                congestion_interval=(
                    config.congestion_check_interval if needs_credits else None
                ),
            )
        )
    return servers


def run_experiment(config: ExperimentConfig, seed: int = 1) -> RunResult:
    """Simulate one (config, seed) pair end to end."""
    streams = StreamFactory(seed)
    env = Environment()
    metrics = MetricRegistry()
    workload = config.workload()
    placement = config.cluster.make_placement()
    placement.validate()
    network = Network(
        env,
        latency=config.cluster.make_latency_model(),
        stream=streams.stream("network.latency"),
        metrics=metrics,
    )
    service_model = workload.service_model
    warmup_tasks = int(config.warmup_fraction * config.n_tasks)
    tracker = _CompletionTracker(
        env, config.n_tasks, warmup_tasks, config.record_requests
    )

    clients, shared = _build_clients(
        config, env, network, placement, service_model, streams, tracker, metrics
    )
    servers = _build_servers(
        config, env, network, placement, service_model, streams, shared, metrics
    )
    injector = None
    if config.slowdown_server >= 0:
        injector = SlowdownInjector(
            env,
            servers[config.slowdown_server],
            factor=config.slowdown_factor,
            start=config.slowdown_start,
            duration=config.slowdown_duration,
            period=config.slowdown_period,
        )

    generator = workload.generator(streams)

    def feeder() -> _t.Generator:
        for _ in range(config.n_tasks):
            task = generator.next_task()
            delay = task.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            clients[task.client_id].submit(task)

    env.process(feeder(), name="workload-feeder")
    end_time = env.run(until=tracker.done)

    # -- audit: conservation laws -------------------------------------------
    total_completed = sum(c.tasks_completed for c in clients)
    if total_completed != config.n_tasks:
        raise RuntimeError(
            f"lost tasks: {total_completed} completed of {config.n_tasks}"
        )
    requests_served = sum(s.completed for s in servers)
    # Hedging may leave duplicate copies in flight when the last task
    # completes; every *non-hedged* strategy must conserve exactly (checked
    # against the generated op count by the integration tests).

    extras: _t.Dict[str, float] = {
        "mean_server_utilization": sum(s.utilization for s in servers) / len(servers),
    }
    if "controller" in shared:
        controller: CreditsController = shared["controller"]
        extras["congestion_signals"] = float(controller.congestion_signals)
        extras["credit_grants"] = float(controller.grants_sent)
        extras["gated_requests"] = float(
            sum(g.gated for g in shared.get("gates", []))
        )
    if "global_queue" in shared:
        extras["global_queue_submitted"] = float(shared["global_queue"].submitted)
    if injector is not None:
        extras["slowdown_windows"] = float(injector.windows_injected)
    if config.strategy == "hedged":
        extras["hedges_sent"] = float(
            sum(c.strategy.hedges_sent for c in clients)
        )
        extras["wasted_responses"] = float(
            sum(c.strategy.wasted_responses for c in clients)
        )

    return RunResult(
        config=config,
        seed=seed,
        task_latencies=tracker.task_latencies,
        request_latencies=tracker.request_latencies,
        queue_waits=tracker.queue_waits,
        service_times=tracker.service_times,
        client_waits=tracker.client_waits,
        sim_duration=float(_t.cast(float, end_time)),
        events_processed=env.events_processed,
        tasks_measured=tracker.measured,
        tasks_completed=tracker.completed,
        requests_served=requests_served,
        extras=extras,
    )


def run_seeds(
    config: ExperimentConfig, seeds: _t.Sequence[int]
) -> _t.List[RunResult]:
    """Run the same experiment under several seeds (paper: 6 repetitions)."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [run_experiment(config, seed) for seed in seeds]
