"""Regeneration entry points for every figure in the paper.

* :func:`figure1_toy` -- the worked example of Figure 1: two tasks, three
  single-core servers, unit service times; shows the task-oblivious
  schedule finishing T2 in 2 time units and the task-aware schedule in 1.
* :func:`figure2` -- the headline evaluation: median/p95/p99 task latency
  for C3 and the four BRB variants over the SoundCloud-like workload.

Both return plain data structures; the benchmarks render them with
:mod:`repro.analysis` and assert the paper's qualitative claims.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..baselines.selectors import RoundRobinSelector
from ..baselines.strategies import ObliviousStrategy
from ..cluster.client import Client
from ..cluster.network import ConstantLatency, Network
from ..cluster.partitioner import ExplicitPlacement
from ..cluster.server import BackendServer, PullServer
from ..core.brb_client import BRBModelStrategy
from ..core.model_queue import GlobalQueue
from ..core.priorities import make_assigner
from ..metrics.summary import PAPER_PERCENTILES
from ..sim.engine import Environment
from ..sim.rng import StreamFactory
from ..workload.calibration import ServiceTimeModel
from ..workload.tasks import Operation, Task
from .config import ExperimentConfig, FIGURE2_STRATEGIES
from .results import ComparisonResult, compare_strategies
from .runner import run_seeds

# ---------------------------------------------------------------------------
# Figure 1: the worked toy example
# ---------------------------------------------------------------------------

#: Key ids for the toy's five operations.
KEY_A, KEY_B, KEY_C, KEY_D, KEY_E = 0, 1, 2, 3, 4


@dataclasses.dataclass(frozen=True)
class Figure1Result:
    """Completion times (in service-time units) of the toy's two tasks."""

    schedule: str
    t1_completion: float
    t2_completion: float


def _toy_setup() -> _t.Tuple[Environment, Network, ExplicitPlacement, ServiceTimeModel, _t.List[Task]]:
    env = Environment()
    streams = StreamFactory(0)
    network = Network(env, latency=ConstantLatency(0.0), stream=streams.stream("net"))
    # S1 holds {A, E}, S2 holds {B, C}, S3 holds {D}; replication factor 1.
    placement = ExplicitPlacement(
        key_to_partition={KEY_A: 0, KEY_E: 0, KEY_B: 1, KEY_C: 1, KEY_D: 2},
        partition_replicas=[(0,), (1,), (2,)],
        n_servers=3,
    )
    # Unit service times: overhead 0, bandwidth 1 byte/s, 1-byte values.
    service_model = ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="none")
    t1 = Task(
        task_id=0,
        arrival_time=0.0,
        client_id=0,
        operations=tuple(
            Operation(op_id=i, task_id=0, key=key, value_size=1)
            for i, key in enumerate((KEY_A, KEY_B, KEY_C))
        ),
    )
    t2 = Task(
        task_id=1,
        arrival_time=0.0,
        client_id=1,
        operations=tuple(
            Operation(op_id=3 + i, task_id=1, key=key, value_size=1)
            for i, key in enumerate((KEY_D, KEY_E))
        ),
    )
    return env, network, placement, service_model, [t1, t2]


def figure1_toy(task_aware: bool, assigner_name: str = "unifincr") -> Figure1Result:
    """Run the Figure 1 toy under either schedule.

    ``task_aware=False``: FIFO servers, requests dispatched in task order
    (T1 first), so S1 serves A before E -- T2 needs 2 time units.
    ``task_aware=True``: the ideal priority queue; S1 serves E before A --
    T2 completes in 1 unit while T1 still takes 2.
    """
    env, network, placement, service_model, tasks = _toy_setup()
    streams = StreamFactory(0)
    completions: _t.Dict[int, float] = {}

    def make_on_complete() -> _t.Callable[[_t.Any], None]:
        def _on_complete(completion: _t.Any) -> None:
            completions[completion.task.task_id] = completion.completed_at

        return _on_complete

    if task_aware:
        global_queue = GlobalQueue(
            env, latency=ConstantLatency(0.0), stream=streams.stream("gq")
        )
        for server_id in range(3):
            PullServer(
                env,
                server_id=server_id,
                cores=1,
                service_model=service_model,
                network=network,
                service_stream=streams.stream(f"svc.{server_id}"),
                global_queue=global_queue.store,
                partitions=placement.partitions_of_server(server_id),
            )
        clients = [
            Client(
                env,
                client_id=i,
                network=network,
                strategy=BRBModelStrategy(
                    placement,
                    make_assigner(assigner_name),
                    service_model,
                    global_queue=global_queue,
                ),
                on_complete=make_on_complete(),
            )
            for i in range(2)
        ]
    else:
        for server_id in range(3):
            BackendServer(
                env,
                server_id=server_id,
                cores=1,
                service_model=service_model,
                network=network,
                service_stream=streams.stream(f"svc.{server_id}"),
            )
        clients = [
            Client(
                env,
                client_id=i,
                network=network,
                strategy=ObliviousStrategy(
                    placement, RoundRobinSelector(), service_model
                ),
                on_complete=make_on_complete(),
            )
            for i in range(2)
        ]

    def feeder() -> _t.Generator:
        # T1 is submitted before T2 at the same instant, exactly as the
        # figure's task-oblivious schedule assumes.
        clients[0].submit(tasks[0])
        clients[1].submit(tasks[1])
        yield env.timeout(0.0)

    env.process(feeder(), name="toy-feeder")
    env.run()
    return Figure1Result(
        schedule="task-aware" if task_aware else "task-oblivious",
        t1_completion=completions[0],
        t2_completion=completions[1],
    )


# ---------------------------------------------------------------------------
# Figure 2: the headline comparison
# ---------------------------------------------------------------------------


def figure2(
    n_tasks: int = 20_000,
    seeds: _t.Sequence[int] = (1, 2, 3),
    strategies: _t.Sequence[str] = FIGURE2_STRATEGIES,
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
    executor: _t.Optional["GridExecutor"] = None,
    **config_overrides: _t.Any,
) -> ComparisonResult:
    """Reproduce Figure 2: run every strategy over a common seed grid.

    ``executor`` (see :mod:`repro.harness.parallel`) fans the full
    (strategy x seed) grid across workers; the merge order is fixed, so
    the comparison is byte-identical to the serial one.
    """
    base = ExperimentConfig(n_tasks=n_tasks, **config_overrides)
    if executor is None:
        results = {
            name: run_seeds(base.with_strategy(name), seeds)
            for name in strategies
        }
    else:
        from .parallel import enumerate_run_grid, split_by_strategy

        jobs = enumerate_run_grid(
            [{name: base.with_strategy(name) for name in strategies}],
            seeds,
        )
        results = split_by_strategy(
            executor.run_jobs(jobs), list(strategies), len(seeds)
        )
    return compare_strategies(results, percentiles=percentiles)


if _t.TYPE_CHECKING:  # pragma: no cover
    from .parallel import GridExecutor


def figure2_series(
    comparison: ComparisonResult,
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
) -> _t.Dict[str, _t.Dict[str, float]]:
    """Pivot a comparison into Figure 2's {percentile: {strategy: ms}}."""
    series: _t.Dict[str, _t.Dict[str, float]] = {}
    for p in percentiles:
        series[f"p{p:g}"] = {
            name: comparison.summary_of(name).percentile(p) * 1e3
            for name in comparison.strategies
        }
    return series
