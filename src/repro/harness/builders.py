"""Strategy builders: the pluggable registry behind the experiment runner.

Each scheduling strategy under evaluation (C3, the BRB credits/model
realizations, the oblivious and hedging baselines, ...) is a registered
:class:`StrategyBuilder`.  A builder knows how to construct the pieces that
differ between strategies -- shared machinery (credits controller, global
queue), per-client dispatch strategies, per-server execution engines -- all
from one :class:`ClusterContext` that carries the experiment-wide
substrate.  The runner is strategy-agnostic: it resolves the config's
strategy name through :func:`get_builder` and asks the builder for parts.

Third-party strategies plug in without touching the harness::

    from repro.harness.builders import StrategyBuilder, register_strategy

    class MyBuilder(StrategyBuilder):
        name = "my-strategy"
        def build_client_strategy(self, ctx, client_id):
            return MyDispatchStrategy(ctx.placement, ctx.service_model)

    register_strategy(MyBuilder())

``KNOWN_STRATEGIES`` (re-exported by :mod:`repro.harness.config`) is a live
view of this registry, so a registered strategy is immediately accepted by
:class:`~repro.harness.config.ExperimentConfig`, the CLI and the sweeps.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..baselines.c3 import C3Selector
from ..baselines.hedging import HedgedStrategy
from ..baselines.selectors import make_selector
from ..baselines.strategies import ObliviousStrategy
from ..cluster.client import Client, DispatchStrategy
from ..cluster.partitioner import Placement
from ..cluster.server import BackendServer, PullServer
from ..core.brb_client import BRBCreditsStrategy, BRBModelStrategy
from ..core.clock import Clock, Transport
from ..core.credits import CreditGate, CreditsController, equal_initial_shares
from ..core.model_queue import GlobalQueue
from ..core.priorities import make_assigner
from ..metrics.counters import MetricRegistry
from ..scheduling.disciplines import (
    Discipline,
    EdfDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
)
from ..sim.rng import StreamFactory
from ..workload.calibration import ServiceTimeModel

if _t.TYPE_CHECKING:  # pragma: no cover
    from .config import ExperimentConfig


@dataclasses.dataclass
class ClusterContext:
    """Everything a builder needs: the experiment-wide substrate.

    ``env`` and ``network`` are the clock/transport seam
    (:mod:`repro.core.clock`): the simulation binds them to the virtual
    :class:`~repro.sim.engine.Environment` and modelled
    :class:`~repro.cluster.network.Network`, the live subsystem
    (:mod:`repro.loadgen`) binds them to a wall clock and a TCP-backed
    transport -- the same builders assemble strategies for both.  The
    server-side hooks (:meth:`StrategyBuilder.build_server`) are
    simulation-only; the live service runs its own asyncio workers.

    ``shared`` is the builder's scratch space: :meth:`StrategyBuilder.
    build_shared` populates it (controller, global queue, gates, ...) and
    the later build hooks and :meth:`StrategyBuilder.collect_extras` read
    it back.
    """

    config: "ExperimentConfig"
    env: Clock
    network: Transport
    placement: Placement
    service_model: ServiceTimeModel
    streams: StreamFactory
    metrics: MetricRegistry
    shared: _t.Dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def candidate_replicas(self, key: int) -> _t.Tuple[int, ...]:
        """The servers currently eligible to serve ``key`` (primary first).

        The placement seam's contract for builder authors: a dispatch
        strategy must only address servers from this set.  The built-in
        strategies hold ``ctx.placement`` and derive the same set via
        ``partition_of`` + ``replicas_of`` (they need the partition id
        for the request anyway); this accessor is the one-call form, and
        the placement tests pin both paths to the same answer.  The
        runner wraps the config's ring in a
        :class:`~repro.placement.MutablePlacement`, so a mid-run
        rebalance changes the answer between calls.
        """
        return self.placement.replicas_of_key(key)


class StrategyBuilder:
    """One registered strategy: how to assemble its clients and servers.

    Subclasses override the hooks they need; the defaults give the
    task-oblivious shape (FIFO push servers, no shared machinery, no
    extra audit counters).
    """

    #: Registry key; must be unique.
    name: str = "abstract"
    #: One-line description for ``repro strategies``.
    description: str = ""

    # -- shared machinery -----------------------------------------------------
    def build_shared(self, ctx: ClusterContext) -> None:
        """Create strategy-wide machinery into ``ctx.shared`` (optional)."""

    # -- per-client ---------------------------------------------------------------
    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- per-server ---------------------------------------------------------------
    def server_discipline(self, ctx: ClusterContext) -> Discipline:
        return FifoDiscipline()

    def congestion_interval(self, ctx: ClusterContext) -> _t.Optional[float]:
        """Congestion-monitor period for push servers (None disables)."""
        return None

    def build_server(self, ctx: ClusterContext, server_id: int) -> _t.Any:
        return BackendServer(
            ctx.env,
            server_id=server_id,
            cores=ctx.config.cluster.cores_per_server,
            service_model=ctx.service_model,
            network=ctx.network,
            service_stream=ctx.streams.stream(f"service.{server_id}"),
            discipline=self.server_discipline(ctx),
            metrics=ctx.metrics,
            congestion_interval=self.congestion_interval(ctx),
        )

    # -- audit -----------------------------------------------------------------
    def collect_extras(
        self,
        ctx: ClusterContext,
        clients: _t.Sequence[Client],
        servers: _t.Sequence[_t.Any],
    ) -> _t.Dict[str, float]:
        """Strategy-specific audit counters for ``RunResult.extras``."""
        return {}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: _t.Dict[str, StrategyBuilder] = {}


def register_strategy(
    builder: StrategyBuilder, replace: bool = False
) -> StrategyBuilder:
    """Add a builder to the registry (its ``name`` becomes the key)."""
    name = builder.name
    if not name or name == "abstract":
        raise ValueError("builder needs a concrete name")
    if name in _REGISTRY and not replace:
        raise ValueError(f"strategy {name!r} already registered")
    _REGISTRY[name] = builder
    return builder


def unregister_strategy(name: str) -> None:
    """Remove a builder (mainly for tests of third-party registration)."""
    _REGISTRY.pop(name, None)


def get_builder(name: str) -> StrategyBuilder:
    """Resolve a strategy name, with a helpful error on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {tuple(_REGISTRY)}"
        ) from None


def strategy_names() -> _t.Tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


class _KnownStrategies(_t.Sequence[str]):
    """Live, read-only view of the registry's names.

    Exposed as ``KNOWN_STRATEGIES``: iterating, ``in`` checks, indexing and
    ``len`` always reflect the current registry, so strategies registered
    by third-party code are picked up by config validation and the CLI
    without editing this package.
    """

    def __iter__(self) -> _t.Iterator[str]:
        return iter(tuple(_REGISTRY))

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __getitem__(self, index):  # type: ignore[override]
        return tuple(_REGISTRY)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list)):
            return tuple(_REGISTRY) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - view, not a dict key
        return hash(tuple(_REGISTRY))

    def __repr__(self) -> str:
        return repr(tuple(_REGISTRY))


#: Live view of every registered strategy name.
KNOWN_STRATEGIES: _t.Sequence[str] = _KnownStrategies()


# ---------------------------------------------------------------------------
# Built-in builders
# ---------------------------------------------------------------------------


class C3Builder(StrategyBuilder):
    """Task-oblivious dispatch with C3 replica ranking (the paper's rival)."""

    def __init__(self, name: str, rate_control: bool) -> None:
        self.name = name
        self.rate_control = rate_control
        self.description = (
            "C3 replica selection"
            + (" with cubic rate control" if rate_control else ", ranking only")
        )

    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        selector = C3Selector(
            ctx.env,
            concurrency_weight=ctx.config.n_clients,
            stream=ctx.streams.stream(f"c3.tiebreak.{client_id}"),
            rate_control=self.rate_control,
            # Start at the per-client fair share of one server so the
            # cubic controller explores around the right operating point.
            initial_rate=ctx.config.cluster.server_capacity() / ctx.config.n_clients,
        )
        return ObliviousStrategy(ctx.placement, selector, ctx.service_model)


class ObliviousBuilder(StrategyBuilder):
    """Task-oblivious dispatch with a simple replica selector."""

    def __init__(self, name: str, selector_kind: str) -> None:
        self.name = name
        self.selector_kind = selector_kind
        self.description = f"task-oblivious, {selector_kind} replica selection"

    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        selector = make_selector(
            self.selector_kind, stream=ctx.streams.stream(f"selector.{client_id}")
        )
        return ObliviousStrategy(ctx.placement, selector, ctx.service_model)


class HedgedBuilder(StrategyBuilder):
    """Hedged requests: duplicate laggards to a second replica."""

    name = "hedged"
    description = "hedged requests (duplicate after a fixed delay)"

    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        selector = make_selector(
            "least-outstanding", stream=ctx.streams.stream(f"selector.{client_id}")
        )
        return HedgedStrategy(
            ctx.placement,
            selector,
            ctx.service_model,
            hedge_delay=ctx.config.hedge_delay,
        )

    def collect_extras(self, ctx, clients, servers):
        return {
            "hedges_sent": float(sum(c.strategy.hedges_sent for c in clients)),
            "wasted_responses": float(
                sum(c.strategy.wasted_responses for c in clients)
            ),
        }


class CreditsBuilder(StrategyBuilder):
    """BRB's distributed realization: credit gates + priority servers."""

    def __init__(self, assigner_name: str) -> None:
        self.assigner_name = assigner_name
        self.name = f"{assigner_name}-credits"
        self.description = f"BRB credits realization, {assigner_name} priorities"

    def build_shared(self, ctx: ClusterContext) -> None:
        ctx.shared["controller"] = CreditsController(
            ctx.env,
            ctx.network,
            n_clients=ctx.config.n_clients,
            server_capacities=ctx.config.cluster.server_capacities(),
            epoch=ctx.config.credits_epoch,
            allocation_interval=ctx.config.credits_measurement_interval,
            metrics=ctx.metrics,
        )
        ctx.shared["gates"] = []

    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        config = ctx.config
        assigner = make_assigner(self.assigner_name)
        gate = CreditGate(
            ctx.env,
            ctx.network,
            client_id=client_id,
            server_ids=list(range(config.cluster.n_servers)),
            epoch=config.credits_epoch,
            measurement_interval=config.credits_measurement_interval,
            initial_share=equal_initial_shares(
                config.cluster.server_capacities(),
                config.n_clients,
                config.credits_measurement_interval,
            ),
        )
        ctx.shared["gates"].append(gate)
        return BRBCreditsStrategy(
            ctx.placement, assigner, ctx.service_model, gate=gate
        )

    def server_discipline(self, ctx: ClusterContext) -> Discipline:
        if self.assigner_name == "edf":
            return EdfDiscipline()
        return PriorityDiscipline()

    def congestion_interval(self, ctx: ClusterContext) -> _t.Optional[float]:
        return ctx.config.congestion_check_interval

    def collect_extras(self, ctx, clients, servers):
        controller: CreditsController = ctx.shared["controller"]
        return {
            "congestion_signals": float(controller.congestion_signals),
            "credit_grants": float(controller.grants_sent),
            "gated_requests": float(
                sum(g.gated for g in ctx.shared.get("gates", []))
            ),
        }


class ModelBuilder(StrategyBuilder):
    """BRB's unrealizable ideal: one global priority queue, work-pulling."""

    def __init__(self, assigner_name: str) -> None:
        self.assigner_name = assigner_name
        self.name = f"{assigner_name}-model"
        self.description = f"BRB ideal global-queue model, {assigner_name} priorities"

    def build_shared(self, ctx: ClusterContext) -> None:
        ctx.shared["global_queue"] = GlobalQueue(
            ctx.env,
            latency=ctx.config.cluster.make_latency_model(),
            stream=ctx.streams.stream("model.submit-latency"),
        )

    def build_client_strategy(
        self, ctx: ClusterContext, client_id: int
    ) -> DispatchStrategy:
        assigner = make_assigner(self.assigner_name)
        return BRBModelStrategy(
            ctx.placement,
            assigner,
            ctx.service_model,
            global_queue=ctx.shared["global_queue"],
        )

    def build_server(self, ctx: ClusterContext, server_id: int) -> _t.Any:
        return PullServer(
            ctx.env,
            server_id=server_id,
            cores=ctx.config.cluster.cores_per_server,
            service_model=ctx.service_model,
            network=ctx.network,
            service_stream=ctx.streams.stream(f"service.{server_id}"),
            global_queue=ctx.shared["global_queue"].store,
            partitions=ctx.placement.partitions_of_server(server_id),
            metrics=ctx.metrics,
        )

    def collect_extras(self, ctx, clients, servers):
        return {
            "global_queue_submitted": float(ctx.shared["global_queue"].submitted)
        }


def _register_builtins() -> None:
    # Paper's Figure 2 series first, then the ablation strategies: the
    # registration order is the display order everywhere.
    register_strategy(C3Builder("c3", rate_control=True))
    for assigner in ("equalmax", "unifincr"):
        register_strategy(CreditsBuilder(assigner))
        register_strategy(ModelBuilder(assigner))
    for name, kind in (
        ("oblivious-random", "random"),
        ("oblivious-rr", "round-robin"),
        ("oblivious-lor", "least-outstanding"),
    ):
        register_strategy(ObliviousBuilder(name, kind))
    register_strategy(C3Builder("c3-norate", rate_control=False))
    for assigner in ("fifo", "sjf", "edf"):
        register_strategy(CreditsBuilder(assigner))
    register_strategy(ModelBuilder("fifo"))
    register_strategy(ModelBuilder("sjf"))
    register_strategy(HedgedBuilder())


_register_builtins()
