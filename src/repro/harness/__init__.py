"""Experiment harness: configs, builders, runner, aggregation, figures."""

from .builders import (
    ClusterContext,
    KNOWN_STRATEGIES,
    StrategyBuilder,
    get_builder,
    register_strategy,
    strategy_names,
    unregister_strategy,
)
from .config import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    paper_figure2_config,
)
from .figures import Figure1Result, figure1_toy, figure2, figure2_series
from .results import ComparisonResult, StrategyResult, compare_strategies
from .runner import RunResult, run_experiment, run_seeds
from .sweep import SweepResult, sweep

__all__ = [
    "ClusterContext",
    "ComparisonResult",
    "ExperimentConfig",
    "FIGURE2_STRATEGIES",
    "Figure1Result",
    "KNOWN_STRATEGIES",
    "RunResult",
    "StrategyBuilder",
    "StrategyResult",
    "SweepResult",
    "compare_strategies",
    "figure1_toy",
    "figure2",
    "figure2_series",
    "get_builder",
    "paper_figure2_config",
    "register_strategy",
    "run_experiment",
    "run_seeds",
    "strategy_names",
    "sweep",
    "unregister_strategy",
]
