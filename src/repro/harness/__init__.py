"""Experiment harness: configs, runner, aggregation, figure regeneration."""

from .config import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    KNOWN_STRATEGIES,
    paper_figure2_config,
)
from .figures import Figure1Result, figure1_toy, figure2, figure2_series
from .results import ComparisonResult, StrategyResult, compare_strategies
from .runner import RunResult, run_experiment, run_seeds
from .sweep import SweepResult, sweep

__all__ = [
    "ComparisonResult",
    "ExperimentConfig",
    "FIGURE2_STRATEGIES",
    "Figure1Result",
    "KNOWN_STRATEGIES",
    "RunResult",
    "StrategyResult",
    "SweepResult",
    "compare_strategies",
    "figure1_toy",
    "figure2",
    "figure2_series",
    "paper_figure2_config",
    "run_experiment",
    "run_seeds",
    "sweep",
]
