"""Experiment harness: configs, builders, runner, aggregation, figures."""

from .builders import (
    ClusterContext,
    KNOWN_STRATEGIES,
    StrategyBuilder,
    get_builder,
    register_strategy,
    strategy_names,
    unregister_strategy,
)
from .config import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    paper_figure2_config,
)
from .figures import Figure1Result, figure1_toy, figure2, figure2_series
from .parallel import (
    GridExecutor,
    ProcessExecutor,
    ResultCache,
    RunJob,
    SerialExecutor,
    config_digest,
    make_executor,
)
from .results import (
    ComparisonResult,
    StrategyResult,
    compare_strategies,
    validate_summary_dict,
)
from .runner import RunResult, run_experiment, run_seeds
from .sweep import SweepResult, sweep

__all__ = [
    "validate_summary_dict",
    "ClusterContext",
    "ComparisonResult",
    "ExperimentConfig",
    "FIGURE2_STRATEGIES",
    "Figure1Result",
    "GridExecutor",
    "KNOWN_STRATEGIES",
    "ProcessExecutor",
    "ResultCache",
    "RunJob",
    "RunResult",
    "SerialExecutor",
    "StrategyBuilder",
    "StrategyResult",
    "SweepResult",
    "compare_strategies",
    "config_digest",
    "figure1_toy",
    "figure2",
    "figure2_series",
    "get_builder",
    "make_executor",
    "paper_figure2_config",
    "register_strategy",
    "run_experiment",
    "run_seeds",
    "strategy_names",
    "sweep",
    "unregister_strategy",
]
