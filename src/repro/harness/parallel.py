"""Parallel experiment execution: fan the run grid across cores.

Every simulation run is a pure function of ``(config, seed)`` -- the
kernel's virtual clock makes results independent of wall-clock scheduling
-- so the (value x strategy x seed) grids behind :func:`~repro.harness.
sweep.sweep`, :func:`~repro.harness.figures.figure2` and
:func:`~repro.harness.runner.run_seeds` are embarrassingly parallel.
This module supplies the executor seam those entry points accept:

* :class:`RunJob` -- one picklable grid cell (config + seed).  The
  strategy travels as a *name* inside the config; worker processes
  re-resolve it through the builder registry on import, so nothing
  unpicklable (builders, environments, RNG streams) ever crosses the
  process boundary.
* :class:`SerialExecutor` -- runs jobs in-process, in grid order.  This
  is the default everywhere, and is byte-identical to the pre-seam loops.
* :class:`ProcessExecutor` -- fans jobs over a
  :class:`concurrent.futures.ProcessPoolExecutor` and reassembles results
  in *submission* order regardless of completion order, so parallel
  output is indistinguishable from serial output.
* :class:`ResultCache` -- an on-disk cache keyed by a stable digest of
  (config, strategy, seed), so repeated sweeps skip completed cells.

Determinism argument (also in DESIGN.md): a run never reads global
mutable state -- all randomness flows from ``StreamFactory(seed)`` keyed
by stream *names*, and all time is virtual -- so executing cells
concurrently cannot change any cell's result, and reassembling in grid
order makes aggregate structures (``ComparisonResult``, ``SweepResult``)
byte-identical to the serial ones.

Caveat: worker processes import :mod:`repro.harness.builders` afresh, so
only *built-in* strategies (plus anything registered at import time of
``repro``) resolve in workers.  Third-party builders registered at
runtime must either run serially or be importable via their package's
import side effects.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pickle
import typing as _t
from pathlib import Path

from .config import ExperimentConfig
from .runner import RunResult, run_experiment

#: Bump when RunResult / config semantics change in a way that invalidates
#: previously cached results.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# Job specs and digests
# ---------------------------------------------------------------------------


def _canonical(obj: _t.Any) -> _t.Any:
    """Recursively reduce a value to JSON-stable primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot build a stable digest over {type(obj).__name__!r}; "
        "config fields must be dataclasses or JSON primitives"
    )


def config_digest(config: ExperimentConfig, seed: int) -> str:
    """Stable hex digest of one (config, strategy, seed) grid cell.

    The digest is a SHA-256 over the canonical JSON form of the config
    (nested dataclasses included, so fault schedules and topology count)
    plus the seed and a format version.  Equal configs digest equally
    across processes and interpreter sessions; any field change -- however
    deep -- changes the digest.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "seed": int(seed),
        "config": _canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class RunJob:
    """One cell of a run grid: a picklable (config, seed) spec."""

    config: ExperimentConfig
    seed: int

    @property
    def strategy(self) -> str:
        return self.config.strategy

    def digest(self) -> str:
        return config_digest(self.config, self.seed)

    def execute(self) -> RunResult:
        """Run this cell in the current process."""
        return run_experiment(self.config, self.seed)


def _execute_job(job: RunJob) -> RunResult:
    """Module-level worker entry point (must be picklable by name)."""
    return job.execute()


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-cell cache of :class:`RunResult` keyed by job digest.

    Layout: ``<root>/<digest[:2]>/<digest>.pkl``.  Writes go through a
    same-directory temporary file + :func:`os.replace`, so concurrent
    writers (parallel workers, or two sweeps racing) can never leave a
    truncated entry behind; corrupt or unreadable entries read as misses.
    """

    def __init__(self, root: _t.Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, job: RunJob) -> _t.Optional[RunResult]:
        path = self._path(job.digest())
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # Unpickling a stale or garbled entry can raise nearly anything
            # (UnpicklingError, EOFError, ModuleNotFoundError after a
            # rename, ...); every such entry must read as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return _t.cast(RunResult, result)

    def put(self, job: RunJob, result: RunResult) -> None:
        path = self._path(job.digest())
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stores += 1

    # -- maintenance (the ``repro cache`` subcommand) -----------------------
    def entries(self) -> _t.List[Path]:
        """Every cache entry currently on disk, sorted by digest."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def stats(self) -> _t.Dict[str, _t.Any]:
        """Entry count, total bytes and per-digest-prefix breakdown."""
        entries = self.entries()
        prefixes: _t.Dict[str, int] = {}
        total_bytes = 0
        for path in entries:
            prefixes[path.parent.name] = prefixes.get(path.parent.name, 0) + 1
            try:
                total_bytes += path.stat().st_size
            except OSError:  # racing writer/cleaner; count what remains
                continue
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total_bytes,
            "prefixes": prefixes,
        }

    def clear(self) -> int:
        """Remove every entry (idempotent); returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        if self.root.is_dir():
            for bucket in sorted(self.root.iterdir()):
                if bucket.is_dir():
                    try:
                        bucket.rmdir()
                    except OSError:
                        # Not empty -- possibly a concurrent writer racing
                        # the clear; their fresh entry is theirs to keep.
                        continue
        return removed

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}>"
        )


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class GridExecutor:
    """Runs a list of :class:`RunJob` cells, preserving grid order.

    Subclasses override :meth:`_run_uncached`; the base class handles the
    cache lookup/fill so serial and parallel execution share one cache
    policy.
    """

    def __init__(self, cache: _t.Optional[ResultCache] = None) -> None:
        self.cache = cache

    def run_jobs(self, jobs: _t.Sequence[RunJob]) -> _t.List[RunResult]:
        """Execute every job; results align index-for-index with ``jobs``."""
        jobs = list(jobs)
        results: _t.List[_t.Optional[RunResult]] = [None] * len(jobs)
        pending: _t.List[_t.Tuple[int, RunJob]] = []
        if self.cache is not None:
            for i, job in enumerate(jobs):
                hit = self.cache.get(job)
                if hit is not None:
                    results[i] = hit
                else:
                    pending.append((i, job))
        else:
            pending = list(enumerate(jobs))
        if pending:
            fresh = self._run_uncached([job for _, job in pending])
            if len(fresh) != len(pending):
                raise RuntimeError(
                    f"{type(self).__name__} returned {len(fresh)} results "
                    f"for {len(pending)} jobs"
                )
            for (i, _job), result in zip(pending, fresh):
                results[i] = result
        return _t.cast(_t.List[RunResult], results)

    def _store(self, job: RunJob, result: RunResult) -> None:
        """Persist one finished cell immediately (interruption-safe)."""
        if self.cache is not None:
            self.cache.put(job, result)

    def _run_uncached(self, jobs: _t.Sequence[RunJob]) -> _t.List[RunResult]:
        """Run cache-missed jobs; implementations call :meth:`_store` per
        completed cell so an interrupted grid keeps its finished work."""
        raise NotImplementedError  # pragma: no cover - abstract


class SerialExecutor(GridExecutor):
    """In-process execution in grid order (the default everywhere)."""

    jobs = 1

    def _run_uncached(self, jobs: _t.Sequence[RunJob]) -> _t.List[RunResult]:
        results = []
        for job in jobs:
            result = job.execute()
            self._store(job, result)
            results.append(result)
        return results

    def __repr__(self) -> str:
        return "<SerialExecutor>"


class ProcessExecutor(GridExecutor):
    """Fan jobs over a process pool; reassemble in submission order.

    ``jobs`` is the worker count (defaults to the machine's core count).
    Completion order is nondeterministic, but results are keyed back to
    their submission index, so callers observe exactly the serial order.
    """

    def __init__(
        self,
        jobs: _t.Optional[int] = None,
        cache: _t.Optional[ResultCache] = None,
    ) -> None:
        super().__init__(cache=cache)
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs

    def _run_uncached(self, jobs: _t.Sequence[RunJob]) -> _t.List[RunResult]:
        if len(jobs) == 1 or self.jobs == 1:
            # Nothing to fan out; skip the pool (and its fork overhead).
            results = []
            for job in jobs:
                result = job.execute()
                self._store(job, result)
                results.append(result)
            return results
        slots: _t.List[_t.Optional[RunResult]] = [None] * len(jobs)
        workers = min(self.jobs, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job, job): i for i, job in enumerate(jobs)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                result = future.result()
                self._store(jobs[index], result)
                slots[index] = result
        return _t.cast(_t.List[RunResult], slots)

    def __repr__(self) -> str:
        return f"<ProcessExecutor jobs={self.jobs}>"


def make_executor(
    jobs: _t.Optional[int] = None,
    cache_dir: _t.Union[str, Path, None] = None,
) -> GridExecutor:
    """The CLI's executor factory: ``--jobs N [--cache DIR]`` semantics.

    ``jobs`` of ``None`` or ``1`` gives the serial executor; anything
    larger gives a process pool; ``0`` means "all cores".  ``cache_dir``
    enables the on-disk cache (pass ``""`` to use the default location).
    """
    cache: _t.Optional[ResultCache] = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir or None)
    if jobs is None or jobs == 1:
        return SerialExecutor(cache=cache)
    if jobs == 0:
        return ProcessExecutor(cache=cache)
    return ProcessExecutor(jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# Grid enumeration / merging
# ---------------------------------------------------------------------------


def enumerate_run_grid(
    configs: _t.Sequence[_t.Mapping[str, ExperimentConfig]],
    seeds: _t.Sequence[int],
) -> _t.List[RunJob]:
    """Flatten [{strategy: config}, ...] x seeds into grid-ordered jobs.

    ``configs`` is one strategy->config mapping per swept value, *as a
    sequence* so repeated values stay distinct cells.  Grid order is
    value-major, then strategy, then seed -- the exact order the serial
    nested loops ran, which is what keeps merged results byte-identical.
    """
    return [
        RunJob(config=config, seed=seed)
        for value_configs in configs
        for config in value_configs.values()
        for seed in seeds
    ]


def split_by_strategy(
    results: _t.Sequence[RunResult],
    strategies: _t.Sequence[str],
    n_seeds: int,
) -> _t.Dict[str, _t.List[RunResult]]:
    """Regroup one value's flat result block into per-strategy run lists."""
    if len(results) != len(strategies) * n_seeds:
        raise ValueError(
            f"grid block of {len(results)} results does not tile "
            f"{len(strategies)} strategies x {n_seeds} seeds"
        )
    out: _t.Dict[str, _t.List[RunResult]] = {}
    for s, name in enumerate(strategies):
        out[name] = list(results[s * n_seeds : (s + 1) * n_seeds])
    return out
