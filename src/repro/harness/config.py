"""Experiment configuration: everything a run needs, in one dataclass.

An :class:`ExperimentConfig` fully determines a simulation run together
with a seed.  The defaults are the paper's Section 2.2 setup with the task
count scaled down (see DESIGN.md, substitutions table); the benchmarks can
restore paper scale via ``REPRO_FULL_SCALE=1``.

Strategy names resolve through the builder registry
(:mod:`repro.harness.builders`); ``KNOWN_STRATEGIES`` is a *live view* of
that registry, so strategies registered by third-party code validate here
without editing this module.  Fault injection is expressed as a
:class:`~repro.cluster.faults.FaultSchedule`; the legacy ``slowdown_*``
fields remain as sugar for the single-slowdown case and are folded into
the schedule by :meth:`ExperimentConfig.faults`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..cluster.faults import FaultSchedule, NO_FAULTS, SlowdownFault
from ..cluster.topology import ClusterSpec
from ..workload.popularity import SubsetHotspotPopularity
from ..workload.soundcloud import (
    PAPER_LOAD,
    PAPER_MEAN_FANOUT,
    SoundCloudWorkload,
    make_soundcloud_workload,
    parse_value_size_model,
)
from .builders import KNOWN_STRATEGIES

#: The five series the paper's Figure 2 plots, in its legend order.
FIGURE2_STRATEGIES: _t.Tuple[str, ...] = (
    "c3",
    "equalmax-credits",
    "equalmax-model",
    "unifincr-credits",
    "unifincr-model",
)


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified experiment (modulo the seed)."""

    strategy: str = "c3"
    n_tasks: int = 20_000
    n_clients: int = 18
    cluster: ClusterSpec = dataclasses.field(default_factory=ClusterSpec)
    load: float = PAPER_LOAD
    mean_fanout: float = PAPER_MEAN_FANOUT
    n_keys: int = 100_000
    zipf_skew: float = 0.9
    playlist_fraction: float = 0.25
    #: "atikoglu" (GP fit of the Facebook ETC pool) or "pareto:<alpha>".
    value_size_model: str = "atikoglu"
    #: Placement-aware hotspot: concentrate traffic on the keys this
    #: partition's replica group owns (None disables; the `hot-shard`
    #: scenario sets it).
    hot_shard: _t.Optional[int] = None
    #: Fraction of key draws redirected to the hot shard's keys.
    hot_shard_weight: float = 0.5
    service_noise: str = "none"
    #: Fraction of earliest tasks excluded from statistics (cold start).
    warmup_fraction: float = 0.05
    #: Credits realization knobs.
    credits_epoch: float = 1.0
    credits_measurement_interval: float = 0.1
    congestion_check_interval: float = 0.1
    #: Hedged-requests baseline: duplicate after this many seconds.
    hedge_delay: float = 2e-3
    #: Scripted fault events (slowdowns, crashes, jitter, flash crowds).
    fault_schedule: FaultSchedule = NO_FAULTS
    #: Legacy single-fault sugar: degrade one server (-1 disables).
    slowdown_server: int = -1
    slowdown_factor: float = 3.0
    slowdown_start: float = 0.25
    slowdown_duration: float = 0.5
    slowdown_period: _t.Optional[float] = None
    #: Record per-request latencies too (costs memory on big runs).
    record_requests: bool = False
    #: Name of the scenario this config was derived from (provenance only).
    scenario: _t.Optional[str] = None
    #: Streamed metrics + self-healing: "off" (no bus, no extra events),
    #: "monitor" (bus + breach detection, no action -- the honest
    #: baseline) or "slo" (full remediation loop).
    remediation: str = "off"
    #: Windowed-p99 SLO target in model milliseconds (breach detection
    #: needs it; required for remediation="slo").
    slo_p99_ms: _t.Optional[float] = None
    #: Metrics ticker cadence in model seconds (monitor/slo modes).
    metrics_interval: float = 0.02
    #: Trailing window the bus percentiles cover (model seconds).
    metrics_window: float = 0.1
    #: Fraction of (post-warmup) tasks to trace as span trees; 0 disables
    #: tracing entirely (no recorder, no observers -- the default).
    trace_sample: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in KNOWN_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: {KNOWN_STRATEGIES}"
            )
        if self.n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        if self.n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if not (0.0 < self.load):
            raise ValueError("load must be positive")
        if not (0.0 <= self.warmup_fraction < 1.0):
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.credits_epoch <= 0 or self.credits_measurement_interval <= 0:
            raise ValueError("credits intervals must be positive")
        if self.hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive")
        if self.hot_shard is not None:
            if not (0.0 < self.hot_shard_weight < 1.0):
                raise ValueError("hot_shard_weight must be in (0, 1)")
            n_partitions = self.cluster.make_placement().n_partitions
            if not (0 <= self.hot_shard < n_partitions):
                raise ValueError(
                    f"hot_shard {self.hot_shard} out of range; the cluster's "
                    f"placement has partitions 0..{n_partitions - 1}"
                )
        # Any negative id means "disabled"; normalize so configs compare equal.
        if self.slowdown_server < 0:
            object.__setattr__(self, "slowdown_server", -1)
        elif self.slowdown_server >= self.cluster.n_servers:
            raise ValueError(
                f"slowdown_server {self.slowdown_server} out of range; valid "
                f"server ids are 0..{self.cluster.n_servers - 1} "
                "(or -1 to disable)"
            )
        if self.slowdown_server >= 0 and self.slowdown_factor <= 1.0:
            raise ValueError(
                f"slowdown_factor must exceed 1, got {self.slowdown_factor}"
            )
        if not isinstance(self.fault_schedule, FaultSchedule):
            raise TypeError("fault_schedule must be a FaultSchedule")
        self.fault_schedule.validate_targets(self.cluster.n_servers)
        from ..cluster.remediation import REMEDIATION_MODES

        if self.remediation not in REMEDIATION_MODES:
            raise ValueError(
                f"unknown remediation mode {self.remediation!r}; "
                f"known: {REMEDIATION_MODES}"
            )
        if self.remediation == "slo" and self.slo_p99_ms is None:
            raise ValueError('remediation="slo" needs a slo_p99_ms target')
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be positive")
        if self.metrics_interval <= 0 or self.metrics_window <= 0:
            raise ValueError("metrics intervals must be positive")
        if not (0.0 <= self.trace_sample <= 1.0):
            raise ValueError("trace_sample must be in [0, 1]")

    # -- derived ---------------------------------------------------------------
    def faults(self) -> FaultSchedule:
        """The full fault script: scheduled events plus the legacy slowdown."""
        if self.slowdown_server < 0:
            return self.fault_schedule
        legacy = SlowdownFault(
            servers=(self.slowdown_server,),
            factor=self.slowdown_factor,
            start=self.slowdown_start,
            duration=self.slowdown_duration,
            period=self.slowdown_period,
        )
        return self.fault_schedule + FaultSchedule((legacy,))

    def workload(self) -> SoundCloudWorkload:
        """The workload this config implies (shared across strategies).

        With ``hot_shard`` set, the popularity model is wrapped so that
        ``hot_shard_weight`` of key draws land on the keys that
        partition's replica group owns -- heat aimed at a specific
        replica set rather than spread hash-uniformly.
        """
        workload = make_soundcloud_workload(
            n_tasks=self.n_tasks,
            n_clients=self.n_clients,
            n_servers=self.cluster.n_servers,
            cores_per_server=self.cluster.cores_per_server,
            per_core_rate=self.cluster.per_core_rate,
            load=self.load,
            mean_fanout=self.mean_fanout,
            n_keys=self.n_keys,
            zipf_skew=self.zipf_skew,
            playlist_fraction=self.playlist_fraction,
            value_sizes=parse_value_size_model(self.value_size_model),
            noise=self.service_noise,
        )
        if self.hot_shard is not None:
            from ..placement import keys_in_partitions

            hot_keys = keys_in_partitions(
                self.cluster.make_placement(), self.n_keys, (self.hot_shard,)
            )
            workload = dataclasses.replace(
                workload,
                popularity=SubsetHotspotPopularity(
                    workload.popularity, hot_keys, self.hot_shard_weight
                ),
            )
        return workload

    def with_strategy(self, strategy: str) -> "ExperimentConfig":
        """Same experiment, different strategy (workload identical)."""
        return dataclasses.replace(self, strategy=strategy)

    def describe(self) -> str:
        origin = f" [{self.scenario}]" if self.scenario else ""
        return (
            f"{self.strategy}{origin}: {self.n_tasks} tasks, "
            f"{self.n_clients} clients, "
            f"{self.cluster.n_servers}x{self.cluster.cores_per_server} cores, "
            f"load={self.load:.0%}, fanout~{self.mean_fanout}"
        )


def paper_figure2_config(n_tasks: int = 20_000, **overrides: _t.Any) -> ExperimentConfig:
    """The Figure 2 experiment at a scaled task count."""
    return ExperimentConfig(n_tasks=n_tasks, **overrides)
