"""Result aggregation across strategies and seeds.

The paper repeats each experiment 6 times with different seeds and plots
per-percentile latencies "averaged across experiments".  This module owns
that aggregation plus the derived quantities the paper's prose reports
(BRB-vs-C3 speedups, credits-vs-model gap).
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing as _t
from pathlib import Path

from ..metrics.summary import (
    LatencySummary,
    PAPER_PERCENTILES,
    mean_of_summaries,
)
from .runner import RunResult


@dataclasses.dataclass
class StrategyResult:
    """All seeds of one strategy, plus the seed-averaged summary."""

    strategy: str
    runs: _t.List[RunResult]
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError(f"no runs for strategy {self.strategy!r}")

    def per_seed_summaries(self) -> _t.List[LatencySummary]:
        return [run.summary(self.percentiles) for run in self.runs]

    def mean_summary(self) -> LatencySummary:
        return mean_of_summaries(self.per_seed_summaries())

    def percentile_spread(self, p: float) -> _t.Tuple[float, float]:
        """(min, max) of a percentile across seeds -- seed stability check."""
        values = [s.percentile(p) for s in self.per_seed_summaries()]
        return min(values), max(values)


@dataclasses.dataclass
class ComparisonResult:
    """A set of strategies over the same workload/seed grid."""

    strategies: _t.Dict[str, StrategyResult]
    seeds: _t.Tuple[int, ...]

    def summary_of(self, strategy: str) -> LatencySummary:
        return self.strategies[strategy].mean_summary()

    def speedup(
        self, slow: str, fast: str
    ) -> _t.Dict[float, float]:
        """Per-percentile latency ratio slow/fast (>1 means `fast` wins)."""
        return self.summary_of(slow).ratio_to(self.summary_of(fast))

    def gap_to_ideal(
        self, realized: str, ideal: str
    ) -> _t.Dict[float, float]:
        """Per-percentile (realized - ideal) / ideal; the paper's "within
        38% of an ideal model" metric."""
        real = self.summary_of(realized)
        idl = self.summary_of(ideal)
        return {
            p: (real.percentile(p) - idl.percentile(p)) / idl.percentile(p)
            for p in real.percentiles
            if p in idl.percentiles
        }

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """JSON-friendly structure (EXPERIMENTS.md provenance blobs)."""
        out: _t.Dict[str, _t.Any] = {"seeds": list(self.seeds), "strategies": {}}
        for name, sres in self.strategies.items():
            mean = sres.mean_summary()
            out["strategies"][name] = {
                "count": mean.count,
                "mean_s": mean.mean,
                "percentiles_ms": {
                    f"p{p:g}": v * 1e3 for p, v in sorted(mean.percentiles.items())
                },
                "per_seed_p99_ms": [
                    s.percentile(99.0) * 1e3
                    for s in sres.per_seed_summaries()
                    if 99.0 in s.percentiles
                ],
            }
        return out

    def canonical_json(self) -> str:
        """Key-sorted compact JSON of :meth:`to_dict`.

        Two comparisons are *equivalent* exactly when these strings are
        byte-identical; the serial-vs-parallel differential tests and the
        result cache's equivalence checks all compare through this form.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    def save_json(self, path: _t.Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")


def validate_summary_dict(data: _t.Mapping[str, _t.Any]) -> None:
    """Validate the shared summary-JSON schema; raises ``ValueError``.

    This is the contract between realms: a simulated
    :meth:`ComparisonResult.to_dict` and a live
    :func:`repro.loadgen.live_summary` must both satisfy it, so analysis
    tooling can consume either without knowing which produced it.  A
    top-level ``meta`` block (live provenance: scenario, time scale, wall
    duration) is permitted; anything else unexpected is an error.
    """

    def fail(message: str) -> "_t.NoReturn":
        raise ValueError(f"bad summary: {message}")

    if not isinstance(data, _t.Mapping):
        fail(f"expected an object, got {type(data).__name__}")
    unexpected = set(data) - {"seeds", "strategies", "meta"}
    if unexpected:
        fail(f"unexpected top-level keys {sorted(unexpected)}")
    seeds = data.get("seeds")
    if not isinstance(seeds, list) or not seeds or not all(
        isinstance(s, int) and not isinstance(s, bool) for s in seeds
    ):
        fail(f"'seeds' must be a non-empty list of ints, got {seeds!r}")
    strategies = data.get("strategies")
    if not isinstance(strategies, _t.Mapping) or not strategies:
        fail(f"'strategies' must be a non-empty object, got {strategies!r}")
    if "meta" in data and not isinstance(data["meta"], _t.Mapping):
        fail(f"'meta' must be an object, got {data['meta']!r}")
    for name, entry in strategies.items():
        if not isinstance(entry, _t.Mapping):
            fail(f"strategy {name!r} entry is not an object")
        missing = {"count", "mean_s", "percentiles_ms", "per_seed_p99_ms"} - set(entry)
        if missing:
            fail(f"strategy {name!r} is missing {sorted(missing)}")
        if not isinstance(entry["count"], int) or entry["count"] <= 0:
            fail(f"strategy {name!r} count must be a positive int")
        if not isinstance(entry["mean_s"], (int, float)) or not math.isfinite(
            entry["mean_s"]
        ):
            fail(f"strategy {name!r} mean_s must be finite")
        percentiles = entry["percentiles_ms"]
        if not isinstance(percentiles, _t.Mapping) or not percentiles:
            fail(f"strategy {name!r} percentiles_ms must be a non-empty object")
        for label, value in percentiles.items():
            if not (isinstance(label, str) and label.startswith("p")):
                fail(f"strategy {name!r} has bad percentile label {label!r}")
            try:
                float(label[1:])
            except ValueError:
                fail(f"strategy {name!r} has bad percentile label {label!r}")
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                fail(f"strategy {name!r} {label} must be finite, got {value!r}")
        per_seed = entry["per_seed_p99_ms"]
        if not isinstance(per_seed, list) or len(per_seed) != len(seeds):
            fail(
                f"strategy {name!r} per_seed_p99_ms must list one value per "
                f"seed ({len(seeds)}), got {per_seed!r}"
            )
        if not all(
            isinstance(v, (int, float)) and math.isfinite(v) for v in per_seed
        ):
            fail(f"strategy {name!r} per_seed_p99_ms must be finite numbers")


def compare_strategies(
    results: _t.Mapping[str, _t.Sequence[RunResult]],
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
) -> ComparisonResult:
    """Bundle per-strategy run lists into a :class:`ComparisonResult`."""
    if not results:
        raise ValueError("no results to compare")
    seeds: _t.Optional[_t.Tuple[int, ...]] = None
    strategies: _t.Dict[str, StrategyResult] = {}
    for name, runs in results.items():
        run_list = list(runs)
        run_seeds = tuple(r.seed for r in run_list)
        if seeds is None:
            seeds = run_seeds
        elif run_seeds != seeds:
            raise ValueError(
                f"strategy {name!r} ran seeds {run_seeds}, expected {seeds} "
                "(paired comparison requires a common seed grid)"
            )
        strategies[name] = StrategyResult(
            strategy=name, runs=run_list, percentiles=percentiles
        )
    assert seeds is not None
    return ComparisonResult(strategies=strategies, seeds=seeds)
