"""Result aggregation across strategies and seeds.

The paper repeats each experiment 6 times with different seeds and plots
per-percentile latencies "averaged across experiments".  This module owns
that aggregation plus the derived quantities the paper's prose reports
(BRB-vs-C3 speedups, credits-vs-model gap).
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t
from pathlib import Path

from ..metrics.summary import (
    LatencySummary,
    PAPER_PERCENTILES,
    mean_of_summaries,
)
from .runner import RunResult


@dataclasses.dataclass
class StrategyResult:
    """All seeds of one strategy, plus the seed-averaged summary."""

    strategy: str
    runs: _t.List[RunResult]
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError(f"no runs for strategy {self.strategy!r}")

    def per_seed_summaries(self) -> _t.List[LatencySummary]:
        return [run.summary(self.percentiles) for run in self.runs]

    def mean_summary(self) -> LatencySummary:
        return mean_of_summaries(self.per_seed_summaries())

    def percentile_spread(self, p: float) -> _t.Tuple[float, float]:
        """(min, max) of a percentile across seeds -- seed stability check."""
        values = [s.percentile(p) for s in self.per_seed_summaries()]
        return min(values), max(values)


@dataclasses.dataclass
class ComparisonResult:
    """A set of strategies over the same workload/seed grid."""

    strategies: _t.Dict[str, StrategyResult]
    seeds: _t.Tuple[int, ...]

    def summary_of(self, strategy: str) -> LatencySummary:
        return self.strategies[strategy].mean_summary()

    def speedup(
        self, slow: str, fast: str
    ) -> _t.Dict[float, float]:
        """Per-percentile latency ratio slow/fast (>1 means `fast` wins)."""
        return self.summary_of(slow).ratio_to(self.summary_of(fast))

    def gap_to_ideal(
        self, realized: str, ideal: str
    ) -> _t.Dict[float, float]:
        """Per-percentile (realized - ideal) / ideal; the paper's "within
        38% of an ideal model" metric."""
        real = self.summary_of(realized)
        idl = self.summary_of(ideal)
        return {
            p: (real.percentile(p) - idl.percentile(p)) / idl.percentile(p)
            for p in real.percentiles
            if p in idl.percentiles
        }

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """JSON-friendly structure (EXPERIMENTS.md provenance blobs)."""
        out: _t.Dict[str, _t.Any] = {"seeds": list(self.seeds), "strategies": {}}
        for name, sres in self.strategies.items():
            mean = sres.mean_summary()
            out["strategies"][name] = {
                "count": mean.count,
                "mean_s": mean.mean,
                "percentiles_ms": {
                    f"p{p:g}": v * 1e3 for p, v in sorted(mean.percentiles.items())
                },
                "per_seed_p99_ms": [
                    s.percentile(99.0) * 1e3
                    for s in sres.per_seed_summaries()
                    if 99.0 in s.percentiles
                ],
            }
        return out

    def canonical_json(self) -> str:
        """Key-sorted compact JSON of :meth:`to_dict`.

        Two comparisons are *equivalent* exactly when these strings are
        byte-identical; the serial-vs-parallel differential tests and the
        result cache's equivalence checks all compare through this form.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    def save_json(self, path: _t.Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")


def compare_strategies(
    results: _t.Mapping[str, _t.Sequence[RunResult]],
    percentiles: _t.Tuple[float, ...] = PAPER_PERCENTILES,
) -> ComparisonResult:
    """Bundle per-strategy run lists into a :class:`ComparisonResult`."""
    if not results:
        raise ValueError("no results to compare")
    seeds: _t.Optional[_t.Tuple[int, ...]] = None
    strategies: _t.Dict[str, StrategyResult] = {}
    for name, runs in results.items():
        run_list = list(runs)
        run_seeds = tuple(r.seed for r in run_list)
        if seeds is None:
            seeds = run_seeds
        elif run_seeds != seeds:
            raise ValueError(
                f"strategy {name!r} ran seeds {run_seeds}, expected {seeds} "
                "(paired comparison requires a common seed grid)"
            )
        strategies[name] = StrategyResult(
            strategy=name, runs=run_list, percentiles=percentiles
        )
    assert seeds is not None
    return ComparisonResult(strategies=strategies, seeds=seeds)
