"""Metrics: histograms, samples, summaries, time series, counters."""

from .bus import (
    BusEvent,
    BusSampler,
    BusSnapshot,
    MetricsBus,
    WindowedQuantiles,
    render_prometheus,
    snapshot_prometheus,
)
from .counters import Counter, Gauge, MetricRegistry
from .histogram import LogHistogram
from .reservoir import ExactSample, Reservoir, exact_quantile
from .slo import BreachDetector, SloPolicy
from .summary import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    PAPER_PERCENTILES,
    mean_of_summaries,
)
from .timeseries import EwmaEstimator, TimeSeries, WindowedRate

__all__ = [
    "BreachDetector",
    "BusEvent",
    "BusSampler",
    "BusSnapshot",
    "Counter",
    "DEFAULT_PERCENTILES",
    "EwmaEstimator",
    "ExactSample",
    "Gauge",
    "LatencySummary",
    "LogHistogram",
    "MetricRegistry",
    "MetricsBus",
    "PAPER_PERCENTILES",
    "Reservoir",
    "SloPolicy",
    "TimeSeries",
    "WindowedQuantiles",
    "WindowedRate",
    "exact_quantile",
    "mean_of_summaries",
    "render_prometheus",
    "snapshot_prometheus",
]
