"""Metrics: histograms, samples, summaries, time series, counters."""

from .counters import Counter, Gauge, MetricRegistry
from .histogram import LogHistogram
from .reservoir import ExactSample, Reservoir, exact_quantile
from .summary import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    PAPER_PERCENTILES,
    mean_of_summaries,
)
from .timeseries import EwmaEstimator, TimeSeries, WindowedRate

__all__ = [
    "Counter",
    "DEFAULT_PERCENTILES",
    "EwmaEstimator",
    "ExactSample",
    "Gauge",
    "LatencySummary",
    "LogHistogram",
    "MetricRegistry",
    "PAPER_PERCENTILES",
    "Reservoir",
    "TimeSeries",
    "WindowedRate",
    "exact_quantile",
    "mean_of_summaries",
]
