"""Log-bucketed latency histogram (HDR-histogram style).

Records values with a bounded *relative* error per bucket while using O(1)
memory per recorded value-range.  This is what long benchmark runs use so
that recording ~10^6 request latencies does not hold every sample in memory.

Design: the value range ``[min_value, max_value]`` is covered by geometric
buckets; bucket ``i`` covers ``min_value * growth**i`` where ``growth`` is
chosen from the requested number of significant digits.  Quantile queries
interpolate linearly inside the winning bucket, which bounds the relative
quantile error by the bucket width.
"""

from __future__ import annotations

import math
import typing as _t


class LogHistogram:
    """Fixed-relative-precision histogram over positive values.

    Parameters
    ----------
    min_value:
        Smallest trackable value; smaller recordings clamp to it.
    max_value:
        Largest trackable value; larger recordings clamp to it (and are
        counted in ``clamped_high`` so the distortion is observable).
    precision:
        Bound on relative bucket width, e.g. ``0.01`` for ~1% quantile error.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 1e3,
        precision: float = 0.01,
    ) -> None:
        if not (0 < min_value < max_value):
            raise ValueError("need 0 < min_value < max_value")
        if not (0 < precision < 1):
            raise ValueError("precision must be in (0, 1)")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.precision = float(precision)
        self._log_min = math.log(min_value)
        self._log_growth = math.log1p(precision)
        n_buckets = int(math.ceil((math.log(max_value) - self._log_min) / self._log_growth)) + 1
        self._counts = [0] * n_buckets
        self.count = 0
        self.clamped_low = 0
        self.clamped_high = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ----------------------------------------------------------
    def _index(self, value: float) -> int:
        return int((math.log(value) - self._log_min) / self._log_growth)

    def record(self, value: float) -> None:
        """Record one observation (values outside range clamp, with count)."""
        if value != value or value < 0:  # NaN or negative
            raise ValueError(f"cannot record {value!r}")
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value < self.min_value:
            self.clamped_low += 1
            idx = 0
        elif value > self.max_value:
            self.clamped_high += 1
            idx = len(self._counts) - 1
        else:
            idx = min(self._index(value), len(self._counts) - 1)
        self._counts[idx] += 1
        self.count += 1

    def record_many(self, values: _t.Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.record(value)

    # -- queries --------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded values (exact, not bucketed)."""
        if self.count == 0:
            raise ValueError("empty histogram has no mean")
        return self._sum / self.count

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("empty histogram has no min")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("empty histogram has no max")
        return self._max

    def _bucket_bounds(self, idx: int) -> _t.Tuple[float, float]:
        lo = math.exp(self._log_min + idx * self._log_growth)
        hi = math.exp(self._log_min + (idx + 1) * self._log_growth)
        return lo, hi

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], interpolated within the bucket."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        target = q * self.count
        seen = 0.0
        for idx, c in enumerate(self._counts):
            if c == 0:
                continue
            if seen + c >= target:
                lo, hi = self._bucket_bounds(idx)
                frac = (target - seen) / c
                value = lo + (hi - lo) * frac
                # Clamp to the observed extrema so interpolation never
                # reports values outside the recorded range.
                return min(max(value, self._min), self._max)
            seen += c
        return self._max  # pragma: no cover - numeric safety net

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def cdf_points(self) -> _t.List[_t.Tuple[float, float]]:
        """(value, cumulative fraction) pairs for non-empty buckets."""
        points: _t.List[_t.Tuple[float, float]] = []
        seen = 0
        for idx, c in enumerate(self._counts):
            if c == 0:
                continue
            seen += c
            _, hi = self._bucket_bounds(idx)
            points.append((min(hi, self._max), seen / self.count))
        return points

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram with identical bucketing into this one."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.precision != self.precision
        ):
            raise ValueError("histograms have incompatible bucketing")
        for idx, c in enumerate(other._counts):
            self._counts[idx] += c
        self.count += other.count
        self.clamped_low += other.clamped_low
        self.clamped_high += other.clamped_high
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return "<LogHistogram empty>"
        return (
            f"<LogHistogram n={self.count} mean={self.mean:.6g} "
            f"p50={self.quantile(0.5):.6g} p99={self.quantile(0.99):.6g}>"
        )
