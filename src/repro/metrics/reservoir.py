"""Exact and reservoir-sampled collections of observations.

The Figure 2 reproduction keeps *exact* task latencies (the run sizes fit in
memory and the paper's claims are about specific percentiles), while very
long ablation sweeps can switch to bounded reservoirs.
"""

from __future__ import annotations

import math
import random
import typing as _t


def exact_quantile(sorted_values: _t.Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending-sorted sequence.

    Uses the (n-1)-interpolation convention (same as ``numpy.percentile``
    with ``interpolation='linear'``).
    """
    if not sorted_values:
        raise ValueError("cannot take quantile of empty data")
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"quantile {q} outside [0, 1]")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    lo_v = float(sorted_values[lo])
    hi_v = float(sorted_values[hi])
    # lo + delta*frac (not the convex-combination form): exact when the two
    # neighbours are equal, and never rounds outside [lo_v, hi_v].
    return lo_v + (hi_v - lo_v) * frac


class ExactSample:
    """Stores every observation; exact quantiles on demand."""

    def __init__(self) -> None:
        self._values: _t.List[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    def record_many(self, values: _t.Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty sample has no mean")
        return sum(self._values) / len(self._values)

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError("empty sample has no min")
        self._ensure_sorted()
        return self._values[0]

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError("empty sample has no max")
        self._ensure_sorted()
        return self._values[-1]

    def quantile(self, q: float) -> float:
        self._ensure_sorted()
        return exact_quantile(self._values, q)

    def percentile(self, p: float) -> float:
        return self.quantile(p / 100.0)

    def values(self) -> _t.List[float]:
        """A copy of all observations (sorted ascending)."""
        self._ensure_sorted()
        return list(self._values)

    def stdev(self) -> float:
        """Sample standard deviation (n-1 denominator)."""
        n = len(self._values)
        if n < 2:
            raise ValueError("need at least two observations for stdev")
        mean = self.mean
        var = sum((v - mean) ** 2 for v in self._values) / (n - 1)
        return math.sqrt(var)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        if not self._values:
            return "<ExactSample empty>"
        return f"<ExactSample n={len(self._values)} mean={self.mean:.6g}>"


class Reservoir:
    """Fixed-size uniform reservoir sample (Vitter's algorithm R).

    Quantiles are estimates; error shrinks with reservoir size.  Used only
    when a sweep would otherwise hold tens of millions of floats.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._values: _t.List[float] = []
        self.count = 0  # total observations offered

    def record(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            idx = self._rng.randrange(self.count)
            if idx < self.capacity:
                self._values[idx] = value

    def record_many(self, values: _t.Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def quantile(self, q: float) -> float:
        if not self._values:
            raise ValueError("empty reservoir has no quantiles")
        return exact_quantile(sorted(self._values), q)

    def percentile(self, p: float) -> float:
        return self.quantile(p / 100.0)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty reservoir has no mean")
        return sum(self._values) / len(self._values)

    def __len__(self) -> int:
        return len(self._values)
