"""The streamed metrics bus: windowed snapshots published during a run.

Everything before this module reported metrics *after* a run finished
(``RunResult`` summaries, server stats deltas).  The bus makes the same
signals available *while* the run executes, in both realms:

* the simulation publishes a :class:`BusSnapshot` on every virtual-time
  tick of the metrics ticker (``Environment.call_every``);
* the live load generator publishes from a wall-clock ticker process,
  sampling the piggybacked server feedback the transport already
  receives, and ``repro serve`` exports the server-side view as
  Prometheus text.

Snapshots are deliberately flat and JSON-friendly: the SLO breach
detector (:mod:`repro.metrics.slo`), the remediation driver
(:mod:`repro.cluster.remediation`), the ``repro watch`` CLI and the CI
schema check all consume the same :meth:`BusSnapshot.to_dict` shape.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from collections import deque

from .reservoir import exact_quantile

#: Default trailing window (model seconds) for the latency percentiles.
DEFAULT_BUS_WINDOW = 0.1

#: Snapshots/events retained in the bus ring buffers.
DEFAULT_HISTORY = 4096


@dataclasses.dataclass(frozen=True)
class BusEvent:
    """A discrete occurrence on the bus (fault window, remediation act)."""

    time: float
    kind: str
    detail: _t.Mapping[str, _t.Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {"time": self.time, "kind": self.kind, "detail": dict(self.detail)}


@dataclasses.dataclass(frozen=True)
class BusSnapshot:
    """One windowed observation of the running cluster.

    Latencies are in model milliseconds (the paper's reporting unit);
    rates are per model second; ``queue_depths[i]`` is server ``i``'s
    queue length at sample time (live: the latest piggybacked feedback).
    """

    time: float
    seq: int
    window: float
    #: Tasks completed inside the trailing window.
    window_count: int
    #: Cumulative completions at sample time.
    completed: int
    latency_p50_ms: float
    latency_p99_ms: float
    arrival_rate: float
    served_rate: float
    #: Windowed-mean backlog (queued + in service) per server.  Means,
    #: not instantaneous reads: strategies with client-side pacing (C3's
    #: rate limiter, credit gates) keep server queues near zero while
    #: saturating the cores, so a point sample misses the heat entirely.
    queue_depths: _t.Tuple[float, ...]

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        out = dataclasses.asdict(self)
        out["queue_depths"] = list(self.queue_depths)
        return out


class WindowedQuantiles:
    """(time, value) recorder answering trailing-window quantile queries.

    The bus's latency view: the ticker records every completion latency
    and asks for p50/p99 over the last ``window`` at each tick.  Like
    :class:`~repro.metrics.timeseries.WindowedRate`, queries must not lag
    recording.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: _t.Deque[_t.Tuple[float, float]] = deque()
        self._last_time = float("-inf")
        self.total = 0

    def record(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError("time went backwards")
        self._last_time = time
        self._events.append((time, value))
        self.total += 1

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] < cutoff:
            events.popleft()

    def count(self, now: float) -> int:
        if now < self._last_time:
            raise ValueError(f"stale query: now={now} < {self._last_time}")
        self._evict(now)
        return len(self._events)

    def quantiles(
        self, now: float, qs: _t.Sequence[float]
    ) -> _t.Tuple[float, ...]:
        """Quantiles (fractions in [0, 1]) of the window; 0.0 when empty."""
        if now < self._last_time:
            raise ValueError(f"stale query: now={now} < {self._last_time}")
        self._evict(now)
        if not self._events:
            return tuple(0.0 for _ in qs)
        ordered = sorted(v for _, v in self._events)
        return tuple(exact_quantile(ordered, q) for q in qs)


class BusSampler:
    """Accumulates per-run observations and assembles snapshots.

    Realm-agnostic: the simulated runner and the live driver both chain
    :meth:`observe_arrival` into their feeder and
    :meth:`observe_completion` into their completion callback, then call
    :meth:`snapshot` on every ticker tick with whatever queue depths
    their substrate can see.
    """

    def __init__(self, window: float = DEFAULT_BUS_WINDOW) -> None:
        self.window = window
        self._latencies = WindowedQuantiles(window)
        self._arrivals = WindowedQuantiles(window)
        self._depth_samples: _t.Deque[_t.Tuple[float, _t.Tuple[float, ...]]] = (
            deque()
        )
        self.completed = 0

    def observe_arrival(self, now: float) -> None:
        self._arrivals.record(now, 0.0)

    def observe_completion(self, now: float, latency: float) -> None:
        self.completed += 1
        self._latencies.record(now, latency)

    def observe_depths(
        self, now: float, depths: _t.Sequence[float]
    ) -> None:
        """Record one per-server backlog sample (queued + in service)."""
        self._depth_samples.append((now, tuple(float(d) for d in depths)))
        cutoff = now - self.window
        while self._depth_samples and self._depth_samples[0][0] < cutoff:
            self._depth_samples.popleft()

    def _mean_depths(self) -> _t.Tuple[float, ...]:
        samples = self._depth_samples
        if not samples:
            return ()
        n_servers = len(samples[-1][1])
        sums = [0.0] * n_servers
        for _, depths in samples:
            for i, d in enumerate(depths):
                sums[i] += d
        return tuple(s / len(samples) for s in sums)

    def snapshot(self, now: float, seq: int) -> BusSnapshot:
        window_count = self._latencies.count(now)
        p50, p99 = self._latencies.quantiles(now, (0.50, 0.99))
        return BusSnapshot(
            time=now,
            seq=seq,
            window=self.window,
            window_count=window_count,
            completed=self.completed,
            latency_p50_ms=p50 * 1e3,
            latency_p99_ms=p99 * 1e3,
            arrival_rate=self._arrivals.count(now) / self.window,
            served_rate=window_count / self.window,
            queue_depths=self._mean_depths(),
        )


class MetricsBus:
    """Fan-out of snapshots and events to any number of subscribers.

    Subscribers are plain callables invoked synchronously at publish
    time (sim: inside the tick; live: on the event loop), so a
    subscriber must be cheap -- the breach detector and the ``watch``
    printers are.
    """

    def __init__(self, history: int = DEFAULT_HISTORY) -> None:
        self.snapshots: _t.Deque[BusSnapshot] = deque(maxlen=history)
        self.events: _t.Deque[BusEvent] = deque(maxlen=history)
        self._snapshot_subs: _t.List[_t.Callable[[BusSnapshot], None]] = []
        self._event_subs: _t.List[_t.Callable[[BusEvent], None]] = []
        self.published = 0

    def subscribe(
        self,
        on_snapshot: _t.Optional[_t.Callable[[BusSnapshot], None]] = None,
        on_event: _t.Optional[_t.Callable[[BusEvent], None]] = None,
    ) -> None:
        if on_snapshot is not None:
            self._snapshot_subs.append(on_snapshot)
        if on_event is not None:
            self._event_subs.append(on_event)

    def publish(self, snapshot: BusSnapshot) -> None:
        self.snapshots.append(snapshot)
        self.published += 1
        for sub in self._snapshot_subs:
            sub(snapshot)

    def emit(self, event: BusEvent) -> None:
        self.events.append(event)
        for sub in self._event_subs:
            sub(event)

    @property
    def latest(self) -> _t.Optional[BusSnapshot]:
        return self.snapshots[-1] if self.snapshots else None


def escape_label_value(value: _t.Any) -> str:
    """Escape one label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside a quoted label value.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prometheus_line(
    name: str,
    value: float,
    labels: _t.Optional[_t.Mapping[str, _t.Any]] = None,
) -> str:
    """One Prometheus text-format sample line (label values escaped)."""
    if labels:
        rendered = ",".join(
            f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def render_prometheus(
    metrics: _t.Mapping[str, float],
    prefix: str = "repro",
    labels: _t.Optional[_t.Mapping[str, _t.Any]] = None,
    help_texts: _t.Optional[_t.Mapping[str, str]] = None,
) -> str:
    """Render a flat metric mapping as Prometheus exposition text.

    Keys are sanitized to ``[a-zA-Z0-9_]`` and prefixed; every metric is
    announced with ``# HELP`` / ``# TYPE`` comment lines (all exported
    values are point-in-time reads, so the type is always ``gauge``), and
    the result ends with a trailing newline as the format requires.
    ``help_texts`` overrides the generic help string per (unprefixed)
    key.
    """
    lines = []
    for key in sorted(metrics):
        safe = "".join(c if c.isalnum() or c == "_" else "_" for c in key)
        name = f"{prefix}_{safe}"
        help_text = (help_texts or {}).get(key, f"repro metric {safe}")
        lines.append(f"# HELP {name} {escape_help_text(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(prometheus_line(name, metrics[key], labels))
    return "\n".join(lines) + "\n"


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def snapshot_prometheus(snapshot: BusSnapshot, prefix: str = "repro") -> str:
    """Prometheus text for one bus snapshot (``repro watch --prometheus``)."""
    flat: _t.Dict[str, float] = {
        "bus_time_model_s": snapshot.time,
        "bus_seq": float(snapshot.seq),
        "window_count": float(snapshot.window_count),
        "completed_total": float(snapshot.completed),
        "latency_p50_ms": snapshot.latency_p50_ms,
        "latency_p99_ms": snapshot.latency_p99_ms,
        "arrival_rate": snapshot.arrival_rate,
        "served_rate": snapshot.served_rate,
    }
    text = render_prometheus(flat, prefix=prefix)
    if not snapshot.queue_depths:
        return text
    name = f"{prefix}_queue_depth"
    depth_lines = [
        f"# HELP {name} windowed-mean backlog per server",
        f"# TYPE {name} gauge",
    ]
    depth_lines.extend(
        prometheus_line(name, float(depth), {"server": server})
        for server, depth in enumerate(snapshot.queue_depths)
    )
    return text + "\n".join(depth_lines) + "\n"
