"""SLO breach detection over the streamed metrics bus.

A :class:`BreachDetector` watches :class:`~repro.metrics.bus.BusSnapshot`
windows against a per-scenario p99 target and reports breach *episodes*
with hysteresis: the detector enters the breached state only after
``breach_after`` consecutive over-target windows and leaves it only
after ``clear_after`` consecutive under-target windows, so a single
noisy window neither triggers nor cancels remediation.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .bus import BusSnapshot


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """Per-scenario service-level objective and its evaluation knobs."""

    #: The target: windowed p99 latency must stay below this (model ms).
    p99_target_ms: float
    #: Consecutive over-target windows before a breach episode opens.
    breach_after: int = 2
    #: Consecutive under-target windows before the episode closes.
    clear_after: int = 3
    #: Windows with fewer completions than this are not evaluated
    #: (degenerate windows -- e.g. mid-crash -- have meaningless p99s).
    min_window_count: int = 5

    def __post_init__(self) -> None:
        if self.p99_target_ms <= 0:
            raise ValueError("p99_target_ms must be positive")
        if self.breach_after < 1 or self.clear_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        if self.min_window_count < 0:
            raise ValueError("min_window_count must be >= 0")


class BreachDetector:
    """Windowed SLO evaluation with hysteresis.

    Feed every bus snapshot to :meth:`observe`; it returns ``"breach"``
    when a breach episode opens, ``"clear"`` when one closes, and
    ``None`` otherwise.  ``breach_windows`` counts every *evaluated*
    window whose p99 exceeded the target -- the number the remediation
    benchmark compares between remediated and unremediated runs.
    """

    def __init__(self, policy: SloPolicy) -> None:
        self.policy = policy
        self.breached = False
        #: Evaluated windows (>= min_window_count completions).
        self.windows_evaluated = 0
        #: Evaluated windows whose p99 exceeded the target.
        self.breach_windows = 0
        #: Breach episodes opened so far.
        self.breaches = 0
        self._over_streak = 0
        self._under_streak = 0

    def observe(self, snapshot: BusSnapshot) -> _t.Optional[str]:
        if snapshot.window_count < self.policy.min_window_count:
            return None
        self.windows_evaluated += 1
        over = snapshot.latency_p99_ms > self.policy.p99_target_ms
        if over:
            self.breach_windows += 1
            self._over_streak += 1
            self._under_streak = 0
        else:
            self._under_streak += 1
            self._over_streak = 0
        if not self.breached and self._over_streak >= self.policy.breach_after:
            self.breached = True
            self.breaches += 1
            return "breach"
        if self.breached and self._under_streak >= self.policy.clear_after:
            self.breached = False
            return "clear"
        return None

    def extras(self) -> _t.Dict[str, float]:
        """Audit counters merged into ``RunResult.extras``."""
        return {
            "slo_windows_evaluated": float(self.windows_evaluated),
            "slo_breach_windows": float(self.breach_windows),
            "slo_breaches": float(self.breaches),
        }
