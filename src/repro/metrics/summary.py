"""Latency summaries: the percentile rows every experiment reports.

A :class:`LatencySummary` is the common currency between the simulator, the
harness and the benchmark reports: a named set of percentiles plus count and
mean, extractable from any recorder that implements ``quantile``.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

#: The percentiles Figure 2 of the paper reports.
PAPER_PERCENTILES: _t.Tuple[float, ...] = (50.0, 95.0, 99.0)

#: A richer default set used by the ablation sweeps.
DEFAULT_PERCENTILES: _t.Tuple[float, ...] = (50.0, 90.0, 95.0, 99.0, 99.9)


class _QuantileSource(_t.Protocol):  # pragma: no cover - typing helper
    count: int

    def quantile(self, q: float) -> float: ...

    @property
    def mean(self) -> float: ...


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Immutable percentile summary of one latency distribution."""

    name: str
    count: int
    mean: float
    percentiles: _t.Mapping[float, float]

    @classmethod
    def from_recorder(
        cls,
        name: str,
        recorder: "_QuantileSource",
        percentiles: _t.Sequence[float] = DEFAULT_PERCENTILES,
    ) -> "LatencySummary":
        """Extract a summary from any recorder with ``quantile``/``mean``."""
        if recorder.count == 0:
            raise ValueError(f"recorder for {name!r} is empty")
        values = {float(p): recorder.quantile(p / 100.0) for p in percentiles}
        return cls(name=name, count=recorder.count, mean=recorder.mean, percentiles=values)

    def percentile(self, p: float) -> float:
        """Look up a stored percentile (KeyError if not captured)."""
        return self.percentiles[float(p)]

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def scaled(self, factor: float) -> "LatencySummary":
        """Return a copy with all values multiplied by ``factor``.

        Used to convert seconds to milliseconds for paper-style tables.
        """
        return LatencySummary(
            name=self.name,
            count=self.count,
            mean=self.mean * factor,
            percentiles={p: v * factor for p, v in self.percentiles.items()},
        )

    def ratio_to(self, other: "LatencySummary") -> _t.Dict[float, float]:
        """Per-percentile ratio self/other (e.g. C3 over BRB = speedup).

        A zero percentile in ``other`` (possible with empty or degenerate
        windows, e.g. from the streamed metrics bus) yields ``math.inf``
        -- or ``math.nan`` when the numerator is zero too -- instead of
        raising ``ZeroDivisionError``.
        """
        shared = sorted(set(self.percentiles) & set(other.percentiles))
        if not shared:
            raise ValueError("summaries share no percentiles")
        out: _t.Dict[float, float] = {}
        for p in shared:
            numerator = self.percentiles[p]
            denominator = other.percentiles[p]
            if denominator == 0.0:
                out[p] = math.nan if numerator == 0.0 else math.inf
            else:
                out[p] = numerator / denominator
        return out

    def as_row(self, unit_scale: float = 1e3) -> _t.Dict[str, float]:
        """Flat dict row (defaults to milliseconds) for table rendering."""
        row: _t.Dict[str, float] = {"mean": self.mean * unit_scale}
        for p in sorted(self.percentiles):
            label = f"p{p:g}"
            row[label] = self.percentiles[p] * unit_scale
        return row

    def __str__(self) -> str:
        parts = ", ".join(
            f"p{p:g}={v * 1e3:.3f}ms" for p, v in sorted(self.percentiles.items())
        )
        return f"{self.name}: n={self.count}, mean={self.mean * 1e3:.3f}ms, {parts}"


def mean_of_summaries(summaries: _t.Sequence[LatencySummary]) -> LatencySummary:
    """Average several same-shaped summaries (the paper averages 6 seeds)."""
    if not summaries:
        raise ValueError("no summaries to average")
    name = summaries[0].name
    keys = set(summaries[0].percentiles)
    for s in summaries[1:]:
        if set(s.percentiles) != keys:
            raise ValueError("summaries have mismatched percentile sets")
    n = len(summaries)
    return LatencySummary(
        name=name,
        count=sum(s.count for s in summaries),
        mean=sum(s.mean for s in summaries) / n,
        percentiles={p: sum(s.percentiles[p] for s in summaries) / n for p in keys},
    )
