"""Time-series recorders: sampled gauges and windowed rates.

Used by the credits controller (demand per epoch), server instrumentation
(queue depth over time) and the ablation benches (load vs. latency curves).
All timestamps are virtual time from the simulation clock.
"""

from __future__ import annotations

import bisect
import math
import typing as _t


class TimeSeries:
    """Append-only (time, value) series with window queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: _t.List[float] = []
        self._values: _t.List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self._times[-1]} in {self.name!r}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> _t.List[float]:
        return list(self._times)

    @property
    def values(self) -> _t.List[float]:
        return list(self._values)

    def window(self, start: float, end: float) -> _t.List[_t.Tuple[float, float]]:
        """Observations with ``start <= time < end``."""
        if end < start:
            raise ValueError("end must be >= start")
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def mean_over(self, start: float, end: float) -> float:
        """Arithmetic mean of observations in the window."""
        pts = self.window(start, end)
        if not pts:
            raise ValueError(f"no observations in [{start}, {end})")
        return sum(v for _, v in pts) / len(pts)

    def last(self) -> _t.Tuple[float, float]:
        if not self._times:
            raise ValueError("empty time series")
        return self._times[-1], self._values[-1]

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name!r} n={len(self._times)}>"


#: Smallest rate denominator (model seconds): a query made at the instant
#: of the first event reports weight / EPSILON_ELAPSED rather than
#: dividing by zero.
EPSILON_ELAPSED = 1e-6


class WindowedRate:
    """Counts events and reports the rate over the trailing window.

    The C3 rate-control loop and the credits controller's demand estimator
    both need "events per second over the last T" with cheap updates.
    Events older than ``window`` are evicted lazily on query.

    Before one full window has elapsed since the first recorded event the
    denominator is the *elapsed* time (clamped to ``EPSILON_ELAPSED``),
    not the full window -- dividing by the window would understate every
    warm-up rate by ``window / elapsed``.  Queries must not lag recording:
    ``rate``/``count`` raise on a ``now`` earlier than the latest recorded
    event, because silently counting future events would overstate the
    answer.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: _t.List[_t.Tuple[float, float]] = []  # (time, weight)
        self._weight_sum = 0.0
        self._first_time: _t.Optional[float] = None
        self._last_time = -math.inf

    def record(self, time: float, weight: float = 1.0) -> None:
        if time < self._last_time:
            raise ValueError("time went backwards")
        if self._first_time is None:
            self._first_time = time
        self._last_time = time
        self._events.append((time, weight))
        self._weight_sum += weight
        # Amortized eviction: a hot recorder queried rarely (a saturated
        # live worker's arrival rate between congestion checks) must not
        # accumulate the whole run in memory.  Evicting against the
        # latest recorded time never changes a later query's answer.
        if len(self._events) >= 4096:
            self._evict(time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        drop = 0
        for t, w in self._events:
            if t >= cutoff:
                break
            self._weight_sum -= w
            drop += 1
        if drop:
            del self._events[:drop]

    def _check_not_stale(self, now: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"stale query: now={now} is earlier than the latest "
                f"recorded event at {self._last_time}"
            )

    def _elapsed(self, now: float) -> float:
        """The rate denominator: elapsed since the first event, clamped
        to ``[EPSILON_ELAPSED, window]``."""
        if self._first_time is None:
            return self.window
        return min(self.window, max(now - self._first_time, EPSILON_ELAPSED))

    def rate(self, now: float) -> float:
        """Weighted events per unit time over ``[now - window, now]``."""
        self._check_not_stale(now)
        self._evict(now)
        return self._weight_sum / self._elapsed(now)

    def count(self, now: float) -> float:
        """Total weight inside the current window."""
        self._check_not_stale(now)
        self._evict(now)
        return self._weight_sum


class EwmaEstimator:
    """Exponentially weighted moving average with irregular samples.

    The decay is applied per unit of elapsed virtual time (so the estimator
    has a well-defined time constant regardless of sampling cadence).  C3
    uses EWMAs of observed service times and queue sizes from piggybacked
    server feedback.
    """

    def __init__(self, time_constant: float, initial: float = 0.0) -> None:
        if time_constant <= 0:
            raise ValueError("time_constant must be positive")
        self.time_constant = time_constant
        self._value = float(initial)
        self._last_time: _t.Optional[float] = None

    @property
    def value(self) -> float:
        return self._value

    def update(self, time: float, sample: float) -> float:
        """Fold in ``sample`` observed at ``time``; returns the new value."""
        if self._last_time is None:
            self._value = float(sample)
        else:
            dt = time - self._last_time
            if dt < 0:
                raise ValueError("time went backwards")
            alpha = 1.0 - math.exp(-dt / self.time_constant)
            self._value += alpha * (sample - self._value)
        self._last_time = time
        return self._value
