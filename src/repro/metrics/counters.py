"""Named counters and gauges for simulation bookkeeping.

A :class:`MetricRegistry` is threaded through the cluster components so the
integration tests can assert conservation laws ("requests sent == requests
completed", "credits granted <= capacity") without reaching into component
internals.
"""

from __future__ import annotations

import typing as _t


class Counter:
    """A monotonically non-decreasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named value that can move both ways, tracking its running max."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value}, max={self.max_value})"


class MetricRegistry:
    """Flat namespace of counters and gauges, created on first use."""

    def __init__(self) -> None:
        self._counters: _t.Dict[str, Counter] = {}
        self._gauges: _t.Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def counters(self) -> _t.Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> _t.Dict[str, float]:
        """Snapshot of all gauge values."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def snapshot(self) -> _t.Dict[str, float]:
        """Merged snapshot of everything (counters first)."""
        merged: _t.Dict[str, float] = {}
        merged.update(self.counters())
        merged.update(self.gauges())
        return merged

    def __repr__(self) -> str:
        return (
            f"<MetricRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)}>"
        )
