"""Cost model: forecasting request and sub-task service times.

BRB schedules by *expected* service time ("based on the size of the value
they are requesting").  The forecaster shares the deterministic part of
the servers' service-time model -- clients know value sizes (the data model
stores them with the keys) and the cluster's calibrated cost curve, but
not the stochastic noise a specific execution will see.
"""

from __future__ import annotations

import typing as _t

from .._compat import slots_dataclass
from ..workload.calibration import ServiceTimeModel
from ..workload.tasks import Operation, Task


@slots_dataclass(frozen=True)
class SubTask:
    """All operations of one task destined for one replica group."""

    task_id: int
    partition: int
    operations: _t.Tuple[Operation, ...]
    #: Forecast cost of serving the whole sub-task at a single replica
    #: (sum of per-op costs: the ops serialize in the worst case).
    cost: float
    #: Per-operation forecast costs, aligned with ``operations``.
    op_costs: _t.Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("sub-task must contain at least one operation")
        if len(self.op_costs) != len(self.operations):
            raise ValueError("op_costs misaligned with operations")

    @property
    def size(self) -> int:
        return len(self.operations)


class CostModel:
    """Forecasts service times from value sizes.

    Forecasts are memoized per exact value size: the registry maps each
    key to one fixed size, and the service model's deterministic part is a
    pure function of that size, so UnifIncr/EqualMax priority assignment
    was recomputing the identical forecast for every re-read of a key.
    The memo key is the exact size (the degenerate "bucket" -- any
    coarser bucketing would change forecasts and break the byte-identical
    determinism guarantee), and the forecast is server-independent
    because the calibrated cost curve is cluster-wide.
    """

    def __init__(self, service_model: ServiceTimeModel) -> None:
        self.service_model = service_model
        self._forecast_cache: _t.Dict[int, float] = {}

    def op_cost(self, op: Operation) -> float:
        """Forecast service time of a single operation (memoized)."""
        size = op.value_size
        cost = self._forecast_cache.get(size)
        if cost is None:
            cost = self.service_model.expected_time(size)
            self._forecast_cache[size] = cost
        return cost

    def subtask_cost(self, ops: _t.Sequence[Operation]) -> float:
        """Forecast completion cost of ops serialized at one replica."""
        return sum(self.op_cost(op) for op in ops)


def split_task(
    task: Task,
    partition_of: _t.Callable[[int], int],
    cost_model: CostModel,
) -> _t.List[SubTask]:
    """Partition a task's operations into sub-tasks (one per replica group).

    This is the first step of BRB's client-side algorithm: "clients
    subdivide [the task] into a set of sub-tasks, one for each replica
    group; a sub-task contains all requests for a distinct replica group."

    Sub-tasks are returned in deterministic order (ascending partition id)
    so priority tie-breaking is reproducible.
    """
    groups: _t.Dict[int, _t.List[Operation]] = {}
    for op in task.operations:
        groups.setdefault(partition_of(op.key), []).append(op)
    subtasks: _t.List[SubTask] = []
    for partition in sorted(groups):
        ops = tuple(groups[partition])
        op_costs = tuple(cost_model.op_cost(op) for op in ops)
        subtasks.append(
            SubTask(
                task_id=task.task_id,
                partition=partition,
                operations=ops,
                cost=sum(op_costs),
                op_costs=op_costs,
            )
        )
    return subtasks


def bottleneck(subtasks: _t.Sequence[SubTask]) -> SubTask:
    """The costliest sub-task -- the one that bounds task completion time.

    Ties break toward the smaller partition id (deterministic).
    """
    if not subtasks:
        raise ValueError("no sub-tasks")
    best = subtasks[0]
    for st in subtasks[1:]:
        if st.cost > best.cost:
            best = st
    return best
