"""The credits realization: demand-proportional capacity sharing.

The paper: "we develop a credits strategy where clients report their
demands at measurement intervals and are assigned credits (i.e., shares of
server capacity) proportionally to demands via a logically-centralized
controller; once demand exceeds server capacity, a congestion signal is
sent to the controller and the credits allocations are adapted accordingly
at 1s intervals.  In such a realization, each server maintains a separate
priority-queue."

Components:

* :class:`CreditsController` -- the logically centralized allocator.  Each
  epoch (1 s default) it turns the demand reported by clients into
  per-(client, server) credit grants, proportional to demand and capped by
  the server's (congestion-scaled) capacity budget.
* :class:`CreditGate` -- client-side enforcement: requests may only leave
  for server ``s`` while the client holds credits for ``s``; otherwise they
  wait in a client-local **priority** queue (so the BRB ordering is
  preserved even while gated) and drain when the next grant arrives.
"""

from __future__ import annotations

import heapq
import typing as _t

from ..cluster.addresses import CONTROLLER_ADDRESS, client_address, server_address
from ..cluster.messages import (
    CongestionSignal,
    CreditGrant,
    DemandReport,
    RequestMessage,
)
from ..metrics.counters import MetricRegistry
from .clock import Clock, Transport

#: The paper's congestion-adaptation interval ("adapted ... at 1s intervals").
DEFAULT_EPOCH = 1.0
#: Clients report demand -- and are assigned credits -- at this cadence
#: ("clients report their demands at measurement intervals and are
#: assigned credits ... proportionally to demands").
DEFAULT_MEASUREMENT_INTERVAL = 0.1


class CreditsController:
    """Logically-centralized credit allocator.

    Parameters
    ----------
    server_capacities:
        server_id -> sustainable requests/second (cores x service rate).
    epoch:
        Congestion-adaptation interval (the paper's 1 s): budget scales
        move at most once per epoch.
    allocation_interval:
        Cadence at which demand is turned into credit grants; grants are
        denominated in requests-per-allocation-interval.  Matches the
        clients' measurement interval.
    congestion_backoff:
        Multiplicative cut applied to a server's budget scale on a
        congestion signal.
    recovery:
        Multiplicative growth of the budget scale in congestion-free
        epochs (capped at 1.0).
    headroom:
        Fraction of a server's raw capacity the controller may hand out.
    """

    def __init__(
        self,
        env: Clock,
        network: Transport,
        n_clients: int,
        server_capacities: _t.Mapping[int, float],
        epoch: float = DEFAULT_EPOCH,
        allocation_interval: float = DEFAULT_MEASUREMENT_INTERVAL,
        congestion_backoff: float = 0.8,
        recovery: float = 1.1,
        headroom: float = 1.0,
        min_scale: float = 0.5,
        metrics: _t.Optional[MetricRegistry] = None,
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if allocation_interval <= 0 or allocation_interval > epoch:
            raise ValueError("need 0 < allocation_interval <= epoch")
        if not (0.0 < congestion_backoff < 1.0):
            raise ValueError("congestion_backoff must be in (0, 1)")
        if recovery < 1.0:
            raise ValueError("recovery must be >= 1")
        if not server_capacities:
            raise ValueError("need at least one server capacity")
        self.env = env
        self.network = network
        self.n_clients = int(n_clients)
        self.server_capacities = dict(server_capacities)
        self.epoch = float(epoch)
        self.allocation_interval = float(allocation_interval)
        self.congestion_backoff = float(congestion_backoff)
        self.recovery = float(recovery)
        self.headroom = float(headroom)
        self.min_scale = float(min_scale)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        #: Per-server budget scale, adapted by congestion signals.
        self.scales: _t.Dict[int, float] = {s: 1.0 for s in server_capacities}
        #: Demand accumulated this epoch: client -> server -> requests.
        self._demand: _t.Dict[int, _t.Dict[int, float]] = {}
        self._congested: _t.Set[int] = set()
        self.epoch_index = 0
        self.grants_sent = 0
        self.congestion_signals = 0
        #: Budget already issued as immediate top-ups this interval.
        self._issued: _t.Dict[int, float] = {s: 0.0 for s in server_capacities}
        network.register(CONTROLLER_ADDRESS, self.handle_message)
        env.process(self._epoch_loop(), name="credits-controller")

    def _interval_budget(self, server: int) -> float:
        """Credits one server may hand out per allocation interval."""
        return (
            self.server_capacities[server]
            * self.allocation_interval
            * self.headroom
            * self.scales[server]
        )

    # -- message intake --------------------------------------------------------
    def handle_message(self, message: _t.Any) -> None:
        if isinstance(message, DemandReport):
            per_client = self._demand.setdefault(message.client_id, {})
            topup: _t.Dict[int, float] = {}
            for server, amount in message.demand.items():
                # Immediate top-up: as long as the server's per-interval
                # budget is not exhausted, fresh demand is granted on the
                # spot.  Below saturation credits therefore never stall a
                # client for a full interval; when the budget runs dry the
                # periodic proportional allocation takes over -- which is
                # exactly when shares (and not latency) are what matters.
                granted = 0.0
                if server in self._issued:
                    headroom_left = self._interval_budget(server) - self._issued[server]
                    granted = min(float(amount), max(0.0, headroom_left))
                    if granted > 0:
                        self._issued[server] += granted
                        topup[server] = granted
                unmet = float(amount) - granted
                if unmet > 0:
                    per_client[server] = per_client.get(server, 0.0) + unmet
            if topup:
                self.grants_sent += 1
                self.network.send(
                    CONTROLLER_ADDRESS,
                    client_address(message.client_id),
                    CreditGrant(
                        client_id=message.client_id,
                        epoch=self.epoch_index,
                        credits=topup,
                    ),
                )
        elif isinstance(message, CongestionSignal):
            self._congested.add(message.server_id)
            self.congestion_signals += 1
            self.metrics.counter("controller.congestion_signals").increment()
        else:
            raise TypeError(f"controller got unexpected message {message!r}")

    # -- allocation ----------------------------------------------------------
    def _allocate_server(
        self, server: int, demands: _t.Mapping[int, float]
    ) -> _t.Dict[int, float]:
        """Split one server's epoch budget across clients.

        Proportional to *unmet* demand (immediate top-ups already consumed
        their share of the budget); leftover capacity is split equally as a
        bootstrap share so a client that was silent this interval can still
        start sending without waiting.
        """
        budget = max(
            0.0, self._interval_budget(server) - self._issued.get(server, 0.0)
        )
        total_demand = sum(demands.values())
        grants: _t.Dict[int, float] = {}
        if budget <= 0:
            return grants
        if total_demand <= 0:
            equal = budget / self.n_clients
            return {client: equal for client in range(self.n_clients)}
        if total_demand <= budget:
            # Everyone gets what they asked; remainder split equally.
            leftover = budget - total_demand
            bonus = leftover / self.n_clients
            for client in range(self.n_clients):
                grants[client] = demands.get(client, 0.0) + bonus
        else:
            # Oversubscribed: strictly proportional shares.
            for client, demand in demands.items():
                grants[client] = budget * demand / total_demand
        return grants

    def _epoch_loop(self) -> _t.Generator:
        adaptation_due = self.epoch
        while True:
            yield self.env.timeout(self.allocation_interval)
            self.epoch_index += 1
            # Congestion adaptation only every `epoch` (the paper's 1 s).
            if self.env.now + 1e-12 >= adaptation_due:
                adaptation_due += self.epoch
                for server in self.scales:
                    if server in self._congested:
                        self.scales[server] = max(
                            self.min_scale,
                            self.scales[server] * self.congestion_backoff,
                        )
                    else:
                        self.scales[server] = min(
                            1.0, self.scales[server] * self.recovery
                        )
                self._congested.clear()
            # Pivot demand to per-server view and allocate.
            per_server: _t.Dict[int, _t.Dict[int, float]] = {
                s: {} for s in self.server_capacities
            }
            for client, per_client in self._demand.items():
                for server, amount in per_client.items():
                    if server in per_server:
                        per_server[server][client] = amount
            per_client_grants: _t.Dict[int, _t.Dict[int, float]] = {
                c: {} for c in range(self.n_clients)
            }
            for server, demands in per_server.items():
                for client, amount in self._allocate_server(server, demands).items():
                    if amount > 0:
                        per_client_grants[client][server] = amount
            self._demand.clear()
            for server in self._issued:
                self._issued[server] = 0.0
            for client, credits in per_client_grants.items():
                self.grants_sent += 1
                self.network.send(
                    CONTROLLER_ADDRESS,
                    client_address(client),
                    CreditGrant(
                        client_id=client, epoch=self.epoch_index, credits=credits
                    ),
                )


class CreditGate:
    """Client-side credit enforcement with a local priority queue.

    The gate consumes one credit per dispatched request.  Requests without
    credits wait locally, ordered by their BRB priority, so the relative
    urgency survives gating.  Demand is reported to the controller at the
    measurement cadence: backlog plus fresh arrivals since the last report.
    """

    def __init__(
        self,
        env: Clock,
        network: Transport,
        client_id: int,
        server_ids: _t.Iterable[int],
        epoch: float = DEFAULT_EPOCH,
        measurement_interval: float = DEFAULT_MEASUREMENT_INTERVAL,
        initial_share: _t.Optional[_t.Mapping[int, float]] = None,
        accumulation_intervals: float = 3.0,
        urgent_report_gap: float = 0.005,
    ) -> None:
        if measurement_interval <= 0:
            raise ValueError("measurement_interval must be positive")
        if accumulation_intervals < 1.0:
            raise ValueError("accumulation_intervals must be >= 1")
        if urgent_report_gap <= 0:
            raise ValueError("urgent_report_gap must be positive")
        self.env = env
        self.network = network
        self.client_id = int(client_id)
        self.server_ids = list(server_ids)
        self.epoch = float(epoch)
        self.measurement_interval = float(measurement_interval)
        #: Unused credits carry over, capped at this many grant-intervals
        #: worth -- absorbs Poisson burstiness without giving any client an
        #: unbounded claim on server capacity.
        self.accumulation_intervals = float(accumulation_intervals)
        #: Spendable credits per server for the current epoch.
        self.credits: _t.Dict[int, float] = {
            s: (initial_share or {}).get(s, 0.0) for s in self.server_ids
        }
        #: Carry-over ceiling per server: a few fair-share intervals worth.
        #: Rate-based (not per-grant) so frequent small top-ups do not
        #: shrink the burst cushion.
        self._caps: _t.Dict[int, float] = {
            s: max((initial_share or {}).get(s, 1.0), 1.0) * accumulation_intervals
            for s in self.server_ids
        }
        #: Gated requests per server: heap of (priority, seq, request).
        self._backlog: _t.Dict[int, _t.List[_t.Tuple[_t.Any, int, RequestMessage]]] = {
            s: [] for s in self.server_ids
        }
        self._seq = 0
        #: Fresh demand since the last report, per server.
        self._new_demand: _t.Dict[int, float] = {s: 0.0 for s in self.server_ids}
        #: Requests become urgent reports at most this often.
        self.urgent_report_gap = float(urgent_report_gap)
        self._last_report = -float("inf")
        self.dispatched = 0
        self.gated = 0
        self.grants_received = 0
        env.process(self._report_loop(), name=f"credit-gate{client_id}.reports")

    # -- dispatch path ---------------------------------------------------------
    def submit(self, request: RequestMessage) -> None:
        """Dispatch now if credits allow, else queue by priority."""
        server = request.server_id
        if server not in self.credits:
            raise ValueError(f"unknown server {server} in credit gate")
        self._new_demand[server] += 1.0
        if self.credits[server] >= 1.0 and not self._backlog[server]:
            self.credits[server] -= 1.0
            self._send(request)
        else:
            self.gated += 1
            self._seq += 1
            heapq.heappush(
                self._backlog[server], (request.priority, self._seq, request)
            )
            # A gated request is latency on the line: report demand right
            # away (rate-limited) instead of waiting out the measurement
            # interval, so the controller's top-up path can unblock us
            # within a network round trip.
            if self.env.now - self._last_report >= self.urgent_report_gap:
                self._send_report()

    def _send(self, request: RequestMessage) -> None:
        request.dispatched_at = self.env.now
        self.dispatched += 1
        self.network.send(
            client_address(self.client_id),
            server_address(request.server_id),
            request,
        )

    def _drain(self, server: int) -> None:
        backlog = self._backlog[server]
        while backlog and self.credits[server] >= 1.0:
            self.credits[server] -= 1.0
            _, _, request = heapq.heappop(backlog)
            self._send(request)

    # -- control plane -----------------------------------------------------------
    def on_grant(self, grant: CreditGrant) -> None:
        """Fold in a new grant (with bounded carry-over) and drain."""
        if grant.client_id != self.client_id:
            raise ValueError(
                f"grant for client {grant.client_id} delivered to {self.client_id}"
            )
        self.grants_received += 1
        for server in self.server_ids:
            granted = float(grant.credits.get(server, 0.0))
            if granted <= 0.0:
                continue
            cap = max(self._caps[server], granted)
            self.credits[server] = min(self.credits[server] + granted, cap)
            self._drain(server)

    def _send_report(self) -> None:
        """Report fresh demand plus standing backlog to the controller."""
        self._last_report = self.env.now
        demand: _t.Dict[int, float] = {}
        for server in self.server_ids:
            amount = self._new_demand[server] + len(self._backlog[server])
            if amount > 0:
                demand[server] = amount
            self._new_demand[server] = 0.0
        if demand:
            self.network.send(
                client_address(self.client_id),
                CONTROLLER_ADDRESS,
                DemandReport(
                    client_id=self.client_id, time=self.env.now, demand=demand
                ),
            )

    def _report_loop(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.measurement_interval)
            self._send_report()

    @property
    def backlog_size(self) -> int:
        return sum(len(b) for b in self._backlog.values())


def equal_initial_shares(
    server_capacities: _t.Mapping[int, float],
    n_clients: int,
    epoch: float = DEFAULT_EPOCH,
) -> _t.Dict[int, float]:
    """Bootstrap credits before the first grant: equal split of capacity."""
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    return {
        server: capacity * epoch / n_clients
        for server, capacity in server_capacities.items()
    }
