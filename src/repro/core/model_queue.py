"""The ideal *model* realization: one global priority queue.

"In an ideal case, referred to as model, servers utilize a work-pulling
mechanism to fetch requests from a single global priority-based queue
shared by all clients.  However, such a model is unrealizable since it
assumes perfect knowledge of global state."

We realize the ideal as a shared :class:`PriorityFilterStore`; clients
submit prioritized requests into it (after the usual client->backend
network delay -- the model is ideal with respect to *knowledge*, not
physics) and :class:`~repro.cluster.server.PullServer` cores pull the
globally smallest-priority request they can serve.
"""

from __future__ import annotations

import typing as _t

from ..cluster.messages import RequestMessage
from ..cluster.network import LatencyModel
from ..sim.engine import Environment
from ..sim.resources import PriorityFilterStore, PriorityItem
from ..sim.rng import Stream


class GlobalQueue:
    """Shared priority queue plus the submission delay model."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyModel,
        stream: Stream,
    ) -> None:
        self.env = env
        self.latency = latency
        self.stream = stream
        self.store = PriorityFilterStore(env)
        self.submitted = 0

    def submit(self, request: RequestMessage) -> None:
        """Enqueue after one network delay (client -> backend tier)."""
        request.dispatched_at = self.env.now
        self.submitted += 1
        delay = self.latency.sample(self.stream)
        # Bare-callback timer (same calendar slot as the old Timeout +
        # closure): arrival is fire-and-forget, nothing yields on it;
        # call_later rejects a negative delay exactly as Timeout did.
        self.env.call_later(delay, self._arrive, request)

    def _arrive(self, request: RequestMessage) -> None:
        request.enqueued_at = self.env.now
        self.store.put(PriorityItem(request.priority, request))

    def __len__(self) -> int:
        return len(self.store)
