"""The ideal *model* realization: one global priority queue.

"In an ideal case, referred to as model, servers utilize a work-pulling
mechanism to fetch requests from a single global priority-based queue
shared by all clients.  However, such a model is unrealizable since it
assumes perfect knowledge of global state."

We realize the ideal as a shared :class:`PriorityFilterStore`; clients
submit prioritized requests into it (after the usual client->backend
network delay -- the model is ideal with respect to *knowledge*, not
physics) and :class:`~repro.cluster.server.PullServer` cores pull the
globally smallest-priority request they can serve.
"""

from __future__ import annotations

import typing as _t

from ..cluster.messages import RequestMessage
from ..cluster.network import LatencyModel
from ..sim.engine import Environment
from ..sim.resources import PriorityFilterStore, PriorityItem
from ..sim.rng import Stream


class GlobalQueue:
    """Shared priority queue plus the submission delay model."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyModel,
        stream: Stream,
    ) -> None:
        self.env = env
        self.latency = latency
        self.stream = stream
        self.store = PriorityFilterStore(env)
        self.submitted = 0

    def submit(self, request: RequestMessage) -> None:
        """Enqueue after one network delay (client -> backend tier)."""
        request.dispatched_at = self.env.now
        self.submitted += 1
        delay = self.latency.sample(self.stream)
        event = self.env.timeout(delay, value=request)

        def _arrive(ev: _t.Any) -> None:
            req = _t.cast(RequestMessage, ev.value)
            req.enqueued_at = self.env.now
            self.store.put(PriorityItem(req.priority, req))

        event.callbacks.append(_arrive)

    def __len__(self) -> int:
        return len(self.store)
