"""The clock/transport seam: one strategy stack, two execution substrates.

Everything strategy-side (C3 selection and pacing, hedging timers, BRB
credit gates, the credits controller) interacts with its substrate through
two narrow interfaces:

* :class:`Clock` -- ``now`` (seconds), ``timeout(delay)`` tokens, and
  ``process(generator)`` to drive a periodic/delayed activity expressed as
  a generator that yields timeout tokens.
* :class:`Transport` -- ``register(address, handler)`` and
  ``send(src, dst, message)``: addressed, asynchronous message delivery.

The simulation realizes them with :class:`~repro.sim.engine.Environment`
(virtual clock, event calendar) and :class:`~repro.cluster.network.Network`
(modelled one-way latency); both satisfy the protocols structurally, so
simulation behavior is untouched by this seam.  The live serving subsystem
(:mod:`repro.serve`, :mod:`repro.loadgen`) realizes them with
:class:`WallClock` -- wall-clock time driven by asyncio -- and a TCP-backed
transport, which is what lets the *same* strategy objects dispatch real
requests against real concurrency.

Model time vs. wall time
------------------------
All strategy code thinks in *model seconds* (the paper's units: 50 us
network hops, ~285 us service times).  A :class:`WallClock` maps between
the two with a ``scale`` factor: one model second takes ``scale`` wall
seconds.  Scaling up (e.g. 25x) keeps sleep durations well above the
event-loop timer resolution so live runs are not dominated by timer
quantization; latencies read off a :class:`WallClock` are already in model
seconds and therefore directly comparable with simulated ones.
"""

from __future__ import annotations

import asyncio
import time
import typing as _t


@_t.runtime_checkable
class Clock(_t.Protocol):
    """What strategy code may ask of time.

    Satisfied by the simulation's :class:`~repro.sim.engine.Environment`
    (virtual time) and by :class:`WallClock` (scaled wall time).
    """

    @property
    def now(self) -> float:
        """Current time in model seconds."""
        ...

    def timeout(self, delay: float, value: object = None) -> _t.Any:
        """A token a :meth:`process` generator can yield to sleep."""
        ...

    def process(
        self, generator: _t.Generator, name: _t.Optional[str] = None
    ) -> _t.Any:
        """Drive ``generator``; each yielded timeout token suspends it."""
        ...


@_t.runtime_checkable
class Transport(_t.Protocol):
    """Addressed, asynchronous message delivery between endpoints.

    Satisfied by the simulated :class:`~repro.cluster.network.Network`
    (sampled one-way delays) and by the live subsystem's TCP/loopback
    transports.  Handlers are plain callables invoked with the message.
    """

    def register(
        self, address: _t.Hashable, handler: _t.Callable[[_t.Any], None]
    ) -> None: ...

    def send(
        self, src: _t.Hashable, dst: _t.Hashable, message: _t.Any
    ) -> _t.Any: ...


class _Sleep:
    """Timeout token yielded by live processes (mirrors ``sim.Timeout``)."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError("negative sleep")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:
        return f"_Sleep({self.delay!r})"


class WallClock:
    """Wall-clock realization of :class:`Clock` on top of asyncio.

    ``now`` is model seconds since construction: ``(monotonic - t0) /
    scale``.  ``process`` drives the same generator protocol the simulation
    uses -- generators yield ``timeout(delay)`` tokens -- as an asyncio
    task, so strategy-side periodic loops (credit reports, hedge timers,
    C3 pacers) run unmodified against real time.
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)
        self._t0 = time.monotonic()
        #: Live (unfinished) tasks spawned via :meth:`process`.  Pruned on
        #: completion: strategies spawn one short-lived process per paced
        #: or hedged request, so an append-only list would grow with the
        #: request count.
        self.tasks: _t.Set["asyncio.Task[None]"] = set()
        #: First exception raised by any spawned process (they are all
        #: infinite or fire-and-forget loops, so any exception is a bug
        #: the driver must surface -- the sim raises them synchronously).
        self.first_error: _t.Optional[BaseException] = None
        self._error_callbacks: _t.List[_t.Callable[[BaseException], None]] = []

    # -- Clock protocol -----------------------------------------------------
    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) / self.scale

    def rebase(self) -> None:
        """Reset model time to zero (e.g. when the measured run begins).

        Call before any timestamped traffic: samples recorded earlier would
        sit in the clock's future after a rebase.
        """
        self._t0 = time.monotonic()

    def timeout(self, delay: float, value: object = None) -> _Sleep:
        return _Sleep(delay, value)

    def process(
        self, generator: _t.Generator, name: _t.Optional[str] = None
    ) -> "asyncio.Task[None]":
        task = asyncio.get_running_loop().create_task(
            self._drive(generator, name), name=name
        )
        self.tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def on_error(self, callback: _t.Callable[[BaseException], None]) -> None:
        """Invoke ``callback`` with the first process exception (once)."""
        self._error_callbacks.append(callback)
        if self.first_error is not None:
            callback(self.first_error)

    def _on_task_done(self, task: "asyncio.Task[None]") -> None:
        self.tasks.discard(task)
        if task.cancelled():
            return
        error = task.exception()  # retrieve, or asyncio warns at GC time
        if error is not None and self.first_error is None:
            self.first_error = error
            for callback in self._error_callbacks:
                callback(error)

    # -- live helpers -------------------------------------------------------
    async def sleep(self, model_delay: float) -> None:
        """Suspend the calling coroutine for ``model_delay`` model seconds."""
        if model_delay > 0:
            await asyncio.sleep(model_delay * self.scale)

    async def sleep_until(self, model_time: float) -> None:
        """Sleep until the model clock reads at least ``model_time``."""
        await self.sleep(model_time - self.now)

    async def _drive(self, generator: _t.Generator, name: _t.Optional[str]) -> None:
        value: object = None
        try:
            while True:
                try:
                    item = generator.send(value)
                except StopIteration:
                    return
                if not isinstance(item, _Sleep):
                    raise TypeError(
                        f"live process {name or generator!r} yielded {item!r}; "
                        "only clock.timeout(...) tokens are waitable on a "
                        "wall clock"
                    )
                await self.sleep(item.delay)
                value = item.value
        except asyncio.CancelledError:
            generator.close()
            raise

    def cancel_processes(self) -> None:
        """Cancel every live process this clock spawned (run teardown)."""
        for task in list(self.tasks):
            if not task.done():
                task.cancel()
        self.tasks.clear()
