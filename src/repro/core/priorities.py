"""Priority assignment: EqualMax and UnifIncr (Section 2.1 of the paper).

Both algorithms derive per-request priorities from the task's *bottleneck*
sub-task (the costliest one).  Priorities are tuples ordered
lexicographically; **smaller sorts first** at the servers.

* **EqualMax** -- every request inherits the bottleneck cost.  Tasks with
  short bottlenecks beat tasks with long ones everywhere; within a task all
  requests are equal.  ("Requests are given the same priority as that of
  the bottleneck sub-task ... equivalent to Shortest Job First, [using]
  the bottleneck instead of the individual service time.")
* **UnifIncr** -- a request's priority is its *slack*: the difference
  between the bottleneck cost and the request's own cost.  Requests that
  are themselves long (likely to bottleneck their task) get small slack =
  high priority; short requests can afford to wait.  ("Requests are ranked
  based on the difference between the cost of the bottleneck sub-task and
  their individual cost.")

Tie-breaking: ``(value, task_arrival_time, op_id)`` -- FIFO between equal
priorities, deterministic overall.
"""

from __future__ import annotations

import typing as _t

from ..workload.tasks import Task
from .cost import SubTask, bottleneck

#: Priority type: lexicographically ordered tuple, smaller served first.
Priority = _t.Tuple[float, float, float]


class PriorityAssigner:
    """Interface: map (task, sub-tasks) to per-operation priorities."""

    name: str = "abstract"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        """Return ``{op_id: priority}`` covering every op of the task."""
        raise NotImplementedError  # pragma: no cover - abstract


class EqualMaxAssigner(PriorityAssigner):
    """All requests carry the bottleneck sub-task's cost."""

    name = "equalmax"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        bott = bottleneck(subtasks)
        priorities: _t.Dict[int, Priority] = {}
        for st in subtasks:
            for op in st.operations:
                priorities[op.op_id] = (bott.cost, task.arrival_time, float(op.op_id))
        return priorities


class UnifIncrAssigner(PriorityAssigner):
    """Requests ranked by slack behind the bottleneck.

    ``slack(op) = bottleneck_cost - cost(op)``; the bottleneck sub-task's
    *total* residual is spread over its own ops so that ops of the
    bottleneck sub-task are always at least as urgent as any op of a
    cheaper sub-task with the same individual cost.
    """

    name = "unifincr"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        bott = bottleneck(subtasks)
        priorities: _t.Dict[int, Priority] = {}
        for st in subtasks:
            for op, op_cost in zip(st.operations, st.op_costs):
                slack = bott.cost - op_cost
                priorities[op.op_id] = (slack, task.arrival_time, float(op.op_id))
        return priorities


class FifoAssigner(PriorityAssigner):
    """Task-arrival-ordered priorities (the null hypothesis for ablations).

    With priority = arrival time, a priority-queue server degenerates to
    task-FIFO; comparing this against EqualMax/UnifIncr under the same
    credits realization isolates the value of *task-aware* priorities from
    the value of the credits machinery itself.
    """

    name = "fifo"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        return {
            op.op_id: (task.arrival_time, task.arrival_time, float(op.op_id))
            for st in subtasks
            for op in st.operations
        }


class SjfAssigner(PriorityAssigner):
    """Per-request SJF priorities (size-aware but task-oblivious).

    Ablation point between FIFO and the task-aware assigners: priority is
    the op's own cost, ignoring the bottleneck entirely.
    """

    name = "sjf"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        return {
            op.op_id: (op_cost, task.arrival_time, float(op.op_id))
            for st in subtasks
            for op, op_cost in zip(st.operations, st.op_costs)
        }


class EdfAssigner(PriorityAssigner):
    """Earliest-deadline-first priorities: arrival + bottleneck cost.

    The deadline of every request of a task is the earliest instant the
    task could possibly finish.  Equivalent to EqualMax with an arrival
    offset; included as an ablation because EDF is the classic deadline
    scheduler the paper's "slack" intuition is usually compared against.
    """

    name = "edf"

    def assign(
        self, task: Task, subtasks: _t.Sequence[SubTask]
    ) -> _t.Dict[int, Priority]:
        bott = bottleneck(subtasks)
        deadline = task.arrival_time + bott.cost
        return {
            op.op_id: (deadline, task.arrival_time, float(op.op_id))
            for st in subtasks
            for op in st.operations
        }


_ASSIGNERS: _t.Dict[str, _t.Callable[[], PriorityAssigner]] = {
    "equalmax": EqualMaxAssigner,
    "unifincr": UnifIncrAssigner,
    "fifo": FifoAssigner,
    "sjf": SjfAssigner,
    "edf": EdfAssigner,
}


def make_assigner(name: str) -> PriorityAssigner:
    """Factory by name; raises ValueError for unknown assigners."""
    try:
        factory = _ASSIGNERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown priority assigner {name!r}; known: {sorted(_ASSIGNERS)}"
        ) from None
    return factory()
