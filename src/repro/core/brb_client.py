"""BRB dispatch strategies: task-aware preparation + two realizations.

Shared preparation (both realizations):

1. split the task into sub-tasks, one per replica group
   (:func:`repro.core.cost.split_task`);
2. forecast costs and find the bottleneck sub-task;
3. assign every request a priority via EqualMax or UnifIncr;
4. (credits realization) pin each sub-task to one replica of its group
   using least-outstanding-*bytes* selection, so the sub-task's cost model
   ("ops serialize at one server") matches where the ops actually go.

Realizations:

* :class:`BRBCreditsStrategy` -- requests flow through the client's
  :class:`~repro.core.credits.CreditGate` to per-server priority queues.
* :class:`BRBModelStrategy` -- requests flow into the shared
  :class:`~repro.core.model_queue.GlobalQueue`; any replica may pull them.
"""

from __future__ import annotations

import typing as _t

from ..baselines.selectors import LeastOutstandingBytesSelector
from ..cluster.client import DispatchStrategy
from ..cluster.messages import CreditGrant, RequestMessage, ResponseMessage
from ..cluster.partitioner import Placement
from ..workload.calibration import ServiceTimeModel
from ..workload.tasks import Task
from .cost import CostModel, bottleneck, split_task
from .credits import CreditGate
from .model_queue import GlobalQueue
from .priorities import PriorityAssigner


class _BRBBase(DispatchStrategy):
    """Shared task-aware preparation."""

    def __init__(
        self,
        placement: Placement,
        assigner: PriorityAssigner,
        service_model: ServiceTimeModel,
    ) -> None:
        self.placement = placement
        self.assigner = assigner
        self.cost_model = CostModel(service_model)

    def _prepare_common(
        self, task: Task, select_replicas: bool
    ) -> _t.List[RequestMessage]:
        subtasks = split_task(task, self.placement.partition_of, self.cost_model)
        priorities = self.assigner.assign(task, subtasks)
        bott = bottleneck(subtasks)
        requests: _t.List[RequestMessage] = []
        for st in subtasks:
            for op, op_cost in zip(st.operations, st.op_costs):
                request = RequestMessage(
                    op=op,
                    task_id=task.task_id,
                    client_id=self.client.client_id,
                    partition=st.partition,
                    priority=priorities[op.op_id],
                    expected_service=op_cost,
                    bottleneck_cost=bott.cost,
                )
                if select_replicas:
                    # Load-aware (least-outstanding-bytes) selection *per
                    # request*: the sub-task groups requests for priority
                    # purposes, but a large sub-task still spreads across
                    # its replica group rather than serializing on one
                    # server ("intelligent replica selection ... in a
                    # load-aware fashion").
                    request.server_id = self._choose_replica(st.partition, request)
                requests.append(request)
        return requests

    def _choose_replica(
        self, partition: int, probe: RequestMessage
    ) -> int:  # pragma: no cover - overridden where used
        raise NotImplementedError


class BRBCreditsStrategy(_BRBBase):
    """BRB over the realizable credits machinery."""

    def __init__(
        self,
        placement: Placement,
        assigner: PriorityAssigner,
        service_model: ServiceTimeModel,
        gate: CreditGate,
        selector: _t.Optional[LeastOutstandingBytesSelector] = None,
    ) -> None:
        super().__init__(placement, assigner, service_model)
        self.gate = gate
        self.selector = selector if selector is not None else LeastOutstandingBytesSelector()
        self.name = f"brb-credits+{assigner.name}"

    def _choose_replica(self, partition: int, probe: RequestMessage) -> int:
        replicas = self.placement.replicas_of(partition)
        server = self.selector.choose(replicas, probe)
        # Account immediately so the next op of the same burst sees this
        # assignment's load and spreads instead of herding.
        probe.server_id = server
        self.selector.on_assign(probe)
        return server

    def prepare(self, task: Task) -> _t.List[RequestMessage]:
        return self._prepare_common(task, select_replicas=True)

    def dispatch(self, requests: _t.Sequence[RequestMessage]) -> None:
        for request in requests:
            self.gate.submit(request)

    def on_response(self, response: ResponseMessage) -> None:
        self.selector.on_response(response)

    def on_control(self, message: _t.Any) -> None:
        """Route credit grants to the gate."""
        if isinstance(message, CreditGrant):
            self.gate.on_grant(message)
        else:
            raise TypeError(f"BRB-credits got unexpected control {message!r}")


class BRBModelStrategy(_BRBBase):
    """BRB over the ideal global-queue realization."""

    def __init__(
        self,
        placement: Placement,
        assigner: PriorityAssigner,
        service_model: ServiceTimeModel,
        global_queue: GlobalQueue,
    ) -> None:
        super().__init__(placement, assigner, service_model)
        self.global_queue = global_queue
        self.name = f"brb-model+{assigner.name}"

    def prepare(self, task: Task) -> _t.List[RequestMessage]:
        # No replica selection: any server of the group may pull the
        # request, which is exactly the flexibility the ideal model enjoys.
        return self._prepare_common(task, select_replicas=False)

    def dispatch(self, requests: _t.Sequence[RequestMessage]) -> None:
        for request in requests:
            self.global_queue.submit(request)
