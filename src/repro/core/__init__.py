"""BRB core: task-aware priorities, credits and the ideal model."""

from .brb_client import BRBCreditsStrategy, BRBModelStrategy
from .cost import CostModel, SubTask, bottleneck, split_task
from .credits import (
    CreditGate,
    CreditsController,
    DEFAULT_EPOCH,
    DEFAULT_MEASUREMENT_INTERVAL,
    equal_initial_shares,
)
from .model_queue import GlobalQueue
from .priorities import (
    EqualMaxAssigner,
    FifoAssigner,
    Priority,
    PriorityAssigner,
    SjfAssigner,
    UnifIncrAssigner,
    make_assigner,
)

__all__ = [
    "BRBCreditsStrategy",
    "BRBModelStrategy",
    "CostModel",
    "CreditGate",
    "CreditsController",
    "DEFAULT_EPOCH",
    "DEFAULT_MEASUREMENT_INTERVAL",
    "EqualMaxAssigner",
    "FifoAssigner",
    "GlobalQueue",
    "Priority",
    "PriorityAssigner",
    "SjfAssigner",
    "SubTask",
    "UnifIncrAssigner",
    "bottleneck",
    "equal_initial_shares",
    "make_assigner",
    "split_task",
]
