"""Ring membership changes: deltas, movement accounting, live swaps.

Two concerns live here:

* :func:`placement_delta` quantifies what a membership change moves --
  how many partitions re-home, what fraction of a keyspace changes its
  replica set or its primary -- against the theoretical consistent-hashing
  minimum (only the keys the departed servers held need to move).
* :class:`MutablePlacement` is the runtime seam for *mid-run* rebalances:
  it wraps any :class:`~repro.placement.ring.Placement` and delegates
  every lookup to the currently-active ring, so a
  :class:`~repro.cluster.faults.RebalanceFault` can decommission servers
  (and readmit them) while clients keep routing through the same object.
  Strategies consult the placement at prepare time, so requests issued
  after a swap use the new replica sets while in-flight requests finish
  where they were sent -- in the simulation and over live TCP alike.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .ring import Placement


@dataclasses.dataclass(frozen=True)
class PlacementDelta:
    """What changed between two placements over a sampled keyspace.

    ``affected_fraction`` is the fraction of keys whose *old* replica set
    intersected the departed/changed servers -- the theoretical minimum a
    rebalance must touch.  A minimal-movement placement keeps
    ``moved_fraction <= affected_fraction`` (equality when every affected
    group changes).
    """

    n_keys: int
    #: Partitions whose replica group changed at all.
    changed_partitions: int
    #: Keys whose replica set changed at all.
    moved_keys: int
    #: Keys whose *primary* replica changed.
    primary_moved_keys: int
    #: Keys whose old replica set intersected the changed servers.
    affected_keys: int
    #: Per-server partition-count gains (new groups joined).
    gained: _t.Dict[int, int]
    #: Per-server partition-count losses (groups departed).
    lost: _t.Dict[int, int]

    @property
    def moved_fraction(self) -> float:
        """Fraction of sampled keys whose replica set changed."""
        return self.moved_keys / self.n_keys if self.n_keys else 0.0

    @property
    def primary_moved_fraction(self) -> float:
        """Fraction of sampled keys whose primary replica changed."""
        return self.primary_moved_keys / self.n_keys if self.n_keys else 0.0

    @property
    def affected_fraction(self) -> float:
        """Theoretical minimum fraction a rebalance had to touch."""
        return self.affected_keys / self.n_keys if self.n_keys else 0.0

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """JSON-friendly form for ``repro ring --exclude`` and tests."""
        return {
            "n_keys": self.n_keys,
            "changed_partitions": self.changed_partitions,
            "moved_keys": self.moved_keys,
            "primary_moved_keys": self.primary_moved_keys,
            "affected_keys": self.affected_keys,
            "moved_fraction": self.moved_fraction,
            "primary_moved_fraction": self.primary_moved_fraction,
            "affected_fraction": self.affected_fraction,
            "gained": dict(sorted(self.gained.items())),
            "lost": dict(sorted(self.lost.items())),
        }


def placement_delta(
    old: Placement, new: Placement, n_keys: int
) -> PlacementDelta:
    """Compare two placements over the keyspace ``[0, n_keys)``.

    Both placements must share the partition count and key -> partition
    mapping (membership changes never re-key); the delta is computed per
    partition and weighted by how many sampled keys each partition owns.
    """
    if old.n_partitions != new.n_partitions:
        raise ValueError(
            f"partition counts differ: {old.n_partitions} vs {new.n_partitions}"
        )
    if n_keys <= 0:
        raise ValueError("n_keys must be positive")
    changed_servers: _t.Set[int] = set()
    gained: _t.Dict[int, int] = {}
    lost: _t.Dict[int, int] = {}
    changed_partitions = 0
    partition_changed: _t.List[bool] = []
    partition_primary_changed: _t.List[bool] = []
    partition_affected_by: _t.List[_t.FrozenSet[int]] = []
    for p in range(old.n_partitions):
        before = old.replicas_of(p)
        after = new.replicas_of(p)
        partition_changed.append(set(before) != set(after))
        partition_primary_changed.append(before[0] != after[0])
        partition_affected_by.append(frozenset(before))
        if partition_changed[-1]:
            changed_partitions += 1
            for s in set(after) - set(before):
                gained[s] = gained.get(s, 0) + 1
            for s in set(before) - set(after):
                lost[s] = lost.get(s, 0) + 1
                changed_servers.add(s)
    moved_keys = primary_moved = affected = 0
    for key in range(n_keys):
        p = old.partition_of(key)
        if new.partition_of(key) != p:
            raise ValueError(
                f"placements disagree on partition_of({key}); deltas are "
                "only meaningful for membership changes, not re-keying"
            )
        if partition_changed[p]:
            moved_keys += 1
        if partition_primary_changed[p]:
            primary_moved += 1
        if partition_affected_by[p] & changed_servers:
            affected += 1
    return PlacementDelta(
        n_keys=n_keys,
        changed_partitions=changed_partitions,
        moved_keys=moved_keys,
        primary_moved_keys=primary_moved,
        affected_keys=affected,
        gained=gained,
        lost=lost,
    )


class MutablePlacement(Placement):
    """A placement whose ring membership can change mid-run.

    Wraps a base placement and delegates all lookups to the currently
    *active* ring.  :meth:`exclude` decommissions servers (the active ring
    becomes ``base.without_servers(excluded)``); :meth:`readmit` brings
    them back.  Exclusions are *reference counted*: excluding server 2
    and then servers (2, 5) yields the base ring minus both, and the
    first readmit of 2 leaves it excluded until the second -- so
    overlapping rebalance windows that share a server nest correctly,
    each window reverting exactly what it applied.

    Everything that consults the placement per request (strategy
    ``prepare``, hedging's replica walk, the credits sub-task pinning)
    observes swaps immediately; static snapshots taken at build time (the
    model realization's per-server partition lists) intentionally do not,
    which mirrors how a real decommission drains routing before data.
    """

    def __init__(self, base: Placement) -> None:
        self.base = base
        #: Exclusion reference counts per server id.
        self._counts: _t.Dict[int, int] = {}
        #: Per-partition extra replicas (remediation's spread lever).
        self._boosts: _t.Dict[int, _t.Tuple[int, ...]] = {}
        self.active: Placement = base
        #: Ring rebuilds applied so far (audit counter).
        self.swaps = 0

    # -- Placement surface --------------------------------------------------
    @property
    def n_partitions(self) -> int:  # type: ignore[override]
        """Partition count (invariant across membership changes)."""
        return self.active.n_partitions

    @property
    def n_servers(self) -> int:  # type: ignore[override]
        """Server id-space size (invariant across membership changes)."""
        return self.active.n_servers

    @property
    def replication_factor(self) -> int:  # type: ignore[override]
        """Replication factor of the active ring."""
        return self.active.replication_factor

    def partition_of(self, key: int) -> int:
        """Delegate to the active ring (stable across swaps)."""
        return self.active.partition_of(key)

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        """The *currently eligible* replica set of one partition.

        A boosted partition's set is the active ring's replicas plus the
        boost's extra servers (minus any currently excluded), so every
        per-request consumer -- strategy ``prepare``, hedging's replica
        walk, credits sub-task pinning -- sees the widened choice set
        immediately.
        """
        replicas = self.active.replicas_of(partition)
        if self._boosts:
            extras = self._boosts.get(partition)
            if extras:
                replicas = replicas + tuple(
                    s
                    for s in extras
                    if s not in replicas and s not in self._counts
                )
        return replicas

    def validate(self) -> None:
        """Validate the active ring's structural invariants."""
        self.active.validate()

    # -- membership changes -------------------------------------------------
    @property
    def excluded(self) -> _t.Tuple[int, ...]:
        """Server ids currently decommissioned, sorted."""
        return tuple(sorted(self._counts))

    def exclude(self, servers: _t.Iterable[int]) -> None:
        """Decommission ``servers``: re-home their partitions to survivors.

        A server already excluded by an overlapping window just gains a
        reference; it rejoins only when every window holding it reverts.
        """
        counts = dict(self._counts)
        for s in (int(s) for s in servers):
            counts[s] = counts.get(s, 0) + 1
        self._apply(counts)

    def readmit(self, servers: _t.Iterable[int]) -> None:
        """Drop one exclusion reference per server (revert of a window)."""
        counts = dict(self._counts)
        for s in (int(s) for s in servers):
            count = counts.get(s, 0)
            if count == 0:
                raise ValueError(f"server {s} is not excluded")
            if count == 1:
                del counts[s]
            else:
                counts[s] = count - 1
        self._apply(counts)

    # -- replica spreading (the hot-shard remediation lever) ----------------
    @property
    def boosted(self) -> _t.Dict[int, _t.Tuple[int, ...]]:
        """Partitions currently carrying extra replicas."""
        return dict(self._boosts)

    def boost(self, partition: int, extras: _t.Iterable[int]) -> None:
        """Widen ``partition``'s replica set with ``extras``.

        The spread remediation for a popularity hot shard: exclusion
        cannot help there (the hot partition keeps exactly
        ``replication_factor`` replicas while the ring loses capacity),
        but extra replicas let the selection strategies route the heat
        across more servers.  Servers must exist in the id space; one
        boost per partition at a time (re-boosting replaces the set).
        """
        extras = tuple(dict.fromkeys(int(s) for s in extras))
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        for s in extras:
            if not (0 <= s < self.n_servers):
                raise ValueError(f"server {s} out of range")
        if not extras:
            raise ValueError("boost needs at least one extra server")
        self._boosts[partition] = extras
        self.swaps += 1

    def unboost(self, partition: int) -> None:
        """Drop ``partition``'s extra replicas (revert of a boost)."""
        if partition not in self._boosts:
            raise ValueError(f"partition {partition} is not boosted")
        del self._boosts[partition]
        self.swaps += 1

    def _apply(self, counts: _t.Dict[int, int]) -> None:
        """Swap in the ring for ``counts``, atomically (raise = no change)."""
        excluded = tuple(sorted(counts))
        active = (
            self.base.without_servers(excluded) if excluded else self.base
        )
        self._counts = counts
        self.active = active
        self.swaps += 1

    def __repr__(self) -> str:
        suffix = f", excluded={list(self.excluded)}" if self._counts else ""
        return f"MutablePlacement({self.base!r}{suffix})"
