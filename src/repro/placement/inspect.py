"""Placement inspection: ownership, balance, and human-readable reports.

Backing for the ``repro ring`` CLI command (see ``docs/cli.md``): given
any :class:`~repro.placement.ring.Placement`, compute who owns what --
per-server partition membership, primary counts, and the fraction of a
sampled keyspace each server is eligible to serve -- plus summary balance
statistics (a perfectly balanced ring has every server holding
``R * K / N`` of the keyspace's replicas).
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from .ring import Placement


@dataclasses.dataclass(frozen=True)
class ServerOwnership:
    """One server's share of the ring."""

    server_id: int
    #: Replica groups this server belongs to.
    partitions: int
    #: Partitions where this server is the primary (first replica).
    primary_partitions: int
    #: Sampled keys whose replica set contains this server.
    replica_keys: int
    #: Sampled keys whose primary is this server.
    primary_keys: int


@dataclasses.dataclass(frozen=True)
class RingReport:
    """Ownership of every server plus ring-wide balance statistics."""

    placement_repr: str
    n_keys: int
    servers: _t.Tuple[ServerOwnership, ...]

    @property
    def replica_share_cv(self) -> float:
        """Coefficient of variation of per-server replica key share.

        0 means a perfectly balanced ring; production vnode rings sit in
        the 0.05-0.3 range depending on the vnode count.
        """
        shares = [s.replica_keys for s in self.servers]
        mean = sum(shares) / len(shares)
        if mean == 0:
            return 0.0
        variance = sum((x - mean) ** 2 for x in shares) / len(shares)
        return math.sqrt(variance) / mean

    @property
    def max_over_mean(self) -> float:
        """Hottest server's replica share relative to the mean share."""
        shares = [s.replica_keys for s in self.servers]
        mean = sum(shares) / len(shares)
        return max(shares) / mean if mean else 0.0

    def to_rows(self) -> _t.List[_t.Dict[str, _t.Any]]:
        """Table rows for :func:`repro.analysis.tables.render_table`."""
        return [
            {
                "server": s.server_id,
                "partitions": s.partitions,
                "primary": s.primary_partitions,
                "key share %": 100.0 * s.replica_keys / self.n_keys,
                "primary share %": 100.0 * s.primary_keys / self.n_keys,
            }
            for s in self.servers
        ]

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """JSON-friendly form for ``repro ring --json``."""
        return {
            "placement": self.placement_repr,
            "n_keys": self.n_keys,
            "replica_share_cv": self.replica_share_cv,
            "max_over_mean": self.max_over_mean,
            "servers": [dataclasses.asdict(s) for s in self.servers],
        }

    def ownership_bars(self, width: int = 40) -> _t.List[str]:
        """ASCII ownership bars, one line per server (CLI eye candy)."""
        peak = max((s.replica_keys for s in self.servers), default=0)
        lines = []
        for s in self.servers:
            filled = int(round(width * s.replica_keys / peak)) if peak else 0
            share = 100.0 * s.replica_keys / self.n_keys if self.n_keys else 0.0
            lines.append(
                f"  s{s.server_id:<3d} {'#' * filled:<{width}s} {share:5.1f}%"
            )
        return lines


def ring_report(placement: Placement, n_keys: int = 10_000) -> RingReport:
    """Compute the ownership report over the keyspace ``[0, n_keys)``.

    Key shares are exact over the sampled range (every key is hashed), so
    two runs of the same placement produce identical reports.
    """
    if n_keys <= 0:
        raise ValueError("n_keys must be positive")
    partitions: _t.Dict[int, int] = {s: 0 for s in range(placement.n_servers)}
    primaries: _t.Dict[int, int] = {s: 0 for s in range(placement.n_servers)}
    for p in range(placement.n_partitions):
        group = placement.replicas_of(p)
        primaries[group[0]] += 1
        for s in group:
            partitions[s] += 1
    # Weight partitions by how many sampled keys they own.
    keys_per_partition: _t.Dict[int, int] = {}
    for key in range(n_keys):
        p = placement.partition_of(key)
        keys_per_partition[p] = keys_per_partition.get(p, 0) + 1
    replica_keys: _t.Dict[int, int] = {s: 0 for s in range(placement.n_servers)}
    primary_keys: _t.Dict[int, int] = {s: 0 for s in range(placement.n_servers)}
    for p, count in keys_per_partition.items():
        group = placement.replicas_of(p)
        primary_keys[group[0]] += count
        for s in group:
            replica_keys[s] += count
    return RingReport(
        placement_repr=repr(placement),
        n_keys=n_keys,
        servers=tuple(
            ServerOwnership(
                server_id=s,
                partitions=partitions[s],
                primary_partitions=primaries[s],
                replica_keys=replica_keys[s],
                primary_keys=primary_keys[s],
            )
            for s in range(placement.n_servers)
        ),
    )


def keys_in_partitions(
    placement: Placement, n_keys: int, partitions: _t.Collection[int]
) -> _t.List[int]:
    """Keys in ``[0, n_keys)`` owned by any of the given partitions.

    Used by the hot-shard workload to concentrate popularity on the keys
    one replica group serves, and by ``repro ring --key`` lookups.
    """
    if n_keys <= 0:
        raise ValueError("n_keys must be positive")
    wanted = set(partitions)
    for p in wanted:
        if not (0 <= p < placement.n_partitions):
            raise ValueError(
                f"partition {p} out of range 0..{placement.n_partitions - 1}"
            )
    return [k for k in range(n_keys) if placement.partition_of(k) in wanted]
