"""Replica placement: sharding, consistent hashing, rebalancing.

The placement layer decides *which servers are eligible* to serve each
key: keys hash to partitions, partitions map to replica groups of
``replication_factor`` distinct servers, and every dispatch strategy
(C3, hedging, the BRB realizations) selects among exactly that group --
in the simulation and over live TCP alike.  See ``docs/architecture.md``
for where this layer sits in the stack.

Public surface:

* :class:`Placement` and its rings (:class:`RingPlacement`,
  :class:`ConsistentHashRing`, :class:`ExplicitPlacement`) --
  deterministic key -> replica-set mapping;
* :class:`MutablePlacement` / :func:`placement_delta` -- mid-run
  membership changes and movement accounting (the ``ring-rebalance``
  scenario and ``repro ring --exclude``);
* :func:`ring_report` / :func:`keys_in_partitions` -- ownership
  inspection behind ``repro ring`` and the hot-shard workload.

``repro.cluster.partitioner`` re-exports the ring types for backward
compatibility; new code should import from :mod:`repro.placement`.
"""

from .inspect import (
    RingReport,
    ServerOwnership,
    keys_in_partitions,
    ring_report,
)
from .rebalance import MutablePlacement, PlacementDelta, placement_delta
from .ring import (
    ConsistentHashRing,
    ExplicitPlacement,
    Placement,
    RingPlacement,
    stable_hash,
)

__all__ = [
    "ConsistentHashRing",
    "ExplicitPlacement",
    "MutablePlacement",
    "Placement",
    "PlacementDelta",
    "RingPlacement",
    "RingReport",
    "ServerOwnership",
    "keys_in_partitions",
    "placement_delta",
    "ring_report",
    "stable_hash",
]
