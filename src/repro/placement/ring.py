"""Replica placement rings: key -> partition -> replica set.

This module is the data-placement core of the reproduction (see
``docs/architecture.md``).  The paper's system model is a set of
*flexible* servers, each belonging to R replica groups; a replica group
is the set of servers holding copies of one data partition; R is the
replication factor, and reads use 1-out-of-R.  Every dispatch strategy
(C3, hedging, the BRB realizations) selects a replica among the
*eligible* servers a placement reports for a key -- never among the whole
cluster -- so the placement layer, not the strategy, decides which
servers can possibly absorb a request.

Three placements are provided:

* :class:`RingPlacement` -- the classic token ring: partition ``p`` is
  replicated on servers ``p, p+1, ..., p+R-1 (mod N)``.  With one
  partition per server, every server belongs to exactly R groups, which
  is the paper's model.
* :class:`ConsistentHashRing` -- virtual-node consistent hashing, for
  ablations with many partitions per server, realistic key -> token
  mapping, and minimal-movement rebalancing (see
  :meth:`Placement.without_servers`).
* :class:`ExplicitPlacement` -- hand-pinned keys for worked examples.

All placements are deterministic: the same constructor arguments produce
the same replica sets in every process (``stable_hash`` is SHA-256-based,
never Python's randomized ``hash``).
"""

from __future__ import annotations

import bisect
import hashlib
import typing as _t


def stable_hash(value: _t.Union[int, str], salt: str = "") -> int:
    """Deterministic 64-bit hash, stable across processes and runs.

    Python's built-in ``hash`` is randomized per process for strings and is
    identity-like for small ints; neither is acceptable for reproducible
    placement, so keys are run through SHA-256.
    """
    digest = hashlib.sha256(f"{salt}:{value}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Placement:
    """Interface: key -> partition -> replica servers.

    ``n_servers`` is the size of the server *id space* (ids are
    ``0..n_servers-1``); a placement built over a membership subset (see
    :meth:`without_servers`) keeps the id space but stops mapping
    partitions onto the absent servers.
    """

    n_partitions: int
    n_servers: int
    replication_factor: int

    def partition_of(self, key: int) -> int:  # pragma: no cover - abstract
        """Partition (replica group id) that owns ``key``."""
        raise NotImplementedError

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:  # pragma: no cover
        """Server ids holding ``partition``, primary first."""
        raise NotImplementedError

    # -- derived helpers ----------------------------------------------------
    def replicas_of_key(self, key: int) -> _t.Tuple[int, ...]:
        """The eligible replica set for one key (primary first)."""
        return self.replicas_of(self.partition_of(key))

    def partitions_of_server(self, server_id: int) -> _t.List[int]:
        """Partitions (replica groups) a server belongs to."""
        return [
            p
            for p in range(self.n_partitions)
            if server_id in self.replicas_of(p)
        ]

    def without_servers(self, excluded: _t.Iterable[int]) -> "Placement":
        """A new placement with ``excluded`` servers removed from the ring.

        The key -> partition mapping is unchanged (data does not re-key);
        only the partition -> replica mapping shifts, which is what a
        rebalance after a decommission does.  Subclasses implement the
        movement semantics; consistent hashing guarantees minimal movement
        (only groups that contained an excluded server change).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support membership changes"
        )

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for p in range(self.n_partitions):
            replicas = self.replicas_of(p)
            if len(replicas) != self.replication_factor:
                raise ValueError(
                    f"partition {p} has {len(replicas)} replicas, "
                    f"expected {self.replication_factor}"
                )
            if len(set(replicas)) != len(replicas):
                raise ValueError(f"partition {p} has duplicate replicas {replicas}")
            for s in replicas:
                if not (0 <= s < self.n_servers):
                    raise ValueError(f"partition {p} references bad server {s}")


def _normalize_excluded(
    excluded: _t.Iterable[int], n_servers: int, already: _t.Container[int] = ()
) -> _t.Tuple[int, ...]:
    """Validated, sorted tuple of server ids to remove from a ring."""
    ids = tuple(sorted({int(s) for s in excluded}))
    for s in ids:
        if not (0 <= s < n_servers):
            raise ValueError(f"cannot exclude unknown server {s}")
        if s in already:
            raise ValueError(f"server {s} is already excluded")
    return ids


class ExplicitPlacement(Placement):
    """Hand-specified placement for worked examples and tests.

    Used by the Figure 1 toy reproduction, where the paper pins specific
    keys to specific servers (S1=[A,E], S2=[B,C], S3=[D]).
    """

    def __init__(
        self,
        key_to_partition: _t.Mapping[int, int],
        partition_replicas: _t.Sequence[_t.Sequence[int]],
        n_servers: int,
    ) -> None:
        if not partition_replicas:
            raise ValueError("need at least one partition")
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        sizes = {len(r) for r in partition_replicas}
        if len(sizes) != 1:
            raise ValueError("all partitions must have the same replication factor")
        self._key_to_partition = dict(key_to_partition)
        self._groups = [tuple(r) for r in partition_replicas]
        self.n_partitions = len(self._groups)
        self.n_servers = int(n_servers)
        self.replication_factor = sizes.pop()
        for key, partition in self._key_to_partition.items():
            if not (0 <= partition < self.n_partitions):
                raise ValueError(f"key {key} maps to bad partition {partition}")

    def partition_of(self, key: int) -> int:
        """Look the key up in the pinned map (unknown keys are an error)."""
        try:
            return self._key_to_partition[key]
        except KeyError:
            raise KeyError(f"key {key} has no explicit placement") from None

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        """The pinned replica group of one partition."""
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        return self._groups[partition]

    def __repr__(self) -> str:
        return (
            f"ExplicitPlacement(n_partitions={self.n_partitions}, "
            f"n_servers={self.n_servers})"
        )


class RingPlacement(Placement):
    """Token-ring placement: one token per server, successor replication.

    ``excluded`` removes servers from the ring without renumbering the
    survivors: the successor walk skips excluded ids, so partitions that
    listed an excluded server fall through to the next live successor --
    the mod-N analogue of a node decommission.
    """

    def __init__(
        self,
        n_servers: int,
        replication_factor: int = 3,
        n_partitions: _t.Optional[int] = None,
        salt: str = "ring",
        excluded: _t.Iterable[int] = (),
    ) -> None:
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        self.n_servers = int(n_servers)
        self.excluded = _normalize_excluded(excluded, self.n_servers)
        available = self.n_servers - len(self.excluded)
        if not (1 <= replication_factor <= available):
            raise ValueError(
                f"need 1 <= replication_factor <= {available} live servers, "
                f"got {replication_factor}"
            )
        self.replication_factor = int(replication_factor)
        self.n_partitions = int(n_partitions) if n_partitions else int(n_servers)
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be positive")
        self.salt = salt

    def partition_of(self, key: int) -> int:
        """Hash the key onto one of the ring's partitions."""
        return stable_hash(key, self.salt) % self.n_partitions

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        """The R live successors of the partition's home token."""
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        first = partition % self.n_servers
        replicas: _t.List[int] = []
        for step in range(self.n_servers):
            candidate = (first + step) % self.n_servers
            if candidate in self.excluded:
                continue
            replicas.append(candidate)
            if len(replicas) == self.replication_factor:
                break
        return tuple(replicas)

    def without_servers(self, excluded: _t.Iterable[int]) -> "RingPlacement":
        """The same token ring minus ``excluded`` (successor fall-through)."""
        extra = _normalize_excluded(excluded, self.n_servers, self.excluded)
        return RingPlacement(
            n_servers=self.n_servers,
            replication_factor=self.replication_factor,
            n_partitions=self.n_partitions,
            salt=self.salt,
            excluded=self.excluded + extra,
        )

    def __repr__(self) -> str:
        suffix = f", excluded={list(self.excluded)}" if self.excluded else ""
        return (
            f"RingPlacement(n_servers={self.n_servers}, "
            f"replication_factor={self.replication_factor}, "
            f"n_partitions={self.n_partitions}{suffix})"
        )


class ConsistentHashRing(Placement):
    """Consistent hashing with virtual nodes.

    Each server owns ``vnodes`` points on a 64-bit ring; a partition's
    primary is the owner of the first point clockwise from the partition's
    token, and the R-1 successors (skipping duplicates of the same server)
    complete the replica group.

    Removing a server (``excluded`` / :meth:`without_servers`) removes
    only that server's points, so every replica group that did not contain
    it is provably unchanged -- the minimal-movement property the
    placement property tests pin down.
    """

    def __init__(
        self,
        n_servers: int,
        replication_factor: int = 3,
        n_partitions: int = 64,
        vnodes: int = 16,
        salt: str = "chash",
        excluded: _t.Iterable[int] = (),
    ) -> None:
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if n_partitions < 1:
            raise ValueError("n_partitions must be positive")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.n_servers = int(n_servers)
        self.excluded = _normalize_excluded(excluded, self.n_servers)
        available = self.n_servers - len(self.excluded)
        if not (1 <= replication_factor <= available):
            raise ValueError(
                f"need 1 <= replication_factor <= {available} live servers, "
                f"got {replication_factor}"
            )
        self.replication_factor = int(replication_factor)
        self.n_partitions = int(n_partitions)
        self.vnodes = int(vnodes)
        self.salt = salt

        points: _t.List[_t.Tuple[int, int]] = []
        for server in range(self.n_servers):
            if server in self.excluded:
                continue
            for v in range(self.vnodes):
                points.append((stable_hash(f"{server}:{v}", salt), server))
        points.sort()
        self._tokens = [t for t, _ in points]
        self._owners = [s for _, s in points]
        # Precompute replica groups per partition (queried constantly).
        self._groups: _t.List[_t.Tuple[int, ...]] = [
            self._compute_replicas(p) for p in range(self.n_partitions)
        ]

    def _compute_replicas(self, partition: int) -> _t.Tuple[int, ...]:
        """Walk clockwise from the partition token, collecting R owners."""
        token = stable_hash(f"partition:{partition}", self.salt)
        idx = bisect.bisect_right(self._tokens, token) % len(self._tokens)
        replicas: _t.List[int] = []
        steps = 0
        while len(replicas) < self.replication_factor and steps < len(self._owners):
            owner = self._owners[(idx + steps) % len(self._owners)]
            if owner not in replicas:
                replicas.append(owner)
            steps += 1
        return tuple(replicas)

    def partition_of(self, key: int) -> int:
        """Hash the key onto a partition (membership-independent)."""
        return stable_hash(key, self.salt + ":key") % self.n_partitions

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        """The precomputed replica group of one partition."""
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        return self._groups[partition]

    def without_servers(self, excluded: _t.Iterable[int]) -> "ConsistentHashRing":
        """The same vnode ring minus the excluded servers' points."""
        extra = _normalize_excluded(excluded, self.n_servers, self.excluded)
        return ConsistentHashRing(
            n_servers=self.n_servers,
            replication_factor=self.replication_factor,
            n_partitions=self.n_partitions,
            vnodes=self.vnodes,
            salt=self.salt,
            excluded=self.excluded + extra,
        )

    def __repr__(self) -> str:
        suffix = f", excluded={list(self.excluded)}" if self.excluded else ""
        return (
            f"ConsistentHashRing(n_servers={self.n_servers}, "
            f"replication_factor={self.replication_factor}, "
            f"n_partitions={self.n_partitions}, vnodes={self.vnodes}{suffix})"
        )
