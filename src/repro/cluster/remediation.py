"""SLO-driven self-healing: the remediation driver and its levers.

Mirrors the fault-driver split: :class:`~repro.cluster.faults.FaultInjector`
*causes* trouble on a schedule; :class:`RemediationDriver` *reacts* to it
through the streamed metrics bus.  Both realms wire the same driver -- the
simulation ticks it via ``Environment.call_every``, the live load
generator via a wall-clock process -- so remediation behavior is defined
once, against the :class:`~repro.metrics.bus.BusSnapshot` schema, not per
substrate.

Every lever is client-side in both realms, which is what makes the
single driver possible:

* **ring swap** -- :meth:`~repro.placement.MutablePlacement.exclude` the
  hottest shard so new requests route around it (live workers serve
  whatever they are sent; a decommission is purely a routing change);
* **credit re-tune** -- halve the hot server's rate scale on the
  credits controller (the same knob its congestion backoff uses);
* **hedging boost** -- raise every hedged strategy's duplicate budget so
  stragglers on the slow shard are cut short.

Applied levers are reverted when the breach episode clears (hysteresis
lives in the :class:`~repro.metrics.slo.BreachDetector`).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..metrics.bus import (
    BusEvent,
    BusSampler,
    BusSnapshot,
    MetricsBus,
)
from ..metrics.slo import BreachDetector

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.clock import Clock
    from ..placement import MutablePlacement

#: Modes the config's ``remediation`` field accepts. ``off`` builds no
#: driver at all (zero events added to the run -- goldens unaffected);
#: ``monitor`` streams and detects but never acts, so its breach-window
#: count is the honest unremediated baseline under an identical event
#: load; ``slo`` closes the loop.
REMEDIATION_MODES = ("off", "monitor", "slo")

#: Credit-rate multiplier applied to the hot server on breach.
CREDIT_BACKOFF = 0.5

#: Hedging duplicate-budget multiplier while a breach is open.
HEDGE_BOOST = 3.0

#: A server is "hot" when its windowed-mean backlog is this many
#: times the cluster mean.
HOT_QUEUE_RATIO = 1.5

#: One server holding at least this share of its replica group's backlog
#: is a degraded outlier (exclude it); anything more spread is a hot
#: shard (boost the partition).
OUTLIER_CONCENTRATION = 0.8


@dataclasses.dataclass
class RemediationLevers:
    """The mid-run control surfaces a policy may act on.

    Any of them may be absent (``None``/empty): a strategy without a
    credits controller simply has no credit lever.
    """

    placement: _t.Optional["MutablePlacement"] = None
    #: Credits controller exposing per-server rate ``scales``.
    controller: _t.Optional[_t.Any] = None
    #: Hedged strategies exposing ``budget_fraction``.
    hedged: _t.Sequence[_t.Any] = ()


class SloRemediationPolicy:
    """Breach -> diagnose -> act, clear -> revert.

    The placement action depends on the *shape* of the backlog:

    * **group-wide heat** -- every replica of the hottest partition is at
      or above the cluster-mean queue depth (a popularity hot shard):
      :meth:`~repro.placement.MutablePlacement.boost` the partition with
      the least-loaded outsiders, widening the selection strategies'
      choice set.  Exclusion is *wrong* here: the hot partition would
      keep exactly ``replication_factor`` replicas while the ring loses
      a server's capacity.
    * **single-server outlier** -- one deep queue, shallow siblings (a
      degraded or crashed server): exclude it so new requests route to
      healthy replicas.
    """

    def __init__(self, levers: RemediationLevers) -> None:
        self.levers = levers
        #: Servers this policy currently holds excluded.
        self._excluded: _t.List[int] = []
        #: Partitions this policy currently holds boosted.
        self._boosted: _t.List[int] = []
        #: Hot servers whose credit scale we cut (restored to 1.0 on clear).
        self._scaled: _t.List[int] = []
        #: Saved ``budget_fraction`` per boosted hedged strategy.
        self._hedge_saved: _t.List[_t.Tuple[_t.Any, float]] = []

    @staticmethod
    def hot_server(snapshot: BusSnapshot) -> _t.Optional[int]:
        """The deepest queue, if clearly above the cluster mean."""
        depths = snapshot.queue_depths
        if not depths:
            return None
        mean = sum(depths) / len(depths)
        hottest = max(range(len(depths)), key=lambda i: depths[i])
        if depths[hottest] >= max(HOT_QUEUE_RATIO * mean, 1.0):
            return hottest
        return None

    @staticmethod
    def _hottest_partition(
        depths: _t.Sequence[float], placement: "MutablePlacement"
    ) -> _t.Tuple[int, _t.Tuple[int, ...]]:
        """The partition whose replica group carries the most backlog."""
        best, best_heat = 0, -1.0
        for partition in range(placement.n_partitions):
            replicas = placement.replicas_of(partition)
            heat = sum(depths[s] for s in replicas if s < len(depths))
            if heat > best_heat:
                best, best_heat = partition, heat
        return best, placement.replicas_of(best)

    @staticmethod
    def _spread_targets(
        depths: _t.Sequence[float],
        members: _t.Sequence[int],
        n_extra: int,
    ) -> _t.Tuple[int, ...]:
        """The ``n_extra`` least-loaded servers outside the hot group."""
        outsiders = sorted(
            (s for s in range(len(depths)) if s not in members),
            key=lambda s: (depths[s], s),
        )
        return tuple(outsiders[:n_extra])

    def on_breach(self, snapshot: BusSnapshot) -> _t.List[_t.Dict[str, _t.Any]]:
        """Apply every available lever; returns the actions taken."""
        actions: _t.List[_t.Dict[str, _t.Any]] = []
        depths = snapshot.queue_depths
        placement = self.levers.placement
        hot = self.hot_server(snapshot)
        if (
            hot is not None
            and placement is not None
            and not self._excluded
            and not self._boosted
        ):
            partition, members = self._hottest_partition(depths, placement)
            group_heat = sum(depths[s] for s in members if s < len(depths))
            outlier = (
                hot in members
                and group_heat > 0
                and depths[hot] >= OUTLIER_CONCENTRATION * group_heat
            )
            if not outlier:
                extras = self._spread_targets(depths, members, len(members))
                if extras:
                    placement.boost(partition, extras)
                    self._boosted.append(partition)
                    actions.append(
                        {
                            "action": "boost",
                            "partition": partition,
                            "servers": list(extras),
                        }
                    )
            else:
                try:
                    placement.exclude((hot,))
                except ValueError:
                    pass  # infeasible ring (replication floor): skip
                else:
                    self._excluded.append(hot)
                    actions.append({"action": "exclude", "server": hot})
        controller = self.levers.controller
        if hot is not None and controller is not None:
            scales = getattr(controller, "scales", None)
            if scales is not None and hot in scales and hot not in self._scaled:
                scales[hot] = scales[hot] * CREDIT_BACKOFF
                self._scaled.append(hot)
                actions.append(
                    {"action": "credit_backoff", "server": hot, "scale": scales[hot]}
                )
        if self.levers.hedged and not self._hedge_saved:
            for strategy in self.levers.hedged:
                saved = strategy.budget_fraction
                self._hedge_saved.append((strategy, saved))
                strategy.budget_fraction = min(1.0, saved * HEDGE_BOOST)
            actions.append(
                {"action": "hedge_boost", "strategies": len(self._hedge_saved)}
            )
        return actions

    def on_clear(self, snapshot: BusSnapshot) -> _t.List[_t.Dict[str, _t.Any]]:
        """Revert every lever applied during the episode."""
        del snapshot  # symmetry with on_breach; the revert is stateful
        return self.revert_all()

    def revert_all(self) -> _t.List[_t.Dict[str, _t.Any]]:
        actions: _t.List[_t.Dict[str, _t.Any]] = []
        while self._excluded:
            server = self._excluded.pop()
            self.levers.placement.readmit((server,))
            actions.append({"action": "readmit", "server": server})
        while self._boosted:
            partition = self._boosted.pop()
            self.levers.placement.unboost(partition)
            actions.append({"action": "unboost", "partition": partition})
        while self._scaled:
            server = self._scaled.pop()
            scales = self.levers.controller.scales
            if server in scales:
                scales[server] = 1.0
            actions.append({"action": "credit_restore", "server": server})
        if self._hedge_saved:
            for strategy, saved in self._hedge_saved:
                strategy.budget_fraction = saved
            actions.append(
                {"action": "hedge_restore", "strategies": len(self._hedge_saved)}
            )
            self._hedge_saved.clear()
        return actions


def build_remediation(
    config: _t.Any,
    clock: "Clock",
    placement: _t.Optional["MutablePlacement"],
    shared: _t.Mapping[str, _t.Any],
    strategies: _t.Sequence[_t.Any],
    queue_depths: _t.Callable[[], _t.Sequence[float]],
) -> _t.Optional["RemediationDriver"]:
    """Assemble the driver a config asks for (``None`` when ``off``).

    Called identically by the simulated runner and the live driver:
    ``shared`` is the builder's shared-machinery dict (the credits
    controller lives there), ``strategies`` the per-client dispatch
    strategies (hedged ones become levers), ``queue_depths`` the
    substrate's view of per-server backlog.
    """
    mode = config.remediation
    if mode == "off":
        return None
    from ..baselines.hedging import HedgedStrategy
    from ..metrics.slo import SloPolicy

    detector = None
    policy = None
    if config.slo_p99_ms is not None:
        detector = BreachDetector(SloPolicy(p99_target_ms=config.slo_p99_ms))
    if mode == "slo":
        levers = RemediationLevers(
            placement=placement,
            controller=shared.get("controller"),
            hedged=tuple(
                s for s in strategies if isinstance(s, HedgedStrategy)
            ),
        )
        policy = SloRemediationPolicy(levers)
    return RemediationDriver(
        clock=clock,
        mode=mode,
        sampler=BusSampler(window=config.metrics_window),
        queue_depths=queue_depths,
        detector=detector,
        policy=policy,
        interval=config.metrics_interval,
    )


class RemediationDriver:
    """Ticks the bus, evaluates the SLO, applies/reverts remediation.

    One instance per run, realm-agnostic: the owner arranges for
    :meth:`tick` to run every ``interval`` model seconds (simulation:
    ``env.call_every(interval, driver.tick)``; live:
    ``clock.process(driver.ticker())``) and chains
    :meth:`observe_completion` / :meth:`observe_arrival` into its
    completion callback and feeder.
    """

    def __init__(
        self,
        clock: "Clock",
        mode: str,
        sampler: BusSampler,
        queue_depths: _t.Callable[[], _t.Sequence[float]],
        detector: _t.Optional[BreachDetector] = None,
        policy: _t.Optional[SloRemediationPolicy] = None,
        bus: _t.Optional[MetricsBus] = None,
        interval: float = 0.02,
    ) -> None:
        if mode not in REMEDIATION_MODES or mode == "off":
            raise ValueError(f"remediation mode {mode!r} is not an active mode")
        if mode == "slo" and (detector is None or policy is None):
            raise ValueError("slo mode needs a detector and a policy")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.mode = mode
        self.sampler = sampler
        self.queue_depths = queue_depths
        self.detector = detector
        self.policy = policy
        self.bus = bus if bus is not None else MetricsBus()
        self.interval = interval
        self.actions = 0
        self._seq = 0

    # -- observation hooks (chained into the run's callbacks) ---------------
    def observe_arrival(self) -> None:
        self.sampler.observe_arrival(self.clock.now)

    def observe_completion(self, latency: float) -> None:
        self.sampler.observe_completion(self.clock.now, latency)

    def wrap_on_complete(
        self, inner: _t.Callable[[_t.Any], None]
    ) -> _t.Callable[[_t.Any], None]:
        """Chain completion recording in front of the tracker callback."""

        def chained(completion: _t.Any) -> None:
            self.observe_completion(completion.latency)
            inner(completion)

        return chained

    # -- the tick -----------------------------------------------------------
    def tick(self, _arg: _t.Any = None) -> BusSnapshot:
        now = self.clock.now
        self._seq += 1
        self.sampler.observe_depths(now, self.queue_depths())
        snapshot = self.sampler.snapshot(now, self._seq)
        self.bus.publish(snapshot)
        if self.detector is not None:
            transition = self.detector.observe(snapshot)
            if transition == "breach":
                self.bus.emit(
                    BusEvent(now, "slo-breach", {"p99_ms": snapshot.latency_p99_ms})
                )
                if self.mode == "slo":
                    self._act(self.policy.on_breach(snapshot), now)
            elif transition == "clear":
                self.bus.emit(
                    BusEvent(now, "slo-clear", {"p99_ms": snapshot.latency_p99_ms})
                )
                if self.mode == "slo":
                    self._act(self.policy.on_clear(snapshot), now)
        return snapshot

    def _act(self, actions: _t.Sequence[_t.Mapping[str, _t.Any]], now: float) -> None:
        for action in actions:
            self.actions += 1
            self.bus.emit(BusEvent(now, "remediation", action))

    def ticker(self) -> _t.Generator:
        """Wall-clock drive: a process yielding ``timeout(interval)``."""
        while True:
            yield self.clock.timeout(self.interval)
            self.tick()

    def reset(self) -> None:
        """Revert any still-applied lever (run teardown, mid-episode end)."""
        if self.policy is not None:
            self.policy.revert_all()

    def extras(self) -> _t.Dict[str, float]:
        out: _t.Dict[str, float] = {
            "bus_snapshots": float(self.bus.published),
            "remediation_actions": float(self.actions),
        }
        if self.detector is not None:
            out.update(self.detector.extras())
        return out
