"""Backend servers: multi-core request execution.

Two execution models, matching the paper's two realizations:

* :class:`BackendServer` -- owns a local queue ordered by a pluggable
  discipline (FIFO for task-oblivious baselines, priority for
  BRB-credits).  Requests are pushed to it through the network.
* :class:`PullServer` -- owns no queue; its cores *work-pull* from a single
  global priority store shared by all clients (the paper's ideal "model"
  realization), restricted to requests of partitions the server replicates.

Both use the same service-time model (value-size dependent, calibrated to
the paper's 3500 req/s/core) and piggyback queue feedback on responses for
C3's replica ranking.
"""

from __future__ import annotations

import typing as _t

from ..metrics.counters import MetricRegistry
from ..metrics.timeseries import EwmaEstimator, WindowedRate
from ..sim.engine import Environment
from ..sim.rng import Stream
from ..sim.resources import PriorityFilterStore, PriorityItem, PriorityStore
from ..scheduling.disciplines import Discipline, FifoDiscipline
from ..workload.calibration import ServiceTimeModel
from .addresses import CONTROLLER_ADDRESS, client_address, server_address
from .messages import (
    CongestionSignal,
    RequestMessage,
    ResponseMessage,
    ServerFeedback,
)
from .network import Network

__all__ = [
    "BackendServer",
    "PullServer",
    "CONTROLLER_ADDRESS",
    "client_address",
    "congestion_ratio",
    "server_address",
]


def congestion_ratio(
    offered_rate: float, queue_length: int, capacity: float, interval: float
) -> float:
    """The congestion monitor's overload measure, shared by sim and live.

    Backlog counts as offered work too -- a deep queue with modest
    arrivals is still congestion -- so the queue is converted to a rate
    over the monitoring interval and added to the measured arrival rate.
    """
    backlog_rate = queue_length / interval
    if capacity <= 0:
        return float("inf")
    return (offered_rate + backlog_rate) / capacity


class _ServerBase:
    """Shared machinery: service execution, feedback, instrumentation."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        cores: int,
        service_model: ServiceTimeModel,
        network: Network,
        service_stream: Stream,
        metrics: _t.Optional[MetricRegistry] = None,
        ewma_time_constant: float = 0.1,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.env = env
        self.server_id = int(server_id)
        self.cores = int(cores)
        self.service_model = service_model
        self.network = network
        self.service_stream = service_stream
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.in_service = 0
        self.completed = 0
        self.busy_time = 0.0
        #: Service-time multiplier; >1 while a fault injector degrades us.
        self.speed_factor = 1.0
        #: Crash/restart windows survived so far.
        self.crashes = 0
        #: Open crash windows (overlapping crash faults nest).
        self._pause_depth = 0
        #: Resume event while paused (crashed); ``None`` when healthy.
        self._resume: _t.Optional[_t.Any] = None
        self._ewma_service = EwmaEstimator(ewma_time_constant, initial=0.0)
        #: Arrival-rate tracker for congestion detection (credits strategy).
        self.arrival_rate = WindowedRate(window=0.1)
        # Per-request metric handles, resolved once instead of via an
        # f-string + registry lookup on every enqueue/completion.
        self._completed_counter = self.metrics.counter(
            f"server.{self.server_id}.completed"
        )
        self._enqueued_counter = self.metrics.counter(
            f"server.{self.server_id}.enqueued"
        )
        self._depth_gauge = self.metrics.gauge(
            f"server.{self.server_id}.queue_depth"
        )

    # -- to be provided by subclasses ---------------------------------------
    def queue_length(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- crash/restart ---------------------------------------------------------
    @property
    def paused(self) -> bool:
        """True while a crash fault holds the server down."""
        return self._resume is not None

    def pause(self) -> None:
        """Crash: cores stop starting new requests; queued work survives.

        Requests already in service are allowed to finish (the freeze is
        between requests, not mid-request); everything queued is retained
        and served after :meth:`resume`, so tasks are conserved.
        Overlapping crash windows nest: the server runs again only once
        every window has been resumed.
        """
        self._pause_depth += 1
        self.crashes += 1
        if self._resume is None:
            self._resume = self.env.event()

    def resume(self) -> None:
        """Restart after a crash: cores pick the retained queue back up."""
        if self._pause_depth == 0:
            return
        self._pause_depth -= 1
        if self._pause_depth == 0 and self._resume is not None:
            event = self._resume
            self._resume = None
            event.succeed(None)

    # -- service path ---------------------------------------------------------
    def feedback(self) -> ServerFeedback:
        """Current queue state, piggybacked on responses (C3 input)."""
        return ServerFeedback(
            server_id=self.server_id,
            queue_length=self.queue_length(),
            in_service=self.in_service,
            ewma_service_time=self._ewma_service.value,
        )

    def _serve(self, request: RequestMessage) -> _t.Generator:
        """Execute one request on the calling core and send the response."""
        request.service_start_at = self.env.now
        duration = self.speed_factor * self.service_model.sample_time(
            request.op.value_size, self.service_stream
        )
        yield self.env.timeout(duration)
        request.completed_at = self.env.now
        self.in_service -= 1
        self.completed += 1
        self.busy_time += duration
        self._ewma_service.update(self.env.now, duration)
        self._completed_counter.increment()
        response = ResponseMessage(request=request, feedback=self.feedback())
        self.network.send(
            server_address(self.server_id),
            client_address(request.client_id),
            response,
        )

    @property
    def utilization(self) -> float:
        """Fraction of core-time spent serving so far."""
        if self.env.now <= 0:
            return 0.0
        return self.busy_time / (self.env.now * self.cores)

    def capacity(self) -> float:
        """Estimated requests/second this server sustains (all cores)."""
        mean = self._ewma_service.value
        if mean <= 0:
            # No observations yet: fall back to the calibrated model with a
            # nominal 1 KiB value.
            mean = self.service_model.expected_time(1024)
        return self.cores / mean


class BackendServer(_ServerBase):
    """Queue-owning server (task-oblivious baselines and BRB-credits).

    Requests arrive via the network into a priority store ordered by the
    configured discipline; ``cores`` worker processes drain it.

    When ``congestion_interval`` is set, a monitor process compares the
    offered arrival rate against the server's capacity every interval and
    sends a :class:`CongestionSignal` to the controller when overloaded --
    the signal path the paper's credits strategy requires.
    """

    def __init__(
        self,
        env: Environment,
        server_id: int,
        cores: int,
        service_model: ServiceTimeModel,
        network: Network,
        service_stream: Stream,
        discipline: _t.Optional[Discipline] = None,
        metrics: _t.Optional[MetricRegistry] = None,
        congestion_interval: _t.Optional[float] = None,
        congestion_threshold: float = 1.3,
    ) -> None:
        super().__init__(
            env, server_id, cores, service_model, network, service_stream, metrics
        )
        self.discipline = discipline if discipline is not None else FifoDiscipline()
        self._store = PriorityStore(env)
        self.congestion_interval = congestion_interval
        self.congestion_threshold = congestion_threshold
        self.congestion_signals_sent = 0
        network.register(server_address(self.server_id), self.handle_message)
        for core in range(self.cores):
            env.process(self._core_loop(), name=f"server{self.server_id}.core{core}")
        if congestion_interval is not None:
            if congestion_interval <= 0:
                raise ValueError("congestion_interval must be positive")
            env.process(
                self._congestion_monitor(), name=f"server{self.server_id}.monitor"
            )

    # -- message handling -----------------------------------------------------
    def handle_message(self, message: _t.Any) -> None:
        if not isinstance(message, RequestMessage):
            raise TypeError(f"server got unexpected message {message!r}")
        now = self.env.now
        message.enqueued_at = now
        self.arrival_rate.record(now)
        self._enqueued_counter.increment()
        key = self.discipline.key(message, now)
        self._store.put(PriorityItem(key, message))
        self._depth_gauge.set(len(self._store))

    def queue_length(self) -> int:
        return len(self._store)

    # -- processes --------------------------------------------------------------
    def _core_loop(self) -> _t.Generator:
        while True:
            item = yield self._store.get()
            while self._resume is not None:  # crashed: hold work until restart
                yield self._resume
            request = _t.cast(RequestMessage, _t.cast(PriorityItem, item).item)
            self.in_service += 1
            yield from self._serve(request)

    def _congestion_monitor(self) -> _t.Generator:
        interval = _t.cast(float, self.congestion_interval)
        while True:
            yield self.env.timeout(interval)
            ratio = congestion_ratio(
                self.arrival_rate.rate(self.env.now),
                self.queue_length(),
                self.capacity(),
                interval,
            )
            if ratio > self.congestion_threshold:
                self.congestion_signals_sent += 1
                self.network.send(
                    server_address(self.server_id),
                    CONTROLLER_ADDRESS,
                    CongestionSignal(
                        server_id=self.server_id,
                        time=self.env.now,
                        overload_ratio=ratio,
                    ),
                )


class PullServer(_ServerBase):
    """Work-pulling server for the ideal *model* realization.

    All clients put prioritized requests into one shared
    :class:`PriorityFilterStore`; each core of each server pulls the
    globally smallest-priority request whose partition the server
    replicates.  This is exactly the paper's unrealizable ideal: perfect,
    instantaneous knowledge of the global queue.
    """

    def __init__(
        self,
        env: Environment,
        server_id: int,
        cores: int,
        service_model: ServiceTimeModel,
        network: Network,
        service_stream: Stream,
        global_queue: PriorityFilterStore,
        partitions: _t.Iterable[int],
        metrics: _t.Optional[MetricRegistry] = None,
    ) -> None:
        super().__init__(
            env, server_id, cores, service_model, network, service_stream, metrics
        )
        self.global_queue = global_queue
        self.partitions = frozenset(partitions)
        if not self.partitions:
            raise ValueError(f"server {server_id} replicates no partitions")
        # The model still needs a network address: responses flow back and
        # some tests ping servers directly.
        network.register(server_address(self.server_id), self._reject)
        for core in range(self.cores):
            env.process(self._core_loop(), name=f"pull{self.server_id}.core{core}")

    def _reject(self, message: _t.Any) -> None:
        raise TypeError(
            f"pull-server {self.server_id} does not accept pushed messages"
        )

    def _accepts(self, item: _t.Any) -> bool:
        request = _t.cast(RequestMessage, _t.cast(PriorityItem, item).item)
        return request.partition in self.partitions

    def queue_length(self) -> int:
        # The global queue is shared; report only this server's eligible
        # backlog so the feedback stays meaningful.
        return sum(1 for item in self.global_queue.items if self._accepts(item))

    def _core_loop(self) -> _t.Generator:
        while True:
            item = yield self.global_queue.get(self._accepts)
            while self._resume is not None:  # crashed: hold work until restart
                yield self._resume
            request = _t.cast(RequestMessage, _t.cast(PriorityItem, item).item)
            request.enqueued_at = (
                request.enqueued_at if request.enqueued_at >= 0 else self.env.now
            )
            request.server_id = self.server_id
            self.in_service += 1
            yield from self._serve(request)
