"""Partitioning and replica placement (Cassandra/Riak-style).

The paper's system model: a set of *flexible* servers, each belonging to R
replica groups; a replica group is the set of servers holding copies of one
data partition; R is also the replication factor, and reads use 1-out-of-R.

Two placements are provided:

* :class:`RingPlacement` -- the classic token ring: partition ``p`` is
  replicated on servers ``p, p+1, ..., p+R-1 (mod N)``.  With one partition
  per server, every server belongs to exactly R groups, which is the
  paper's model.
* :class:`ConsistentHashRing` -- virtual-node consistent hashing, for
  ablations with many partitions per server and for realistic key -> token
  mapping.
"""

from __future__ import annotations

import bisect
import hashlib
import typing as _t


def stable_hash(value: _t.Union[int, str], salt: str = "") -> int:
    """Deterministic 64-bit hash, stable across processes and runs.

    Python's built-in ``hash`` is randomized per process for strings and is
    identity-like for small ints; neither is acceptable for reproducible
    placement, so keys are run through SHA-256.
    """
    digest = hashlib.sha256(f"{salt}:{value}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Placement:
    """Interface: key -> partition -> replica servers."""

    n_partitions: int
    n_servers: int
    replication_factor: int

    def partition_of(self, key: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:  # pragma: no cover
        raise NotImplementedError

    # -- derived helpers ----------------------------------------------------
    def replicas_of_key(self, key: int) -> _t.Tuple[int, ...]:
        return self.replicas_of(self.partition_of(key))

    def partitions_of_server(self, server_id: int) -> _t.List[int]:
        """Partitions (replica groups) a server belongs to."""
        return [
            p
            for p in range(self.n_partitions)
            if server_id in self.replicas_of(p)
        ]

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for p in range(self.n_partitions):
            replicas = self.replicas_of(p)
            if len(replicas) != self.replication_factor:
                raise ValueError(
                    f"partition {p} has {len(replicas)} replicas, "
                    f"expected {self.replication_factor}"
                )
            if len(set(replicas)) != len(replicas):
                raise ValueError(f"partition {p} has duplicate replicas {replicas}")
            for s in replicas:
                if not (0 <= s < self.n_servers):
                    raise ValueError(f"partition {p} references bad server {s}")


class ExplicitPlacement(Placement):
    """Hand-specified placement for worked examples and tests.

    Used by the Figure 1 toy reproduction, where the paper pins specific
    keys to specific servers (S1=[A,E], S2=[B,C], S3=[D]).
    """

    def __init__(
        self,
        key_to_partition: _t.Mapping[int, int],
        partition_replicas: _t.Sequence[_t.Sequence[int]],
        n_servers: int,
    ) -> None:
        if not partition_replicas:
            raise ValueError("need at least one partition")
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        sizes = {len(r) for r in partition_replicas}
        if len(sizes) != 1:
            raise ValueError("all partitions must have the same replication factor")
        self._key_to_partition = dict(key_to_partition)
        self._groups = [tuple(r) for r in partition_replicas]
        self.n_partitions = len(self._groups)
        self.n_servers = int(n_servers)
        self.replication_factor = sizes.pop()
        for key, partition in self._key_to_partition.items():
            if not (0 <= partition < self.n_partitions):
                raise ValueError(f"key {key} maps to bad partition {partition}")

    def partition_of(self, key: int) -> int:
        try:
            return self._key_to_partition[key]
        except KeyError:
            raise KeyError(f"key {key} has no explicit placement") from None

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        return self._groups[partition]

    def __repr__(self) -> str:
        return (
            f"ExplicitPlacement(n_partitions={self.n_partitions}, "
            f"n_servers={self.n_servers})"
        )


class RingPlacement(Placement):
    """Token-ring placement: one token per server, successor replication."""

    def __init__(
        self,
        n_servers: int,
        replication_factor: int = 3,
        n_partitions: _t.Optional[int] = None,
        salt: str = "ring",
    ) -> None:
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if not (1 <= replication_factor <= n_servers):
            raise ValueError("need 1 <= replication_factor <= n_servers")
        self.n_servers = int(n_servers)
        self.replication_factor = int(replication_factor)
        self.n_partitions = int(n_partitions) if n_partitions else int(n_servers)
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be positive")
        self.salt = salt

    def partition_of(self, key: int) -> int:
        return stable_hash(key, self.salt) % self.n_partitions

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        first = partition % self.n_servers
        return tuple(
            (first + i) % self.n_servers for i in range(self.replication_factor)
        )

    def __repr__(self) -> str:
        return (
            f"RingPlacement(n_servers={self.n_servers}, "
            f"replication_factor={self.replication_factor}, "
            f"n_partitions={self.n_partitions})"
        )


class ConsistentHashRing(Placement):
    """Consistent hashing with virtual nodes.

    Each server owns ``vnodes`` points on a 64-bit ring; a partition's
    primary is the owner of the first point clockwise from the partition's
    token, and the R-1 successors (skipping duplicates of the same server)
    complete the replica group.
    """

    def __init__(
        self,
        n_servers: int,
        replication_factor: int = 3,
        n_partitions: int = 64,
        vnodes: int = 16,
        salt: str = "chash",
    ) -> None:
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if not (1 <= replication_factor <= n_servers):
            raise ValueError("need 1 <= replication_factor <= n_servers")
        if n_partitions < 1:
            raise ValueError("n_partitions must be positive")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.n_servers = int(n_servers)
        self.replication_factor = int(replication_factor)
        self.n_partitions = int(n_partitions)
        self.vnodes = int(vnodes)
        self.salt = salt

        points: _t.List[_t.Tuple[int, int]] = []
        for server in range(self.n_servers):
            for v in range(self.vnodes):
                points.append((stable_hash(f"{server}:{v}", salt), server))
        points.sort()
        self._tokens = [t for t, _ in points]
        self._owners = [s for _, s in points]
        # Precompute replica groups per partition (queried constantly).
        self._groups: _t.List[_t.Tuple[int, ...]] = [
            self._compute_replicas(p) for p in range(self.n_partitions)
        ]

    def _compute_replicas(self, partition: int) -> _t.Tuple[int, ...]:
        token = stable_hash(f"partition:{partition}", self.salt)
        idx = bisect.bisect_right(self._tokens, token) % len(self._tokens)
        replicas: _t.List[int] = []
        steps = 0
        while len(replicas) < self.replication_factor and steps < len(self._owners):
            owner = self._owners[(idx + steps) % len(self._owners)]
            if owner not in replicas:
                replicas.append(owner)
            steps += 1
        return tuple(replicas)

    def partition_of(self, key: int) -> int:
        return stable_hash(key, self.salt + ":key") % self.n_partitions

    def replicas_of(self, partition: int) -> _t.Tuple[int, ...]:
        if not (0 <= partition < self.n_partitions):
            raise ValueError(f"partition {partition} out of range")
        return self._groups[partition]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(n_servers={self.n_servers}, "
            f"replication_factor={self.replication_factor}, "
            f"n_partitions={self.n_partitions}, vnodes={self.vnodes})"
        )
