"""Backward-compatible re-export of the placement rings.

The partitioning/replica-placement logic grew into its own package,
:mod:`repro.placement` (rings, rebalancing, ownership inspection); this
module remains so that existing imports -- and the historical name the
cluster substrate used -- keep working.  New code should import from
:mod:`repro.placement` directly.
"""

from __future__ import annotations

from ..placement.ring import (
    ConsistentHashRing,
    ExplicitPlacement,
    Placement,
    RingPlacement,
    stable_hash,
)

__all__ = [
    "ConsistentHashRing",
    "ExplicitPlacement",
    "Placement",
    "RingPlacement",
    "stable_hash",
]
