"""Cluster specification: the static shape of the backend tier.

Bundles the knobs of Section 2.2's setup (9 servers, 4 cores each,
replication factor R, 50 us one-way latency) and the derived quantities
the controller and the harness need (per-server capacity, placement).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .network import ConstantLatency, JitteredLatency, LatencyModel, PAPER_ONE_WAY_LATENCY
from .partitioner import ConsistentHashRing, Placement, RingPlacement


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Static description of the backend tier."""

    n_servers: int = 9
    cores_per_server: int = 4
    replication_factor: int = 3
    per_core_rate: float = 3500.0
    one_way_latency: float = PAPER_ONE_WAY_LATENCY
    latency_jitter_sigma: float = 0.0
    #: "ring" (one partition per server) or "chash" (vnode consistent hash).
    placement_kind: str = "ring"
    n_partitions: _t.Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.cores_per_server <= 0:
            raise ValueError("cores_per_server must be positive")
        if not (1 <= self.replication_factor <= self.n_servers):
            raise ValueError("need 1 <= replication_factor <= n_servers")
        if self.per_core_rate <= 0:
            raise ValueError("per_core_rate must be positive")
        if self.one_way_latency < 0:
            raise ValueError("one_way_latency must be non-negative")
        if self.placement_kind not in ("ring", "chash"):
            raise ValueError(f"unknown placement kind {self.placement_kind!r}")

    # -- derived ---------------------------------------------------------------
    def make_placement(self) -> Placement:
        if self.placement_kind == "ring":
            return RingPlacement(
                n_servers=self.n_servers,
                replication_factor=self.replication_factor,
                n_partitions=self.n_partitions,
            )
        return ConsistentHashRing(
            n_servers=self.n_servers,
            replication_factor=self.replication_factor,
            n_partitions=self.n_partitions or 8 * self.n_servers,
        )

    def make_latency_model(self) -> LatencyModel:
        if self.latency_jitter_sigma > 0:
            return JitteredLatency(
                mean=self.one_way_latency, sigma=self.latency_jitter_sigma
            )
        return ConstantLatency(self.one_way_latency)

    def server_capacity(self) -> float:
        """Nominal requests/second one server sustains (all cores)."""
        return self.cores_per_server * self.per_core_rate

    def total_capacity(self) -> float:
        """Nominal requests/second of the whole backend tier."""
        return self.n_servers * self.server_capacity()

    def server_capacities(self) -> _t.Dict[int, float]:
        """Per-server capacity map, as the credits controller wants it."""
        return {s: self.server_capacity() for s in range(self.n_servers)}


#: The exact backend configuration of the paper's evaluation.
PAPER_CLUSTER = ClusterSpec()
