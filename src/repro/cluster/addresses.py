"""Endpoint addresses shared by every transport realization.

Addresses are plain hashable tuples so the simulated
:class:`~repro.cluster.network.Network` and the live TCP/loopback
transports (:mod:`repro.loadgen`) can route the same control-plane
messages without knowing what sits behind an endpoint.
"""

from __future__ import annotations

import typing as _t


def server_address(server_id: int) -> _t.Tuple[str, int]:
    """Network address of a backend server."""
    return ("server", server_id)


def client_address(client_id: int) -> _t.Tuple[str, int]:
    """Network address of a client (application server)."""
    return ("client", client_id)


#: The logically-centralized credits controller.
CONTROLLER_ADDRESS: _t.Tuple[str, int] = ("controller", 0)
