"""Endpoint addresses shared by every transport realization.

Addresses are plain hashable tuples so the simulated
:class:`~repro.cluster.network.Network` and the live TCP/loopback
transports (:mod:`repro.loadgen`) can route the same control-plane
messages without knowing what sits behind an endpoint.
"""

from __future__ import annotations

import typing as _t


def server_address(server_id: int) -> _t.Tuple[str, int]:
    """Network address of a backend server."""
    return ("server", server_id)


def client_address(client_id: int) -> _t.Tuple[str, int]:
    """Network address of a client (application server)."""
    return ("client", client_id)


#: The logically-centralized credits controller.
CONTROLLER_ADDRESS: _t.Tuple[str, int] = ("controller", 0)


def worker_groups(n_servers: int, procs: int) -> _t.List[_t.List[int]]:
    """Partition ``n_servers`` worker ids into ``procs`` contiguous groups.

    The multi-process supervisor gives each process one group; sizes
    differ by at most one (the first ``n_servers % procs`` groups take
    the extra worker).  ``procs`` beyond ``n_servers`` is an error -- an
    empty server process could never answer an op.
    """
    if procs <= 0:
        raise ValueError("procs must be positive")
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    if procs > n_servers:
        raise ValueError(
            f"cannot split {n_servers} workers across {procs} processes"
        )
    base, extra = divmod(n_servers, procs)
    groups: _t.List[_t.List[int]] = []
    start = 0
    for index in range(procs):
        size = base + (1 if index < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def derive_endpoints(
    host: str, base_port: int, procs: int
) -> _t.List[_t.Tuple[str, int]]:
    """The TCP endpoints of a ``procs``-process cluster at ``base_port``.

    Process ``i`` listens on ``base_port + i``; with ``base_port`` 0
    every process picks an ephemeral port (the supervisor reports the
    real ones).
    """
    if procs <= 0:
        raise ValueError("procs must be positive")
    if base_port == 0:
        return [(host, 0)] * procs
    return [(host, base_port + i) for i in range(procs)]
