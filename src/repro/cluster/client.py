"""Clients (application servers): task intake, dispatch and accounting.

A :class:`Client` receives whole tasks, hands them to its
:class:`DispatchStrategy` (which encodes the scheduling approach under
test: task-oblivious + C3, BRB-credits, BRB-model, ...), and records the
task latency when the last response arrives.  The strategy decides *where*
each request goes (replica selection), *what priority* it carries and
*when* it leaves the client (credit gating); the client owns the
bookkeeping that is common to all strategies.

The client is substrate-agnostic: it depends only on the
:class:`~repro.core.clock.Clock` / :class:`~repro.core.clock.Transport`
seam, so the same object dispatches simulated requests over the modelled
network and real requests over the live subsystem's TCP transport
(:mod:`repro.loadgen`).
"""

from __future__ import annotations

import typing as _t

from ..metrics.counters import MetricRegistry
from ..workload.tasks import Task
from .addresses import client_address
from .messages import RequestMessage, ResponseMessage, TaskCompletion

if _t.TYPE_CHECKING:  # pragma: no cover - the seam is structural
    # Imported lazily to keep `repro.cluster` importable before
    # `repro.core` finishes initializing (core's strategies import this
    # module back); at runtime the seam is duck-typed anyway.
    from ..core.clock import Clock, Transport


class DispatchStrategy:
    """Per-client strategy hook.

    ``prepare`` turns a task into request messages (choosing servers and
    priorities); ``dispatch`` moves them toward the backend (possibly
    delayed by gating); ``on_response`` feeds back completions (C3 state,
    outstanding-bytes tracking, credit accounting).
    """

    #: Human-readable strategy name (used in reports).
    name: str = "abstract"

    def bind(self, client: "Client") -> None:
        """Attach the per-client context (called once by the client)."""
        self.client = client

    def prepare(self, task: Task) -> _t.List[RequestMessage]:
        raise NotImplementedError  # pragma: no cover - abstract

    def dispatch(self, requests: _t.Sequence[RequestMessage]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def on_response(self, response: ResponseMessage) -> None:
        """Default: no feedback needed."""


class TaskRecorder(_t.Protocol):  # pragma: no cover - typing helper
    """Anything that can absorb task completions (histograms, lists...)."""

    def record(self, value: float) -> None: ...


class Client:
    """An application server issuing batched reads to the data store."""

    def __init__(
        self,
        env: "Clock",
        client_id: int,
        network: "Transport",
        strategy: DispatchStrategy,
        task_recorder: _t.Optional[TaskRecorder] = None,
        request_recorder: _t.Optional[TaskRecorder] = None,
        metrics: _t.Optional[MetricRegistry] = None,
        on_complete: _t.Optional[_t.Callable[[TaskCompletion], None]] = None,
        request_observer: _t.Optional[_t.Callable[[RequestMessage], None]] = None,
    ) -> None:
        self.env = env
        self.client_id = int(client_id)
        self.network = network
        self.strategy = strategy
        self.task_recorder = task_recorder
        self.request_recorder = request_recorder
        self.on_complete = on_complete
        self.request_observer = request_observer
        self.metrics = metrics if metrics is not None else MetricRegistry()
        #: task_id -> (task, remaining responses)
        self._pending: _t.Dict[int, _t.Tuple[Task, int]] = {}
        #: Completions observed (kept lightweight; full latency lists live
        #: in the recorders).
        self.tasks_completed = 0
        self.tasks_submitted = 0
        self.completions: _t.List[TaskCompletion] = []
        self.keep_completions = False
        # Metric handles resolved once; the registry memoizes by name, but
        # the f-string + dict lookup per task was measurable on the hot path.
        self._tasks_counter = self.metrics.counter(f"client.{self.client_id}.tasks")
        self._completed_counter = self.metrics.counter(
            f"client.{self.client_id}.completed"
        )
        network.register(client_address(self.client_id), self.handle_message)
        strategy.bind(self)

    # -- intake ---------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Accept a task at its arrival time and set its requests moving."""
        if task.task_id in self._pending:
            raise ValueError(f"task {task.task_id} already pending")
        requests = self.strategy.prepare(task)
        if len(requests) != task.fanout:
            raise RuntimeError(
                f"strategy {self.strategy.name!r} prepared {len(requests)} "
                f"requests for a fan-out-{task.fanout} task"
            )
        for request in requests:
            request.created_at = self.env.now
        self._pending[task.task_id] = (task, len(requests))
        self.tasks_submitted += 1
        self._tasks_counter.increment()
        self.strategy.dispatch(requests)

    # -- responses ---------------------------------------------------------------
    def handle_message(self, message: _t.Any) -> None:
        if isinstance(message, ResponseMessage):
            self._handle_response(message)
        else:
            # Credit grants and other control messages are routed to the
            # strategy, which knows what to do with them.
            handler = getattr(self.strategy, "on_control", None)
            if handler is None:
                raise TypeError(
                    f"client {self.client_id} got unexpected message {message!r}"
                )
            handler(message)

    def _handle_response(self, response: ResponseMessage) -> None:
        request = response.request
        # Strategies that duplicate requests (hedging) veto straggler
        # responses so the per-task completion count stays exact.
        accepts = getattr(self.strategy, "accepts_response", None)
        if accepts is not None and not accepts(response):
            return
        self.strategy.on_response(response)
        if self.request_recorder is not None:
            # Request latency as the client sees it: creation to response
            # arrival (both network directions + queueing + service).
            self.request_recorder.record(self.env.now - request.created_at)
        if self.request_observer is not None:
            self.request_observer(request)
        entry = self._pending.get(request.task_id)
        if entry is None:
            raise RuntimeError(
                f"client {self.client_id} got response for unknown task "
                f"{request.task_id}"
            )
        task, remaining = entry
        remaining -= 1
        if remaining > 0:
            self._pending[request.task_id] = (task, remaining)
            return
        del self._pending[request.task_id]
        self.tasks_completed += 1
        completion = TaskCompletion(task=task, completed_at=self.env.now)
        if self.task_recorder is not None:
            self.task_recorder.record(completion.latency)
        if self.on_complete is not None:
            self.on_complete(completion)
        if self.keep_completions:
            self.completions.append(completion)
        self._completed_counter.increment()

    @property
    def pending_tasks(self) -> int:
        return len(self._pending)
