"""Cluster substrate: servers, clients, network, partitioning, messages."""

from .client import Client, DispatchStrategy
from .faults import (
    CrashFault,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FlashCrowdFault,
    NO_FAULTS,
    NetworkJitterFault,
    RebalanceFault,
    SlowdownFault,
    SlowdownInjector,
)
from .messages import (
    CongestionSignal,
    CreditGrant,
    DemandReport,
    RequestMessage,
    ResponseMessage,
    ServerFeedback,
    TaskCompletion,
)
from .network import (
    ConstantLatency,
    JitteredLatency,
    LatencyModel,
    Network,
    PAPER_ONE_WAY_LATENCY,
)
from .partitioner import (
    ConsistentHashRing,
    Placement,
    RingPlacement,
    stable_hash,
)
from .server import (
    BackendServer,
    CONTROLLER_ADDRESS,
    PullServer,
    client_address,
    server_address,
)
from .topology import ClusterSpec, PAPER_CLUSTER

__all__ = [
    "BackendServer",
    "CONTROLLER_ADDRESS",
    "Client",
    "ClusterSpec",
    "CongestionSignal",
    "ConsistentHashRing",
    "ConstantLatency",
    "CrashFault",
    "CreditGrant",
    "DemandReport",
    "DispatchStrategy",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlashCrowdFault",
    "JitteredLatency",
    "LatencyModel",
    "NO_FAULTS",
    "Network",
    "NetworkJitterFault",
    "PAPER_CLUSTER",
    "PAPER_ONE_WAY_LATENCY",
    "Placement",
    "PullServer",
    "RebalanceFault",
    "RequestMessage",
    "ResponseMessage",
    "RingPlacement",
    "ServerFeedback",
    "SlowdownFault",
    "SlowdownInjector",
    "TaskCompletion",
    "client_address",
    "server_address",
    "stable_hash",
]
