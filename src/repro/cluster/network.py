"""Network model: one-way delays between any two endpoints.

The paper sets "our one-way network latency to 50 us"; the default model is
that constant.  A jittered model is provided for sensitivity ablations.
Delivery preserves per-(src, dst) FIFO ordering even under jitter, matching
TCP semantics between a client/server pair -- the credits protocol relies
on grants not overtaking each other.
"""

from __future__ import annotations

import typing as _t

from ..metrics.counters import MetricRegistry
from ..sim.engine import Environment
from ..sim.rng import Stream

#: The paper's one-way latency.
PAPER_ONE_WAY_LATENCY = 50e-6


class LatencyModel:
    """Interface: ``sample(stream) -> float`` one-way delay in seconds."""

    def sample(self, stream: Stream) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay (the paper's 50 us by default)."""

    def __init__(self, delay: float = PAPER_ONE_WAY_LATENCY) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = float(delay)

    def sample(self, stream: Stream) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class JitteredLatency(LatencyModel):
    """Log-normal delay with a hard floor (switching + propagation)."""

    def __init__(
        self,
        mean: float = PAPER_ONE_WAY_LATENCY,
        sigma: float = 0.3,
        floor: float = 10e-6,
    ) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if floor < 0 or floor > mean:
            raise ValueError("need 0 <= floor <= mean")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, stream: Stream) -> float:
        return max(self.floor, stream.lognormal_mean(self._mean, self.sigma))

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"JitteredLatency(mean={self._mean}, sigma={self.sigma})"


Handler = _t.Callable[[_t.Any], None]


class Network:
    """Delivers messages to handler callables after a sampled delay.

    Endpoints register under a hashable address; :meth:`send` schedules
    ``handler(message)`` one sampled delay in the future.  FIFO ordering per
    (src, dst) pair is enforced by never letting a later message get a
    smaller absolute delivery time than an earlier one on the same pair.
    """

    def __init__(
        self,
        env: Environment,
        latency: _t.Optional[LatencyModel] = None,
        stream: _t.Optional[Stream] = None,
        metrics: _t.Optional[MetricRegistry] = None,
    ) -> None:
        self.env = env
        self.latency = latency if latency is not None else ConstantLatency()
        self.stream = stream if stream is not None else Stream(0, "network")
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._handlers: _t.Dict[_t.Hashable, Handler] = {}
        self._last_delivery: _t.Dict[_t.Tuple[_t.Hashable, _t.Hashable], float] = {}
        # Resolved once: send() runs per message, the name lookup doesn't.
        self._messages_counter = self.metrics.counter("network.messages")

    def register(self, address: _t.Hashable, handler: Handler) -> None:
        """Bind ``handler`` to ``address`` (one handler per address)."""
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def send(
        self, src: _t.Hashable, dst: _t.Hashable, message: _t.Any
    ) -> float:
        """Send ``message`` from ``src`` to ``dst``; returns delivery time."""
        handler = self._handlers.get(dst)
        if handler is None:
            raise KeyError(f"no handler registered for {dst!r}")
        delay = self.latency.sample(self.stream)
        deliver_at = self.env.now + delay
        pair = (src, dst)
        floor = self._last_delivery.get(pair)
        if floor is not None and deliver_at < floor:
            deliver_at = floor  # FIFO per pair
        self._last_delivery[pair] = deliver_at
        self._messages_counter.increment()
        # Fast path: a bare-callback calendar entry instead of a Timeout
        # event plus a closure -- delivery is fire-and-forget, nothing
        # yields on it.  Occupies the same (time, priority, sequence)
        # calendar slot the Timeout did, so delivery order (and the FIFO
        # floor above) is byte-identical to the event-based path; a
        # latency model buggy enough to put deliver_at in the past is
        # rejected by call_at exactly as the Timeout would have been.
        self.env.call_at(deliver_at, handler, message)
        return deliver_at

    def broadcast(
        self, src: _t.Hashable, dsts: _t.Iterable[_t.Hashable], message: _t.Any
    ) -> None:
        """Send the same message to several destinations."""
        for dst in dsts:
            self.send(src, dst, message)
