"""Wire messages exchanged between clients, servers and the controller.

A :class:`RequestMessage` is the unit the servers schedule.  It carries the
BRB priority (assigned client-side), the client's service-time forecast and
a timestamp trail that the metrics layer and the tests use to audit the
request life-cycle (created -> dispatched -> enqueued -> service start ->
completed).

All message types are ``__slots__``-based dataclasses (on Python >= 3.10;
see :mod:`repro._compat`): one :class:`RequestMessage` is allocated per
simulated request, and dropping the per-instance ``__dict__`` both shrinks
the hot working set and speeds up the timestamp-field writes on the
service path.
"""

from __future__ import annotations

import typing as _t

from .._compat import slots_dataclass
from ..workload.tasks import Operation, Task


@slots_dataclass()
class RequestMessage:
    """One key read in flight.

    ``priority`` is a totally ordered tuple; *smaller sorts first*.  The
    scheduling disciplines and the BRB priority assigners only ever produce
    tuples of floats/ints, so comparisons never fail at runtime.
    """

    op: Operation
    task_id: int
    client_id: int
    #: Replica group / partition this operation belongs to.
    partition: int
    #: Server chosen to serve the request (set by replica selection).
    server_id: int = -1
    #: Scheduling priority (smaller = served earlier).
    priority: _t.Tuple[float, ...] = (0.0,)
    #: Client-side forecast of the service time (the request's "cost").
    expected_service: float = 0.0
    #: Cost of the bottleneck sub-task of the enclosing task.
    bottleneck_cost: float = 0.0
    #: True for speculative duplicates issued by the hedging strategy.
    hedge: bool = False

    # -- life-cycle timestamps (virtual time; -1 = not yet) -----------------
    created_at: float = -1.0
    dispatched_at: float = -1.0
    enqueued_at: float = -1.0
    service_start_at: float = -1.0
    completed_at: float = -1.0

    @property
    def queue_wait(self) -> float:
        """Time spent in the server queue (valid once service started)."""
        if self.service_start_at < 0 or self.enqueued_at < 0:
            raise ValueError("request has not started service yet")
        return self.service_start_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Actual service duration (valid once completed)."""
        if self.completed_at < 0 or self.service_start_at < 0:
            raise ValueError("request has not completed yet")
        return self.completed_at - self.service_start_at

    @property
    def client_latency(self) -> float:
        """Created-to-completed latency as the client observes it.

        Includes both network directions; valid once the response arrived
        (the response delivery sets ``completed_at`` to service completion,
        the client adds the return network delay when recording).
        """
        if self.completed_at < 0:
            raise ValueError("request has not completed yet")
        return self.completed_at - self.created_at


@slots_dataclass(frozen=True)
class ServerFeedback:
    """Server state piggybacked on every response (C3-style feedback)."""

    server_id: int
    #: Requests queued (not yet in service) when the response left.
    queue_length: int
    #: Requests currently in service.
    in_service: int
    #: Server-measured EWMA of recent service times.
    ewma_service_time: float


@slots_dataclass(frozen=True)
class ResponseMessage:
    """Completion notice flowing server -> client."""

    request: RequestMessage
    feedback: ServerFeedback


@slots_dataclass(frozen=True)
class DemandReport:
    """Client -> controller: demand per server since the last report."""

    client_id: int
    time: float
    #: server_id -> requests the client wants to send there.
    demand: _t.Mapping[int, float]


@slots_dataclass(frozen=True)
class CreditGrant:
    """Controller -> client: credits per server for the next epoch."""

    client_id: int
    epoch: int
    #: server_id -> number of requests the client may dispatch.
    credits: _t.Mapping[int, float]


@slots_dataclass(frozen=True)
class CongestionSignal:
    """Server -> controller: demand exceeded capacity this epoch."""

    server_id: int
    time: float
    #: Ratio of offered load to capacity observed by the server (>= 1).
    overload_ratio: float


@slots_dataclass(frozen=True)
class TaskCompletion:
    """Internal record emitted when the last response of a task arrives."""

    task: Task
    completed_at: float

    @property
    def latency(self) -> float:
        return self.completed_at - self.task.arrival_time
