"""Fault injection: scripted schedules of typed fault events.

Tail-latency papers live and die by stragglers, so the substrate can make
them on demand.  The original substrate offered a single
:class:`SlowdownInjector` (kept, unchanged, for direct use); experiments
now describe faults declaratively as a :class:`FaultSchedule` -- an ordered
script of typed, frozen fault events that may overlap and target several
servers at once:

* :class:`SlowdownFault` -- multiply the service times of one or more
  servers for a window (GC pause, background compaction, noisy neighbour).
  Overlapping slowdowns compose multiplicatively.
* :class:`CrashFault` -- pause one or more servers for a window: their
  cores stop starting new requests; queued work is retained and resumes on
  restart, so no tasks are lost (a process freeze / VM stall, not a disk
  wipe).  In-flight service at the instant of the crash is allowed to
  finish -- the approximation errs toward optimism by at most one request
  per core.
* :class:`NetworkJitterFault` -- degrade the whole network's one-way
  latency (mean multiplied, log-normal jitter) for a window.  Overlapping
  windows: the most recent onset wins; the base model returns when the
  last window closes.
* :class:`FlashCrowdFault` -- multiply the client arrival rate for a
  window (load step / flash crowd).  Overlapping crowds compose
  multiplicatively.  The runner's feeder consults
  :meth:`FaultInjector.arrival_scale` to compress inter-arrival gaps.
* :class:`RebalanceFault` -- decommission one or more servers from the
  placement ring for a window: their partitions re-home onto the
  surviving replicas (consistent hashing moves only the affected groups)
  and newly-prepared requests route around them; the servers rejoin when
  the window closes.  Requires a
  :class:`~repro.placement.MutablePlacement` (the runner and the live
  driver wrap the config's placement in one).  Overlapping rebalances
  compose: each window's exclusions stack on the base ring.

Every event supports a delayed ``start``, a ``duration`` (``inf`` makes the
condition permanent -- heterogeneous clusters) and an optional ``period``
for recurring windows.  A :class:`FaultInjector` executes a schedule
against live servers and the network.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from ..sim.engine import Environment
from .network import JitteredLatency, Network

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..placement import MutablePlacement
    from .server import _ServerBase


def _validate_window(
    start: float, duration: float, period: _t.Optional[float]
) -> None:
    if start < 0:
        raise ValueError("start must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if period is not None:
        if math.isinf(duration):
            raise ValueError("a permanent fault cannot recur")
        if period <= duration:
            raise ValueError("period must exceed duration")


def _as_server_tuple(servers: _t.Union[int, _t.Iterable[int]]) -> _t.Tuple[int, ...]:
    if isinstance(servers, int):
        return (servers,)
    return tuple(int(s) for s in servers)


@dataclasses.dataclass(frozen=True)
class SlowdownFault:
    """Multiply service times of ``servers`` by ``factor`` for a window."""

    kind: _t.ClassVar[str] = "slowdown"

    servers: _t.Tuple[int, ...] = (0,)
    factor: float = 3.0
    start: float = 0.0
    duration: float = 0.5
    period: _t.Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers", _as_server_tuple(self.servers))
        if not self.servers:
            raise ValueError("slowdown fault targets no servers")
        if self.factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1")
        _validate_window(self.start, self.duration, self.period)

    def describe(self) -> str:
        return (
            f"slowdown x{self.factor:g} on servers {list(self.servers)} "
            f"@{self.start:g}s for {self.duration:g}s"
            + (f" every {self.period:g}s" if self.period is not None else "")
        )


@dataclasses.dataclass(frozen=True)
class CrashFault:
    """Pause ``servers`` for a window; queued work survives the restart."""

    kind: _t.ClassVar[str] = "crash"

    servers: _t.Tuple[int, ...] = (0,)
    start: float = 0.0
    duration: float = 0.1
    period: _t.Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers", _as_server_tuple(self.servers))
        if not self.servers:
            raise ValueError("crash fault targets no servers")
        if math.isinf(self.duration):
            raise ValueError("a crash must restart (finite duration)")
        _validate_window(self.start, self.duration, self.period)

    def describe(self) -> str:
        return (
            f"crash/restart of servers {list(self.servers)} "
            f"@{self.start:g}s down for {self.duration:g}s"
            + (f" every {self.period:g}s" if self.period is not None else "")
        )


@dataclasses.dataclass(frozen=True)
class NetworkJitterFault:
    """Degrade the network: mean one-way latency x ``factor``, jittered."""

    kind: _t.ClassVar[str] = "network-jitter"

    factor: float = 4.0
    sigma: float = 0.3
    start: float = 0.0
    duration: float = 0.2
    period: _t.Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("jitter factor must exceed 1")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if math.isinf(self.duration):
            raise ValueError("permanent jitter belongs in the cluster spec")
        _validate_window(self.start, self.duration, self.period)

    def describe(self) -> str:
        return (
            f"network latency x{self.factor:g} (sigma={self.sigma:g}) "
            f"@{self.start:g}s for {self.duration:g}s"
            + (f" every {self.period:g}s" if self.period is not None else "")
        )


@dataclasses.dataclass(frozen=True)
class FlashCrowdFault:
    """Multiply the task arrival rate by ``multiplier`` for a window."""

    kind: _t.ClassVar[str] = "flash-crowd"

    multiplier: float = 2.0
    start: float = 0.0
    duration: float = 0.3
    period: _t.Optional[float] = None

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ValueError("flash-crowd multiplier must exceed 1")
        if math.isinf(self.duration):
            raise ValueError("a permanent load change belongs in the config")
        _validate_window(self.start, self.duration, self.period)

    def describe(self) -> str:
        return (
            f"flash crowd x{self.multiplier:g} arrivals "
            f"@{self.start:g}s for {self.duration:g}s"
            + (f" every {self.period:g}s" if self.period is not None else "")
        )


@dataclasses.dataclass(frozen=True)
class RebalanceFault:
    """Remove ``servers`` from the placement ring for a window.

    Models a rolling decommission / maintenance drain: the targeted
    servers stop being *eligible* replicas (requests prepared during the
    window route to the surviving members of each affected group), then
    rejoin when the window closes.  An infinite ``duration`` models a
    permanent scale-in.  The servers themselves keep running -- requests
    already addressed to them complete normally, exactly like a drained
    node finishing its queue.
    """

    kind: _t.ClassVar[str] = "rebalance"

    servers: _t.Tuple[int, ...] = (0,)
    start: float = 0.0
    duration: float = 0.2
    period: _t.Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers", _as_server_tuple(self.servers))
        if not self.servers:
            raise ValueError("rebalance fault targets no servers")
        if len(set(self.servers)) != len(self.servers):
            raise ValueError("rebalance fault lists a server twice")
        _validate_window(self.start, self.duration, self.period)

    def describe(self) -> str:
        return (
            f"ring rebalance: decommission servers {list(self.servers)} "
            f"@{self.start:g}s for {self.duration:g}s"
            + (f" every {self.period:g}s" if self.period is not None else "")
        )


#: Any scriptable fault event.
FaultEvent = _t.Union[
    SlowdownFault, CrashFault, NetworkJitterFault, FlashCrowdFault, RebalanceFault
]


def fault_to_dict(event: FaultEvent) -> _t.Dict[str, _t.Any]:
    """JSON-friendly form of one fault event (``repro scenarios --json``).

    ``kind`` plus the event's own fields; infinite durations become the
    string ``"inf"`` so the output stays valid JSON.
    """
    out: _t.Dict[str, _t.Any] = {"kind": event.kind}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, float) and math.isinf(value):
            value = "inf"
        elif isinstance(value, tuple):
            value = list(value)
        out[field.name] = value
    return out

_EVENT_TYPES: _t.Tuple[type, ...] = (
    SlowdownFault,
    CrashFault,
    NetworkJitterFault,
    FlashCrowdFault,
    RebalanceFault,
)


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable script of fault events (may overlap)."""

    events: _t.Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise TypeError(f"not a fault event: {event!r}")

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    def validate_targets(self, n_servers: int) -> None:
        """Raise if any event targets a server id outside [0, n_servers)."""
        for event in self.events:
            for server_id in getattr(event, "servers", ()):
                if not (0 <= server_id < n_servers):
                    raise ValueError(
                        f"fault {event.describe()!r} targets server "
                        f"{server_id}, valid ids are 0..{n_servers - 1}"
                    )

    def describe(self) -> _t.List[str]:
        return [event.describe() for event in self.events]

    def to_dicts(self) -> _t.List[_t.Dict[str, _t.Any]]:
        """JSON-friendly form of the whole script, in schedule order."""
        return [fault_to_dict(event) for event in self.events]


#: The empty schedule (module-level singleton for defaults).
NO_FAULTS = FaultSchedule()


def validate_rebalance_feasibility(
    schedule: FaultSchedule, placement: _t.Optional["MutablePlacement"]
) -> None:
    """Fail fast on rebalance scripts that cannot execute.

    Checked at injector construction (sim and live) so a bad schedule
    rejects before the run instead of crashing mid-window: every
    rebalance event needs a mutable placement, and each event must leave
    at least ``replication_factor`` live servers on its own.  Windows
    that *overlap* can still jointly exceed that bound; the mid-run
    exclusion then raises the same replication-factor error at the
    offending window's onset.
    """
    for event in schedule.events:
        if not isinstance(event, RebalanceFault):
            continue
        if placement is None:
            raise ValueError(
                "rebalance faults need a MutablePlacement to re-home"
            )
        live = placement.n_servers - len(event.servers)
        if live < placement.replication_factor:
            raise ValueError(
                f"infeasible {event.describe()!r}: it would leave {live} "
                f"live server(s), fewer than replication_factor "
                f"{placement.replication_factor}"
            )


def drive_fault_windows(
    clock: _t.Any,
    event: FaultEvent,
    apply: _t.Callable[[FaultEvent], None],
    revert: _t.Callable[[FaultEvent], None],
    on_window: _t.Callable[[FaultEvent], None],
) -> _t.Generator:
    """The window script one fault event follows, substrate-agnostic.

    Delayed start, apply, (possibly infinite) hold, revert, optional
    recurrence -- shared by the simulated :class:`FaultInjector` and the
    live :class:`~repro.loadgen.LiveFaultDriver`, so sim and live windows
    can never drift apart.  ``clock`` is anything with ``timeout``
    (the :class:`~repro.core.clock.Clock` seam).
    """
    if event.start > 0:
        yield clock.timeout(event.start)
    while True:
        apply(event)
        on_window(event)
        if math.isinf(event.duration):
            return  # permanent condition, never reverted
        yield clock.timeout(event.duration)
        revert(event)
        if event.period is None:
            return
        yield clock.timeout(event.period - event.duration)


def windows_extras(windows: _t.Mapping[str, int]) -> _t.Dict[str, float]:
    """Audit counters, keyed ``<kind>_windows`` (dashes -> underscores)."""
    return {
        f"{kind.replace('-', '_')}_windows": float(count)
        for kind, count in sorted(windows.items())
    }


class FaultInjector:
    """Executes a :class:`FaultSchedule` against live servers and network.

    One simulation process per event drives its (possibly recurring)
    windows.  Exposes ``windows`` counters per fault kind for the runner's
    audit extras and :meth:`arrival_scale` for the workload feeder.
    """

    def __init__(
        self,
        env: Environment,
        schedule: FaultSchedule,
        servers: _t.Sequence["_ServerBase"],
        network: _t.Optional[Network] = None,
        placement: _t.Optional["MutablePlacement"] = None,
    ) -> None:
        schedule.validate_targets(len(servers))
        if network is None and any(
            isinstance(event, NetworkJitterFault) for event in schedule.events
        ):
            raise ValueError("network-jitter faults need a network to degrade")
        validate_rebalance_feasibility(schedule, placement)
        self.env = env
        self.schedule = schedule
        self.servers = list(servers)
        self.network = network
        self.placement = placement
        #: Windows opened so far, per fault kind present in the schedule
        #: (kinds appear with count 0 until their first window opens).
        self.windows: _t.Dict[str, int] = {
            event.kind: 0 for event in schedule.events
        }
        self._crowd_scale = 1.0
        self._jitter_depth = 0
        self._base_latency = network.latency if network is not None else None
        for index, event in enumerate(schedule.events):
            env.process(
                self._drive(event),
                name=f"fault.{event.kind}.{index}",
            )

    # -- feeder hook ----------------------------------------------------------
    def arrival_scale(self) -> float:
        """Current arrival-rate multiplier (product of active crowds)."""
        return self._crowd_scale

    # -- window machinery -------------------------------------------------------
    def _drive(self, event: FaultEvent) -> _t.Generator:
        return drive_fault_windows(
            self.env, event, self._apply, self._revert, self._count_window
        )

    def _count_window(self, event: FaultEvent) -> None:
        self.windows[event.kind] = self.windows.get(event.kind, 0) + 1

    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, SlowdownFault):
            for server_id in event.servers:
                self.servers[server_id].speed_factor *= event.factor
        elif isinstance(event, CrashFault):
            for server_id in event.servers:
                self.servers[server_id].pause()
        elif isinstance(event, NetworkJitterFault):
            assert self.network is not None  # enforced at construction
            self._jitter_depth += 1
            assert self._base_latency is not None
            # Ideal zero-latency rigs still get *some* degraded latency.
            mean = max(self._base_latency.mean() * event.factor, 1e-6)
            self.network.latency = JitteredLatency(
                mean=mean, sigma=event.sigma, floor=min(10e-6, mean)
            )
        elif isinstance(event, FlashCrowdFault):
            self._crowd_scale *= event.multiplier
        elif isinstance(event, RebalanceFault):
            assert self.placement is not None  # enforced at construction
            self.placement.exclude(event.servers)

    def _revert(self, event: FaultEvent) -> None:
        if isinstance(event, SlowdownFault):
            for server_id in event.servers:
                self.servers[server_id].speed_factor /= event.factor
        elif isinstance(event, CrashFault):
            for server_id in event.servers:
                self.servers[server_id].resume()
        elif isinstance(event, NetworkJitterFault):
            self._jitter_depth -= 1
            if self._jitter_depth == 0 and self.network is not None:
                assert self._base_latency is not None
                self.network.latency = self._base_latency
        elif isinstance(event, FlashCrowdFault):
            self._crowd_scale /= event.multiplier
        elif isinstance(event, RebalanceFault):
            assert self.placement is not None  # enforced at construction
            self.placement.readmit(event.servers)

    # -- reporting ---------------------------------------------------------------
    def extras(self) -> _t.Dict[str, float]:
        """Audit counters for the runner (see :func:`windows_extras`)."""
        return windows_extras(self.windows)


class SlowdownInjector:
    """Periodically degrades a server's service rate (legacy single fault).

    Retained for direct, imperative use in tests and small rigs; scripted
    experiments should prefer a :class:`FaultSchedule` with one
    :class:`SlowdownFault`.

    Parameters
    ----------
    server:
        Any server built on ``_ServerBase`` (queue or pull mode).
    factor:
        Service-time multiplier while degraded (3.0 = 3x slower).
    start:
        First degradation onset (virtual seconds).
    duration:
        Length of each degraded window.
    period:
        Onset-to-onset spacing for recurring slowdowns; ``None`` injects a
        single window.
    """

    def __init__(
        self,
        env: Environment,
        server: "_ServerBase",
        factor: float = 3.0,
        start: float = 0.0,
        duration: float = 1.0,
        period: _t.Optional[float] = None,
    ) -> None:
        if factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        if period is not None and period <= duration:
            raise ValueError("period must exceed duration")
        self.env = env
        self.server = server
        self.factor = float(factor)
        self.start = float(start)
        self.duration = float(duration)
        self.period = period
        self.windows_injected = 0
        env.process(self._run(), name=f"slowdown.server{server.server_id}")

    def _run(self) -> _t.Generator:
        if self.start > 0:
            yield self.env.timeout(self.start)
        while True:
            self.server.speed_factor = self.factor
            self.windows_injected += 1
            yield self.env.timeout(self.duration)
            self.server.speed_factor = 1.0
            if self.period is None:
                return
            yield self.env.timeout(self.period - self.duration)
