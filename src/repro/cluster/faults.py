"""Fault injection: transient server slowdowns.

Tail-latency papers live and die by stragglers, so the substrate can make
them on demand: a :class:`SlowdownInjector` multiplies one server's
service times by a factor for a window (background compaction, GC pause,
noisy neighbour).  Used by the straggler ablation to compare how C3's
adaptive ranking, hedging and BRB's scheduling each absorb a degraded
replica.
"""

from __future__ import annotations

import typing as _t

from ..sim.engine import Environment

if _t.TYPE_CHECKING:  # pragma: no cover
    from .server import _ServerBase


class SlowdownInjector:
    """Periodically degrades a server's service rate.

    Parameters
    ----------
    server:
        Any server built on ``_ServerBase`` (queue or pull mode).
    factor:
        Service-time multiplier while degraded (3.0 = 3x slower).
    start:
        First degradation onset (virtual seconds).
    duration:
        Length of each degraded window.
    period:
        Onset-to-onset spacing for recurring slowdowns; ``None`` injects a
        single window.
    """

    def __init__(
        self,
        env: Environment,
        server: "_ServerBase",
        factor: float = 3.0,
        start: float = 0.0,
        duration: float = 1.0,
        period: _t.Optional[float] = None,
    ) -> None:
        if factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        if period is not None and period <= duration:
            raise ValueError("period must exceed duration")
        self.env = env
        self.server = server
        self.factor = float(factor)
        self.start = float(start)
        self.duration = float(duration)
        self.period = period
        self.windows_injected = 0
        env.process(self._run(), name=f"slowdown.server{server.server_id}")

    def _run(self) -> _t.Generator:
        if self.start > 0:
            yield self.env.timeout(self.start)
        while True:
            self.server.speed_factor = self.factor
            self.windows_injected += 1
            yield self.env.timeout(self.duration)
            self.server.speed_factor = 1.0
            if self.period is None:
                return
            yield self.env.timeout(self.period - self.duration)
