"""Baselines: replica selectors (random, RR, LOR, C3) + oblivious dispatch."""

from .c3 import C3Selector, C3State, CubicRateLimiter
from .hedging import HedgedStrategy
from .selectors import (
    LeastOutstandingBytesSelector,
    LeastOutstandingSelector,
    RandomSelector,
    ReplicaSelector,
    RoundRobinSelector,
    make_selector,
)
from .strategies import ObliviousStrategy

__all__ = [
    "C3Selector",
    "C3State",
    "CubicRateLimiter",
    "HedgedStrategy",
    "LeastOutstandingBytesSelector",
    "LeastOutstandingSelector",
    "ObliviousStrategy",
    "RandomSelector",
    "ReplicaSelector",
    "RoundRobinSelector",
    "make_selector",
]
