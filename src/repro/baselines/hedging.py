"""Hedged requests: the "Tail at Scale" baseline.

The paper cites request duplication (Dean & Barroso, CACM 2013) as the
first family of tail-latency mitigations BRB complements.  This module
implements the classic *hedged request* policy: send each read to the
best replica; if no response arrives within a hedge delay, re-issue it to
a different replica of the same group; the first response wins and the
straggler is ignored (no cancellation -- the duplicate still consumes
server capacity, which is exactly the policy's well-known cost).

Used as an additional baseline in the ablations: hedging fights stragglers
*after* they happen, BRB schedules so they happen less.
"""

from __future__ import annotations

import typing as _t

from ..cluster.client import DispatchStrategy
from ..cluster.messages import RequestMessage, ResponseMessage
from ..cluster.partitioner import Placement
from ..cluster.addresses import client_address, server_address
from ..core.cost import CostModel
from ..metrics.histogram import LogHistogram
from ..metrics.timeseries import WindowedRate
from ..workload.calibration import ServiceTimeModel
from ..workload.tasks import Task
from .selectors import ReplicaSelector


class HedgedStrategy(DispatchStrategy):
    """Per-request replica selection with a one-shot hedge after a delay.

    Two production safeguards from the Tail-at-Scale playbook are built
    in, because without them hedging melts down under queueing (each
    duplicate adds load, which delays more primaries, which spawns more
    duplicates -- a positive feedback loop the straggler ablation
    demonstrates when they are disabled):

    * **adaptive threshold** -- once enough responses have been observed,
      the effective hedge delay is the client's own p95 response latency
      (never below ``hedge_delay``);
    * **hedge budget** -- duplicates are capped at ``budget_fraction`` of
      the recent send rate (Dean & Barroso suggest ~5%).

    Parameters
    ----------
    hedge_delay:
        Floor (and cold-start value) for the hedge threshold, seconds.
    max_hedges:
        Duplicates per request (1 = classic hedging).  The hedge goes to
        the best *other* replica according to the selector.
    budget_fraction:
        Maximum hedges as a fraction of recent sends; ``1.0`` disables
        the budget (unit tests of the raw mechanism use this).
    adaptive:
        Use the observed p95 as the threshold once warmed up.
    """

    def __init__(
        self,
        placement: Placement,
        selector: ReplicaSelector,
        service_model: ServiceTimeModel,
        hedge_delay: float = 2e-3,
        max_hedges: int = 1,
        budget_fraction: float = 0.1,
        adaptive: bool = True,
    ) -> None:
        if hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive")
        if max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")
        if not (0.0 < budget_fraction <= 1.0):
            raise ValueError("budget_fraction must be in (0, 1]")
        self.placement = placement
        self.selector = selector
        self.service_model = service_model
        # Memoized forecasts, shared logic with the BRB/oblivious paths.
        self.cost_model = CostModel(service_model)
        self.hedge_delay = float(hedge_delay)
        self.max_hedges = int(max_hedges)
        self.name = f"hedged+{selector.name}"
        #: op_id -> [answered, copies_in_flight]; entries are deleted once
        #: every copy has returned, so memory stays bounded by the number
        #: of in-flight ops rather than the length of the run.
        self._ops: _t.Dict[int, _t.List[_t.Any]] = {}
        self.budget_fraction = float(budget_fraction)
        self.adaptive = bool(adaptive)
        #: Observed response latencies; p95 drives the adaptive threshold.
        self._latencies = LogHistogram(min_value=1e-6, max_value=1e3, precision=0.05)
        self._send_rate = WindowedRate(window=1.0)
        self._hedge_rate = WindowedRate(window=1.0)
        self.hedges_sent = 0
        self.wasted_responses = 0
        self.hedges_suppressed = 0

    def _threshold(self) -> float:
        """Current hedge delay: observed p95 once warm, floor otherwise."""
        if self.adaptive and self._latencies.count >= 100:
            return max(self.hedge_delay, self._latencies.quantile(0.95))
        return self.hedge_delay

    def _budget_allows(self) -> bool:
        now = self.client.env.now
        sends = self._send_rate.count(now)
        hedges = self._hedge_rate.count(now)
        return hedges < self.budget_fraction * max(sends, 1.0)

    # -- prepare ---------------------------------------------------------------
    def prepare(self, task: Task) -> _t.List[RequestMessage]:
        requests: _t.List[RequestMessage] = []
        for op in task.operations:
            partition = self.placement.partition_of(op.key)
            request = RequestMessage(
                op=op,
                task_id=task.task_id,
                client_id=self.client.client_id,
                partition=partition,
                expected_service=self.cost_model.op_cost(op),
            )
            replicas = self.placement.replicas_of(partition)
            request.server_id = self.selector.choose(replicas, request)
            self.selector.on_assign(request)
            requests.append(request)
        return requests

    # -- dispatch ---------------------------------------------------------------
    def dispatch(self, requests: _t.Sequence[RequestMessage]) -> None:
        for request in requests:
            self._ops[request.op.op_id] = [False, 1]
            self._send(request)
            self.client.env.process(
                self._hedge_timer(request),
                name=f"hedge.{self.client.client_id}.{request.op.op_id}",
            )

    def _send(self, request: RequestMessage) -> None:
        request.dispatched_at = self.client.env.now
        self._send_rate.record(self.client.env.now)
        self.selector.on_dispatch(request)
        self.client.network.send(
            client_address(self.client.client_id),
            server_address(request.server_id),
            request,
        )

    def _hedge_timer(self, primary: RequestMessage) -> _t.Generator:
        env = self.client.env
        for _ in range(self.max_hedges):
            yield env.timeout(self._threshold())
            entry = self._ops.get(primary.op.op_id)
            if entry is None or entry[0]:
                return  # answered in time: no hedge needed
            if not self._budget_allows():
                self.hedges_suppressed += 1
                return
            replicas = [
                s
                for s in self.placement.replicas_of(primary.partition)
                if s != primary.server_id
            ]
            if not replicas:
                return  # replication factor 1: nowhere to hedge
            hedge = RequestMessage(
                op=primary.op,
                task_id=primary.task_id,
                client_id=primary.client_id,
                partition=primary.partition,
                expected_service=primary.expected_service,
                hedge=True,
            )
            hedge.created_at = primary.created_at
            hedge.server_id = self.selector.choose(replicas, hedge)
            self.selector.on_assign(hedge)
            entry[1] += 1
            self.hedges_sent += 1
            self._hedge_rate.record(env.now)
            self._send(hedge)

    # -- responses ---------------------------------------------------------------
    def accepts_response(self, response: ResponseMessage) -> bool:
        """First response per op wins; stragglers are swallowed."""
        op_id = response.request.op.op_id
        self.selector.on_response(response)
        entry = self._ops.get(op_id)
        if entry is None:
            raise RuntimeError(f"response for unknown op {op_id}")
        entry[1] -= 1
        first = not entry[0]
        entry[0] = True
        if first:
            self._latencies.record(
                max(1e-9, self.client.env.now - response.request.created_at)
            )
        else:
            self.wasted_responses += 1
        if entry[1] <= 0:
            del self._ops[op_id]
        return first

    def on_response(self, response: ResponseMessage) -> None:
        """Selector feedback happens in accepts_response (both copies)."""
