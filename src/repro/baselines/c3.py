"""C3: adaptive replica selection with cubic rate control (NSDI 2015).

The paper's state-of-the-art baseline.  C3 runs at each client and has two
cooperating mechanisms (Suresh, Canini, Schmid, Feldmann -- "C3: Cutting
Tail Latency in Cloud Data Stores via Adaptive Replica Selection"):

1. **Replica ranking.**  Using feedback piggybacked on responses (queue
   size ``q_s``, service time ``1/mu_s``) and client-measured response
   times ``R_s``, each server is scored::

       psi_s = R_bar_s - 1/mu_bar_s + (q_hat_s)^3 / mu_bar_s

   where the *concurrency-compensated* queue estimate is::

       q_hat_s = 1 + os_s * w + q_bar_s

   with ``os_s`` the client's own outstanding requests to ``s`` and ``w``
   the client-concurrency weight (number of clients).  The cubing
   penalizes long queues super-linearly, which is what prevents herd
   behavior toward the currently fastest server.  The replica with the
   smallest score wins.

2. **Cubic rate control.**  Each client limits its per-server send rate
   with a CUBIC-style controller: on congestion (send rate exceeding the
   observed receive rate) the rate is cut multiplicatively and the
   pre-cut rate is remembered as the plateau ``R_max``; otherwise the rate
   grows along the cubic curve ``rate(t) = gamma (t - K)^3 + R_max`` with
   ``K = cbrt(R_max * beta / gamma)``.

Requests that exceed the rate limit wait in a per-server FIFO at the
client (C3's "backpressure" queue) and are released by a pacing process.
"""

from __future__ import annotations

import math
import typing as _t

from ..cluster.messages import RequestMessage, ResponseMessage
from ..core.clock import Clock
from ..metrics.timeseries import EwmaEstimator, WindowedRate
from ..sim.rng import Stream
from .selectors import ReplicaSelector

#: Multiplicative decrease factor on congestion (CUBIC's beta).
DEFAULT_BETA = 0.2
#: Cubic growth scaling (CUBIC's C), in rate units per second^3.
DEFAULT_GAMMA = 100_000.0
#: Feedback smoothing time constant (seconds).
DEFAULT_SMOOTHING = 0.1
#: Congestion declared only when send rate exceeds receive rate by this
#: factor (hysteresis against windowed-rate measurement noise).
CONGESTION_RATIO = 1.3
#: Minimum sends inside the window before rates are trusted at all.
MIN_WINDOW_SAMPLES = 8


class CubicRateLimiter:
    """Per-server CUBIC send-rate controller with token accounting."""

    def __init__(
        self,
        env: Clock,
        initial_rate: float = 1000.0,
        beta: float = DEFAULT_BETA,
        gamma: float = DEFAULT_GAMMA,
        min_rate: float = 100.0,
        max_rate: float = 1e7,
        reaction_interval: float = 0.05,
        burst: float = 16.0,
    ) -> None:
        if initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        if not (0.0 < beta < 1.0):
            raise ValueError("beta must be in (0, 1)")
        if reaction_interval <= 0:
            raise ValueError("reaction_interval must be positive")
        if burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.env = env
        self.rate = float(initial_rate)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.reaction_interval = float(reaction_interval)
        self.burst = float(burst)
        self.rate_max = float(initial_rate)
        self._epoch_start = env.now
        self._last_reaction = -float("inf")
        self._tokens = float(burst)
        self._last_refill = env.now
        self.congestion_events = 0

    # -- rate adaptation -----------------------------------------------------
    def on_congestion(self) -> None:
        """Multiplicative decrease; remember the plateau.

        Reacts at most once per ``reaction_interval`` -- CUBIC cuts once per
        congestion *epoch*, not once per ack, and without this guard the
        noisy windowed-rate comparison collapses the rate to the floor.
        """
        if self.env.now - self._last_reaction < self.reaction_interval:
            return
        self._last_reaction = self.env.now
        self.rate_max = self.rate
        self.rate = max(self.min_rate, self.rate * (1.0 - self.beta))
        self._epoch_start = self.env.now
        self.congestion_events += 1

    def on_ack(self) -> None:
        """Cubic growth toward (and past) the previous plateau."""
        t = self.env.now - self._epoch_start
        k = ((self.rate_max * self.beta) / self.gamma) ** (1.0 / 3.0)
        target = self.gamma * (t - k) ** 3 + self.rate_max
        self.rate = min(self.max_rate, max(self.min_rate, target))

    # -- token bucket ------------------------------------------------------------
    def _refill(self) -> None:
        now = self.env.now
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def try_acquire(self) -> bool:
        """Take one send token if available.

        A small tolerance absorbs floating-point residue so a token that
        is 1e-12 short of maturity still counts (otherwise pacers can spin
        on sub-representable waits).
        """
        self._refill()
        if self._tokens >= 1.0 - 1e-9:
            self._tokens = max(0.0, self._tokens - 1.0)
            return True
        return False

    def time_until_token(self) -> float:
        """Seconds until the next token matures (0 if one is ready)."""
        self._refill()
        if self._tokens >= 1.0 - 1e-9:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class C3State:
    """Per-server statistics a C3 client maintains."""

    __slots__ = (
        "response_time",
        "service_time",
        "queue_size",
        "outstanding",
        "send_rate",
        "recv_rate",
        "limiter",
    )

    def __init__(
        self, env: Clock, rate_window: float, initial_rate: float
    ) -> None:
        self.response_time = EwmaEstimator(DEFAULT_SMOOTHING)
        self.service_time = EwmaEstimator(DEFAULT_SMOOTHING)
        self.queue_size = EwmaEstimator(DEFAULT_SMOOTHING)
        self.outstanding = 0
        self.send_rate = WindowedRate(rate_window)
        self.recv_rate = WindowedRate(rate_window)
        self.limiter = CubicRateLimiter(env, initial_rate=initial_rate)


class C3Selector(ReplicaSelector):
    """C3 replica ranking + cubic rate control, one instance per client.

    Also exposes the rate-limit gate (:meth:`try_acquire` /
    :meth:`time_until_slot`) used by the oblivious dispatch strategy:
    C3 paces dispatches per server.
    """

    name = "c3"

    def __init__(
        self,
        env: Clock,
        concurrency_weight: float,
        stream: Stream,
        rate_window: float = 0.2,
        rate_control: bool = True,
        initial_rate: float = 1000.0,
    ) -> None:
        if concurrency_weight < 1:
            raise ValueError("concurrency_weight must be >= 1")
        if initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        self.env = env
        self.concurrency_weight = float(concurrency_weight)
        self.stream = stream
        self.rate_window = rate_window
        self.rate_control = rate_control
        self.initial_rate = initial_rate
        self._states: _t.Dict[int, C3State] = {}

    def state_of(self, server_id: int) -> C3State:
        state = self._states.get(server_id)
        if state is None:
            state = C3State(self.env, self.rate_window, self.initial_rate)
            self._states[server_id] = state
        return state

    # -- scoring ------------------------------------------------------------
    def score(self, server_id: int) -> float:
        """The C3 ranking function psi_s (smaller is better)."""
        s = self.state_of(server_id)
        mu_inv = s.service_time.value
        if mu_inv <= 0:
            # No feedback yet: treat the server as unknown-but-promising so
            # every replica gets explored early on.
            return -math.inf
        q_hat = 1.0 + s.outstanding * self.concurrency_weight + s.queue_size.value
        return s.response_time.value - mu_inv + (q_hat**3) * mu_inv

    def choose(self, replicas: _t.Sequence[int], request: RequestMessage) -> int:
        best: _t.List[int] = []
        best_score = math.inf
        for server in replicas:
            score = self.score(server)
            if score < best_score:
                best_score = score
                best = [server]
            elif score == best_score:
                best.append(server)
        if len(best) > 1:
            return best[self.stream.randrange(len(best))]
        return best[0]

    # -- feedback -----------------------------------------------------------
    def on_assign(self, request: RequestMessage) -> None:
        state = self.state_of(request.server_id)
        state.outstanding += 1

    def on_dispatch(self, request: RequestMessage) -> None:
        self.state_of(request.server_id).send_rate.record(self.env.now)

    def on_response(self, response: ResponseMessage) -> None:
        request = response.request
        feedback = response.feedback
        state = self.state_of(request.server_id)
        if state.outstanding <= 0:
            raise RuntimeError(
                f"C3 outstanding underflow for server {request.server_id}"
            )
        state.outstanding -= 1
        now = self.env.now
        state.recv_rate.record(now)
        state.response_time.update(now, now - request.dispatched_at)
        state.queue_size.update(
            now, feedback.queue_length + feedback.in_service
        )
        if feedback.ewma_service_time > 0:
            state.service_time.update(now, feedback.ewma_service_time)
        if self.rate_control:
            send_samples = state.send_rate.count(now)
            recv_samples = state.recv_rate.count(now)
            send = state.send_rate.rate(now)
            recv = state.recv_rate.rate(now)
            # Both windows must be populated before the comparison means
            # anything: while responses are still in flight (ramp-up) the
            # receive rate trivially lags the send rate and reacting to
            # that would collapse the rate before the system ever settles.
            if (
                send_samples >= MIN_WINDOW_SAMPLES
                and recv_samples >= MIN_WINDOW_SAMPLES
                and send > recv * CONGESTION_RATIO
            ):
                state.limiter.on_congestion()
            else:
                state.limiter.on_ack()

    # -- pacing gate -----------------------------------------------------------
    def try_acquire(self, server_id: int) -> bool:
        """Non-blocking send-slot acquisition for ``server_id``."""
        if not self.rate_control:
            return True
        return self.state_of(server_id).limiter.try_acquire()

    def time_until_slot(self, server_id: int) -> float:
        if not self.rate_control:
            return 0.0
        return self.state_of(server_id).limiter.time_until_token()
