"""Replica selection policies (per-client, decentralized).

Given the replica group of a partition, a selector picks the server to
serve a read.  These are the task-oblivious baselines; C3 (the paper's
state-of-the-art comparison point) lives in :mod:`repro.baselines.c3`.

All selectors see the same feedback hooks (`on_dispatch`/`on_response`), so
strategies can treat them uniformly.
"""

from __future__ import annotations

import typing as _t

from ..cluster.messages import RequestMessage, ResponseMessage
from ..sim.rng import Stream


class ReplicaSelector:
    """Interface for per-request replica selection."""

    name: str = "abstract"

    def choose(
        self, replicas: _t.Sequence[int], request: RequestMessage
    ) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_assign(self, request: RequestMessage) -> None:
        """Called when a request is *assigned* to ``request.server_id``.

        Fires before any client-side gating/pacing delay.  Selectors that
        track load (LOR, C3) must account here, not at send time: requests
        waiting in a pacing backlog are load the next ``choose`` call needs
        to see, otherwise the ranking keeps piling onto the same server.
        """

    def on_dispatch(self, request: RequestMessage) -> None:
        """Called when a request is actually sent over the network."""

    def on_response(self, response: ResponseMessage) -> None:
        """Called when a response returns (with piggybacked feedback)."""


class RandomSelector(ReplicaSelector):
    """Uniformly random replica."""

    name = "random"

    def __init__(self, stream: Stream) -> None:
        self.stream = stream

    def choose(self, replicas: _t.Sequence[int], request: RequestMessage) -> int:
        return replicas[self.stream.randrange(len(replicas))]


class RoundRobinSelector(ReplicaSelector):
    """Cycle through each partition's replica group independently."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next: _t.Dict[int, int] = {}

    def choose(self, replicas: _t.Sequence[int], request: RequestMessage) -> int:
        idx = self._next.get(request.partition, 0)
        self._next[request.partition] = (idx + 1) % len(replicas)
        return replicas[idx % len(replicas)]


class LeastOutstandingSelector(ReplicaSelector):
    """Pick the replica with the fewest outstanding requests (per client).

    The classic "least outstanding requests" (LOR) load-balancing policy;
    purely client-local knowledge.
    """

    name = "least-outstanding"

    def __init__(self, stream: _t.Optional[Stream] = None) -> None:
        self.outstanding: _t.Dict[int, int] = {}
        self.stream = stream

    def choose(self, replicas: _t.Sequence[int], request: RequestMessage) -> int:
        best = None
        best_load = None
        candidates: _t.List[int] = []
        for server in replicas:
            load = self.outstanding.get(server, 0)
            if best_load is None or load < best_load:
                best, best_load = server, load
                candidates = [server]
            elif load == best_load:
                candidates.append(server)
        if len(candidates) > 1 and self.stream is not None:
            return candidates[self.stream.randrange(len(candidates))]
        return _t.cast(int, best)

    def on_assign(self, request: RequestMessage) -> None:
        self.outstanding[request.server_id] = (
            self.outstanding.get(request.server_id, 0) + 1
        )

    def on_response(self, response: ResponseMessage) -> None:
        server = response.request.server_id
        count = self.outstanding.get(server, 0)
        if count <= 0:
            raise RuntimeError(f"negative outstanding count for server {server}")
        self.outstanding[server] = count - 1


class LeastOutstandingBytesSelector(ReplicaSelector):
    """Least outstanding *bytes* (value-size weighted LOR).

    This is the load-aware selector BRB's clients use to pin a sub-task to
    a replica: with size-skewed values, byte counts predict busy-time far
    better than request counts.
    """

    name = "least-outstanding-bytes"

    def __init__(self, stream: _t.Optional[Stream] = None) -> None:
        self.outstanding_bytes: _t.Dict[int, int] = {}
        self.stream = stream

    def choose(self, replicas: _t.Sequence[int], request: RequestMessage) -> int:
        best = None
        best_load = None
        candidates: _t.List[int] = []
        for server in replicas:
            load = self.outstanding_bytes.get(server, 0)
            if best_load is None or load < best_load:
                best, best_load = server, load
                candidates = [server]
            elif load == best_load:
                candidates.append(server)
        if len(candidates) > 1 and self.stream is not None:
            return candidates[self.stream.randrange(len(candidates))]
        return _t.cast(int, best)

    def on_assign(self, request: RequestMessage) -> None:
        self.outstanding_bytes[request.server_id] = (
            self.outstanding_bytes.get(request.server_id, 0) + request.op.value_size
        )

    def on_response(self, response: ResponseMessage) -> None:
        server = response.request.server_id
        size = response.request.op.value_size
        current = self.outstanding_bytes.get(server, 0)
        if current < size:
            raise RuntimeError(f"outstanding bytes underflow for server {server}")
        self.outstanding_bytes[server] = current - size


def make_selector(name: str, stream: _t.Optional[Stream] = None) -> ReplicaSelector:
    """Factory by name (C3 is constructed separately; it needs more state)."""
    if name == "random":
        if stream is None:
            raise ValueError("random selector needs a stream")
        return RandomSelector(stream)
    if name == "round-robin":
        return RoundRobinSelector()
    if name == "least-outstanding":
        return LeastOutstandingSelector(stream)
    if name == "least-outstanding-bytes":
        return LeastOutstandingBytesSelector(stream)
    raise ValueError(f"unknown selector {name!r}")
