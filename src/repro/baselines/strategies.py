"""Task-oblivious dispatch strategies (the baselines' client side).

The oblivious strategy selects a replica *per request* (no notion of
sub-tasks or bottlenecks), attaches no meaningful priority, and sends
requests as soon as the pacing policy allows.  Servers run FIFO (or any
configured task-oblivious discipline).
"""

from __future__ import annotations

import typing as _t

from ..cluster.client import DispatchStrategy
from ..cluster.messages import RequestMessage, ResponseMessage
from ..cluster.partitioner import Placement
from ..cluster.addresses import client_address, server_address
from ..core.cost import CostModel
from ..workload.calibration import ServiceTimeModel
from ..workload.tasks import Task
from .c3 import C3Selector
from .selectors import ReplicaSelector


class ObliviousStrategy(DispatchStrategy):
    """Per-request replica selection, immediate (or paced) dispatch."""

    def __init__(
        self,
        placement: Placement,
        selector: ReplicaSelector,
        service_model: ServiceTimeModel,
    ) -> None:
        self.placement = placement
        self.selector = selector
        self.service_model = service_model
        # Memoized forecasts (same cache the BRB strategies use): one key
        # maps to one fixed size, so per-request recomputation is waste.
        self.cost_model = CostModel(service_model)
        self.name = f"oblivious+{selector.name}"
        #: Requests waiting for a send slot, per server (C3 pacing only).
        self._paced_backlog: _t.Dict[int, _t.List[RequestMessage]] = {}
        self._pacer_active: _t.Set[int] = set()

    # -- prepare ---------------------------------------------------------------
    def prepare(self, task: Task) -> _t.List[RequestMessage]:
        requests: _t.List[RequestMessage] = []
        for op in task.operations:
            partition = self.placement.partition_of(op.key)
            request = RequestMessage(
                op=op,
                task_id=task.task_id,
                client_id=self.client.client_id,
                partition=partition,
                expected_service=self.cost_model.op_cost(op),
            )
            replicas = self.placement.replicas_of(partition)
            request.server_id = self.selector.choose(replicas, request)
            self.selector.on_assign(request)
            requests.append(request)
        return requests

    # -- dispatch ---------------------------------------------------------------
    def dispatch(self, requests: _t.Sequence[RequestMessage]) -> None:
        for request in requests:
            self._send_or_queue(request)

    def _send_or_queue(self, request: RequestMessage) -> None:
        selector = self.selector
        if isinstance(selector, C3Selector) and not selector.try_acquire(
            request.server_id
        ):
            backlog = self._paced_backlog.setdefault(request.server_id, [])
            backlog.append(request)
            self._ensure_pacer(request.server_id)
            return
        self._send(request)

    def _send(self, request: RequestMessage) -> None:
        env = self.client.env
        request.dispatched_at = env.now
        self.selector.on_dispatch(request)
        self.client.network.send(
            client_address(self.client.client_id),
            server_address(request.server_id),
            request,
        )

    def _ensure_pacer(self, server_id: int) -> None:
        if server_id in self._pacer_active:
            return
        self._pacer_active.add(server_id)
        self.client.env.process(
            self._pacer(server_id),
            name=f"client{self.client.client_id}.pacer{server_id}",
        )

    def _pacer(self, server_id: int) -> _t.Generator:
        """Drain the paced backlog as rate-limit tokens mature.

        The wait is floored at 1 us: the token bucket can report
        sub-representable residual waits, and ``now + epsilon == now`` in
        doubles would freeze virtual time.
        """
        env = self.client.env
        selector = _t.cast(C3Selector, self.selector)
        backlog = self._paced_backlog[server_id]
        while backlog:
            if selector.try_acquire(server_id):
                self._send(backlog.pop(0))
                continue
            yield env.timeout(max(1e-6, selector.time_until_slot(server_id)))
        self._pacer_active.discard(server_id)

    # -- feedback ---------------------------------------------------------------
    def on_response(self, response: ResponseMessage) -> None:
        self.selector.on_response(response)
