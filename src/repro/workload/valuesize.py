"""Value-size distributions.

The paper generates request value sizes "using a Pareto distribution based
on a study conducted on Facebook's Memcached deployment" (Atikoglu et al.,
SIGMETRICS 2012).  That study fits a *Generalized Pareto* distribution to
the value sizes of the ETC pool; we implement that sampler with the
published parameters, plus a bounded (truncated) Pareto and a few simpler
distributions used by tests and ablations.

All samplers draw from a :class:`repro.sim.rng.Stream` passed by the
caller, so the workload is reproducible and shared across strategies.
"""

from __future__ import annotations

import math
import typing as _t

from ..sim.rng import Stream

#: Generalized-Pareto parameters for the ETC pool value sizes reported by
#: Atikoglu et al. (SIGMETRICS'12), Table 5: location theta, scale sigma,
#: shape k.  Sizes are in bytes.
ATIKOGLU_ETC_LOCATION = 0.0
ATIKOGLU_ETC_SCALE = 214.476
ATIKOGLU_ETC_SHAPE = 0.348238


class ValueSizeDistribution:
    """Interface: ``sample(stream) -> int`` bytes, plus the analytic mean."""

    def sample(self, stream: Stream) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class FixedValueSize(ValueSizeDistribution):
    """Every value has the same size (unit tests, Figure 1 toy example)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = int(size)

    def sample(self, stream: Stream) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)

    def __repr__(self) -> str:
        return f"FixedValueSize({self.size})"


class UniformValueSize(ValueSizeDistribution):
    """Uniform integer sizes in ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int) -> None:
        if not (0 < lo <= hi):
            raise ValueError("need 0 < lo <= hi")
        self.lo = int(lo)
        self.hi = int(hi)

    def sample(self, stream: Stream) -> int:
        return stream.randint(self.lo, self.hi)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformValueSize({self.lo}, {self.hi})"


class GeneralizedParetoValueSize(ValueSizeDistribution):
    """Generalized Pareto value sizes, truncated to ``[min_size, max_size]``.

    The CDF is ``F(x) = 1 - (1 + k (x - theta) / sigma)^(-1/k)`` for shape
    ``k != 0``; inverse-CDF sampling gives
    ``x = theta + sigma ((1 - u)^(-k) - 1) / k``.

    Truncation matters: with the Atikoglu shape (k ~= 0.35) raw draws have a
    heavy tail; memcached deployments cap values (1 MB by default), and the
    cap keeps the simulated service times physical.  The truncation is by
    resampling, which preserves the distribution's shape below the cap.
    """

    def __init__(
        self,
        location: float = ATIKOGLU_ETC_LOCATION,
        scale: float = ATIKOGLU_ETC_SCALE,
        shape: float = ATIKOGLU_ETC_SHAPE,
        min_size: int = 1,
        max_size: int = 1_048_576,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if min_size < 1 or max_size <= min_size:
            raise ValueError("need 1 <= min_size < max_size")
        self.location = float(location)
        self.scale = float(scale)
        self.shape = float(shape)
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        # Truncation bounds are pure functions of the parameters; caching
        # them here removes two CDF evaluations from every sample() call
        # (the registry draws one sample per distinct key).  Same
        # expressions, same floats.
        self._f_lo = self._cdf(float(self.min_size))
        self._f_hi = self._cdf(float(self.max_size))

    def _raw_sample(self, u: float) -> float:
        if abs(self.shape) < 1e-12:
            return self.location - self.scale * math.log1p(-u)
        return self.location + self.scale * ((1.0 - u) ** (-self.shape) - 1.0) / self.shape

    def _cdf(self, x: float) -> float:
        if x <= self.location:
            return 0.0
        z = (x - self.location) / self.scale
        if abs(self.shape) < 1e-12:
            return 1.0 - math.exp(-z)
        return 1.0 - (1.0 + self.shape * z) ** (-1.0 / self.shape)

    def sample(self, stream: Stream) -> int:
        # Inverse-CDF restricted to [F(min), F(max)]: exact truncated draw
        # with a single uniform (no rejection loop).
        u = self._f_lo + stream.random() * (self._f_hi - self._f_lo)
        x = self._raw_sample(u)
        return max(self.min_size, min(self.max_size, int(round(x))))

    def mean(self) -> float:
        """Mean of the truncated distribution (numeric, cached)."""
        cached = getattr(self, "_mean_cache", None)
        if cached is not None:
            return cached
        # Integrate x f(x) over [min,max] via the tail formula
        # E[X] = min + integral of (1 - F_trunc(x)) dx, with Simpson's rule
        # on a log-spaced grid (the integrand spans several decades).
        f_hi = self._f_hi
        span = f_hi - self._f_lo

        def survival(x: float) -> float:
            return (f_hi - self._cdf(x)) / span

        n = 4096
        log_lo = math.log(self.min_size)
        log_hi = math.log(self.max_size)
        total = 0.0
        prev_x = float(self.min_size)
        prev_s = survival(prev_x)
        for i in range(1, n + 1):
            x = math.exp(log_lo + (log_hi - log_lo) * i / n)
            s = survival(x)
            total += 0.5 * (prev_s + s) * (x - prev_x)
            prev_x, prev_s = x, s
        mean = self.min_size + total
        self._mean_cache = mean
        return mean

    def __repr__(self) -> str:
        return (
            f"GeneralizedParetoValueSize(scale={self.scale}, shape={self.shape}, "
            f"max_size={self.max_size})"
        )


class BoundedParetoValueSize(ValueSizeDistribution):
    """Classic bounded (truncated) Pareto on ``[lo, hi]`` with tail ``alpha``."""

    def __init__(self, alpha: float = 1.2, lo: int = 64, hi: int = 1_048_576) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        self.alpha = float(alpha)
        self.lo = int(lo)
        self.hi = int(hi)

    def sample(self, stream: Stream) -> int:
        return max(self.lo, min(self.hi, int(round(stream.bounded_pareto(self.alpha, self.lo, self.hi)))))

    def mean(self) -> float:
        a, l, h = self.alpha, float(self.lo), float(self.hi)
        if abs(a - 1.0) < 1e-12:
            return math.log(h / l) * l * h / (h - l)
        num = (l**a) * a / (1.0 - (l / h) ** a)
        return num * (l ** (1.0 - a) - h ** (1.0 - a)) / (a - 1.0)

    def __repr__(self) -> str:
        return f"BoundedParetoValueSize(alpha={self.alpha}, lo={self.lo}, hi={self.hi})"


def atikoglu_etc(max_size: int = 1_048_576) -> GeneralizedParetoValueSize:
    """The paper's value-size model: Atikoglu et al. ETC-pool fit."""
    return GeneralizedParetoValueSize(max_size=max_size)
