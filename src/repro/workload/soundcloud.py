"""SoundCloud-like workload generator.

The paper evaluates on a production trace "gathered from SoundCloud
[comprising] approximately 500,000 tasks, with an average fan-out of 8.6
requests per task".  The trace is proprietary; this module synthesizes a
workload that matches everything the paper discloses and models the rest
after the service's access patterns:

* **Fan-out**: a mixture -- the bulk of tasks are small multi-get fetches
  (user profile + a handful of associations), a minority are playlist/
  stream expansions with heavy-tailed (log-normal) fan-out.  The mixture
  mean is calibrated to 8.6.
* **Value sizes**: the Atikoglu et al. generalized-Pareto fit the paper
  cites (see :mod:`repro.workload.valuesize`).
* **Key popularity**: Zipf(0.9) over the keyspace -- standard for social
  audio/content workloads.
* **Arrivals**: Poisson at a configurable fraction of system capacity
  (the paper uses 70%).

Every knob is exposed so ablations can perturb one axis at a time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim.rng import StreamFactory
from .arrivals import PoissonArrivals
from .calibration import (
    ServiceTimeModel,
    calibrate_service_model,
    task_arrival_rate_for_load,
)
from .fanout import FanoutDistribution, GeometricFanout, LogNormalFanout, MixtureFanout
from .popularity import PopularityModel, ZipfPopularity
from .tasks import Task, TaskGenerator, ValueSizeRegistry
from .valuesize import BoundedParetoValueSize, ValueSizeDistribution, atikoglu_etc


def parse_value_size_model(spec: str) -> ValueSizeDistribution:
    """Build a value-size distribution from a config string.

    ``"atikoglu"`` -- the Atikoglu et al. generalized-Pareto ETC fit;
    ``"pareto:<alpha>"`` -- bounded Pareto on [64 B, 1 MiB] with the given
    tail index (the literal reading of the paper's "Pareto distribution").
    """
    if spec == "atikoglu":
        return atikoglu_etc()
    if spec.startswith("pareto:"):
        try:
            alpha = float(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad pareto spec {spec!r}") from None
        return BoundedParetoValueSize(alpha=alpha)
    raise ValueError(f"unknown value-size model {spec!r}")

#: Disclosed properties of the paper's trace.
PAPER_MEAN_FANOUT = 8.6
PAPER_N_TASKS = 500_000
PAPER_LOAD = 0.70
PAPER_SERVICE_RATE = 3500.0


def soundcloud_fanout(
    mean: float = PAPER_MEAN_FANOUT,
    playlist_fraction: float = 0.25,
    playlist_sigma: float = 1.0,
    cap: int = 512,
) -> FanoutDistribution:
    """The fan-out mixture: small multi-gets + heavy-tailed playlists.

    With ``playlist_fraction`` p and overall mean m, the playlist component
    mean is chosen 3x the base component mean, solving
    ``(1-p) * b + p * 3b = m``.
    """
    if mean <= 1.0:
        raise ValueError("mean fan-out must exceed 1")
    if not (0.0 <= playlist_fraction < 1.0):
        raise ValueError("playlist_fraction must be in [0, 1)")
    if playlist_fraction == 0.0:
        return GeometricFanout(mean)
    base_mean = mean / (1.0 - playlist_fraction + 3.0 * playlist_fraction)
    playlist_mean = 3.0 * base_mean
    return MixtureFanout(
        [
            (1.0 - playlist_fraction, GeometricFanout(max(1.01, base_mean))),
            (
                playlist_fraction,
                LogNormalFanout(max(1.01, playlist_mean), sigma=playlist_sigma, cap=cap),
            ),
        ]
    )


@dataclasses.dataclass
class SoundCloudWorkload:
    """Fully-specified workload: distributions plus derived arrival rate."""

    n_tasks: int
    n_clients: int
    n_keys: int
    load: float
    mean_fanout: float
    fanout: FanoutDistribution
    popularity: PopularityModel
    value_sizes: ValueSizeDistribution
    service_model: ServiceTimeModel
    task_rate: float

    def generator(self, streams: StreamFactory) -> TaskGenerator:
        """Build the task generator bound to a seed's stream factory."""
        registry = ValueSizeRegistry(self.value_sizes, seed=streams.root_seed)
        return TaskGenerator(
            fanout=self.fanout,
            popularity=self.popularity,
            value_sizes=registry,
            arrivals=PoissonArrivals(self.task_rate),
            n_clients=self.n_clients,
            streams=streams,
        )

    def generate(self, seed: int) -> _t.List[Task]:
        """Materialize the trace for one seed."""
        return self.generator(StreamFactory(seed)).generate(self.n_tasks)


def make_soundcloud_workload(
    n_tasks: int = 20_000,
    n_clients: int = 18,
    n_servers: int = 9,
    cores_per_server: int = 4,
    per_core_rate: float = PAPER_SERVICE_RATE,
    load: float = PAPER_LOAD,
    mean_fanout: float = PAPER_MEAN_FANOUT,
    n_keys: int = 100_000,
    zipf_skew: float = 0.9,
    playlist_fraction: float = 0.25,
    value_sizes: _t.Optional[ValueSizeDistribution] = None,
    noise: str = "none",
) -> SoundCloudWorkload:
    """Assemble the paper's evaluation workload (scaled task count).

    Defaults mirror Section 2.2 of the paper: 18 clients, 9 servers with
    4 cores at 3500 req/s each, mean fan-out 8.6, Pareto value sizes,
    Poisson arrivals at 70% of capacity.  ``n_tasks`` defaults to a scaled
    20k (the paper's 500k is reachable by passing ``n_tasks=500_000``).
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    sizes = value_sizes if value_sizes is not None else atikoglu_etc()
    service_model = calibrate_service_model(
        sizes, target_rate=per_core_rate, noise=noise
    )
    fanout = soundcloud_fanout(mean=mean_fanout, playlist_fraction=playlist_fraction)
    task_rate = task_arrival_rate_for_load(
        load=load,
        n_servers=n_servers,
        cores_per_server=cores_per_server,
        per_core_rate=per_core_rate,
        mean_fanout=fanout.mean(),
    )
    return SoundCloudWorkload(
        n_tasks=n_tasks,
        n_clients=n_clients,
        n_keys=n_keys,
        load=load,
        mean_fanout=mean_fanout,
        fanout=fanout,
        popularity=ZipfPopularity(n_keys, skew=zipf_skew),
        value_sizes=sizes,
        service_model=service_model,
        task_rate=task_rate,
    )
