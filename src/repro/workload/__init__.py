"""Workload models: fan-outs, value sizes, popularity, arrivals, traces."""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    arrival_times,
)
from .calibration import (
    ServiceTimeModel,
    calibrate_service_model,
    empirical_service_rate,
    system_capacity,
    task_arrival_rate_for_load,
)
from .fanout import (
    FanoutDistribution,
    FixedFanout,
    GeometricFanout,
    LogNormalFanout,
    MixtureFanout,
    UniformFanout,
    calibrated_lognormal,
    empirical_mean,
)
from .popularity import (
    HotColdPopularity,
    PopularityModel,
    SubsetHotspotPopularity,
    UniformPopularity,
    ZipfPopularity,
)
from .soundcloud import (
    PAPER_LOAD,
    PAPER_MEAN_FANOUT,
    PAPER_N_TASKS,
    PAPER_SERVICE_RATE,
    SoundCloudWorkload,
    make_soundcloud_workload,
    soundcloud_fanout,
)
from .tasks import Operation, Task, TaskGenerator, ValueSizeRegistry, trace_stats
from .trace import TraceFormatError, load_trace, save_trace
from .valuesize import (
    BoundedParetoValueSize,
    FixedValueSize,
    GeneralizedParetoValueSize,
    UniformValueSize,
    ValueSizeDistribution,
    atikoglu_etc,
)

__all__ = [
    "ArrivalProcess",
    "BoundedParetoValueSize",
    "BurstyArrivals",
    "DeterministicArrivals",
    "FanoutDistribution",
    "FixedFanout",
    "FixedValueSize",
    "GeneralizedParetoValueSize",
    "GeometricFanout",
    "HotColdPopularity",
    "LogNormalFanout",
    "MixtureFanout",
    "Operation",
    "PAPER_LOAD",
    "PAPER_MEAN_FANOUT",
    "PAPER_N_TASKS",
    "PAPER_SERVICE_RATE",
    "PoissonArrivals",
    "PopularityModel",
    "ServiceTimeModel",
    "SoundCloudWorkload",
    "SubsetHotspotPopularity",
    "Task",
    "TaskGenerator",
    "TraceFormatError",
    "UniformFanout",
    "UniformPopularity",
    "UniformValueSize",
    "ValueSizeDistribution",
    "ValueSizeRegistry",
    "ZipfPopularity",
    "arrival_times",
    "atikoglu_etc",
    "calibrate_service_model",
    "calibrated_lognormal",
    "empirical_mean",
    "empirical_service_rate",
    "load_trace",
    "make_soundcloud_workload",
    "save_trace",
    "soundcloud_fanout",
    "system_capacity",
    "task_arrival_rate_for_load",
    "trace_stats",
]
