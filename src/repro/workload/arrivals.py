"""Task arrival processes (open-loop).

The paper generates "task inter-arrival times using a Poisson process where
the mean rate is set to match 70% of system capacity".  The arrival process
is *open-loop*: tasks keep arriving regardless of backlog, which is what
makes queueing delay (and therefore tail latency) emerge at high load.
"""

from __future__ import annotations

import typing as _t

from ..sim.rng import Stream


class ArrivalProcess:
    """Interface: ``next_interarrival(stream) -> float`` seconds."""

    rate: float

    def next_interarrival(self, stream: Stream) -> float:  # pragma: no cover
        raise NotImplementedError

    def interarrival_block(self, stream: Stream, n: int) -> _t.List[float]:
        """Pre-draw the next ``n`` inter-arrival gaps in one call.

        Byte-identical to ``n`` sequential :meth:`next_interarrival`
        calls by construction (that is exactly what the default does);
        subclasses may tighten the loop, but must preserve the stream's
        draw sequence.  The task generator consumes arrivals through this
        block API so the per-task dispatch overhead is paid once per
        block instead of once per task.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        draw = self.next_interarrival
        return [draw(stream) for _ in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential inter-arrival times at ``rate``/sec."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)

    def next_interarrival(self, stream: Stream) -> float:
        return stream.expovariate(self.rate)

    def interarrival_block(self, stream: Stream, n: int) -> _t.List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        # Bound method batching: same expovariate calls, same floats.
        draw = stream.expovariate
        rate = self.rate
        return [draw(rate) for _ in range(n)]

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate})"


class DeterministicArrivals(ArrivalProcess):
    """Fixed-spacing arrivals (useful for deterministic tests)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.period = 1.0 / self.rate

    def next_interarrival(self, stream: Stream) -> float:
        return self.period

    def interarrival_block(self, stream: Stream, n: int) -> _t.List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.period] * n

    def __repr__(self) -> str:
        return f"DeterministicArrivals(rate={self.rate})"


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated Poisson with an ON (burst) and OFF (quiet) phase.

    Used by ablations to stress the credits controller's 1-second adaptation
    interval: bursts shorter than the epoch cannot be tracked and the
    controller must rely on the congestion signal.
    """

    def __init__(
        self,
        base_rate: float,
        burst_multiplier: float = 4.0,
        burst_fraction: float = 0.2,
        phase_mean: float = 0.5,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if not (0.0 < burst_fraction < 1.0):
            raise ValueError("burst_fraction must be in (0, 1)")
        if phase_mean <= 0:
            raise ValueError("phase_mean must be positive")
        self.base_rate = float(base_rate)
        self.burst_multiplier = float(burst_multiplier)
        self.burst_fraction = float(burst_fraction)
        self.phase_mean = float(phase_mean)
        # Rates chosen so the long-run average equals base_rate.
        denom = (1.0 - burst_fraction) + burst_fraction * burst_multiplier
        self.quiet_rate = self.base_rate / denom
        self.burst_rate = self.quiet_rate * burst_multiplier
        self.rate = self.base_rate
        self._in_burst = False
        self._phase_left = 0.0

    def next_interarrival(self, stream: Stream) -> float:
        total = 0.0
        while True:
            if self._phase_left <= 0.0:
                # Draw the next phase.  Phase *type* is chosen with the
                # burst fraction and durations share one mean, so the
                # long-run fraction of time spent bursting equals
                # ``burst_fraction`` (and the long-run rate equals
                # ``base_rate``).
                self._in_burst = stream.random() < self.burst_fraction
                self._phase_left = stream.expovariate(1.0 / self.phase_mean)
            rate = self.burst_rate if self._in_burst else self.quiet_rate
            gap = stream.expovariate(rate)
            if gap <= self._phase_left:
                self._phase_left -= gap
                return total + gap
            # Phase ends before the next arrival: burn the phase remainder.
            total += self._phase_left
            self._phase_left = 0.0

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(base_rate={self.base_rate}, "
            f"multiplier={self.burst_multiplier})"
        )


def arrival_times(
    process: ArrivalProcess,
    stream: Stream,
    n: int,
    start: float = 0.0,
) -> _t.List[float]:
    """Materialize the first ``n`` arrival instants of a process."""
    if n < 0:
        raise ValueError("n must be non-negative")
    times: _t.List[float] = []
    now = start
    for _ in range(n):
        now += process.next_interarrival(stream)
        times.append(now)
    return times
