"""Key-popularity models: which keys a task touches.

Real key-value workloads are skewed (a few hot keys absorb much of the
traffic); skew concentrates load on the replica groups owning hot
partitions, which is exactly the regime where task-aware scheduling and
load-aware replica selection matter.  Keys are integers in ``[0, n_keys)``;
the cluster's partitioner maps them onto replica groups.
"""

from __future__ import annotations

import typing as _t

from ..sim.rng import Stream


class PopularityModel:
    """Interface: ``sample_key(stream) -> int`` in ``[0, n_keys)``."""

    n_keys: int

    def sample_key(self, stream: Stream) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def sample_block(self, stream: Stream, n: int) -> _t.List[int]:
        """Pre-draw ``n`` keys in one call.

        Byte-identical to ``n`` sequential :meth:`sample_key` calls (it
        *is* ``n`` sequential calls, with the dispatch hoisted out of the
        caller).  The task generator buffers popularity draws through
        this so a trace pays the model dispatch once per block.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        draw = self.sample_key
        return [draw(stream) for _ in range(n)]

    def sample_distinct(
        self,
        stream: Stream,
        count: int,
        next_key: _t.Optional[_t.Callable[[], int]] = None,
    ) -> _t.List[int]:
        """Draw ``count`` *distinct* keys (a task never re-reads a key).

        Falls back to sequential fill if the keyspace is nearly exhausted,
        which keeps the method total for tiny test keyspaces.

        ``next_key`` optionally overrides where draws come from -- the
        task generator passes its block-buffered drawer so there is
        exactly ONE copy of this algorithm (attempt limit, dense
        fallback, set insertion order) and buffering cannot fork the
        fixed-seed determinism.  A ``next_key`` source must produce the
        same sequence ``self.sample_key(stream)`` would.
        """
        if count > self.n_keys:
            raise ValueError(f"cannot draw {count} distinct keys from {self.n_keys}")
        draw = next_key if next_key is not None else (
            lambda: self.sample_key(stream)
        )
        seen: _t.Set[int] = set()
        attempts = 0
        limit = 20 * count + 100
        while len(seen) < count and attempts < limit:
            seen.add(draw())
            attempts += 1
        if len(seen) < count:
            # Dense fallback: fill with the coldest unused keys.
            for key in range(self.n_keys):
                if key not in seen:
                    seen.add(key)
                    if len(seen) == count:
                        break
        return list(seen)


class UniformPopularity(PopularityModel):
    """All keys equally likely."""

    def __init__(self, n_keys: int) -> None:
        if n_keys <= 0:
            raise ValueError("n_keys must be positive")
        self.n_keys = int(n_keys)

    def sample_key(self, stream: Stream) -> int:
        return stream.randrange(self.n_keys)

    def __repr__(self) -> str:
        return f"UniformPopularity({self.n_keys})"


class ZipfPopularity(PopularityModel):
    """Zipf-distributed ranks mapped to a seeded permutation of the keyspace.

    The permutation decouples popularity rank from key id, so hot keys are
    spread across partitions the way a real hash-partitioned store would
    see them (otherwise all hot keys would land in partition 0).
    """

    def __init__(self, n_keys: int, skew: float = 0.9, perm_seed: int = 1234) -> None:
        if n_keys <= 0:
            raise ValueError("n_keys must be positive")
        if skew <= 0:
            raise ValueError("skew must be positive")
        self.n_keys = int(n_keys)
        self.skew = float(skew)
        perm_stream = Stream(perm_seed, "zipf-permutation")
        self._perm = list(range(self.n_keys))
        perm_stream.shuffle(self._perm)

    def sample_key(self, stream: Stream) -> int:
        rank = stream.zipf(self.n_keys, self.skew)
        return self._perm[rank]

    def __repr__(self) -> str:
        return f"ZipfPopularity(n_keys={self.n_keys}, skew={self.skew})"


class SubsetHotspotPopularity(PopularityModel):
    """Concentrate ``weight`` of the traffic on an explicit key subset.

    The placement-aware skew behind the ``hot-shard`` scenario: the hot
    subset is chosen as the keys one replica group owns (see
    :func:`repro.placement.keys_in_partitions`), so the heat lands on a
    *specific* replica set instead of spreading hash-uniformly the way
    :class:`ZipfPopularity`'s permutation deliberately does.  Draws
    outside the hot branch fall through to the base model (and may also
    hit hot keys; the subset's effective weight is therefore a floor).
    """

    def __init__(
        self,
        base: PopularityModel,
        hot_keys: _t.Sequence[int],
        weight: float = 0.5,
    ) -> None:
        if not hot_keys:
            raise ValueError("hot subset is empty")
        if not (0.0 < weight < 1.0):
            raise ValueError("weight must be in (0, 1)")
        for key in hot_keys:
            if not (0 <= key < base.n_keys):
                raise ValueError(f"hot key {key} outside base keyspace")
        self.base = base
        self.n_keys = base.n_keys
        self.hot_keys = list(hot_keys)
        self.weight = float(weight)

    def sample_key(self, stream: Stream) -> int:
        """Hot subset with probability ``weight``, else the base model."""
        if stream.random() < self.weight:
            return self.hot_keys[stream.randrange(len(self.hot_keys))]
        return self.base.sample_key(stream)

    def __repr__(self) -> str:
        return (
            f"SubsetHotspotPopularity(base={self.base!r}, "
            f"n_hot={len(self.hot_keys)}, weight={self.weight})"
        )


class HotColdPopularity(PopularityModel):
    """``hot_fraction`` of keys receive ``hot_weight`` of the traffic.

    A deliberately crude two-tier skew used by ablations to create
    controllable hotspots (e.g. 10% of keys get 90% of accesses).
    """

    def __init__(
        self,
        n_keys: int,
        hot_fraction: float = 0.1,
        hot_weight: float = 0.9,
        perm_seed: int = 99,
    ) -> None:
        if n_keys <= 1:
            raise ValueError("n_keys must be > 1")
        if not (0.0 < hot_fraction < 1.0):
            raise ValueError("hot_fraction must be in (0, 1)")
        if not (0.0 < hot_weight < 1.0):
            raise ValueError("hot_weight must be in (0, 1)")
        self.n_keys = int(n_keys)
        self.hot_fraction = float(hot_fraction)
        self.hot_weight = float(hot_weight)
        self.n_hot = max(1, int(round(n_keys * hot_fraction)))
        perm_stream = Stream(perm_seed, "hotcold-permutation")
        self._perm = list(range(self.n_keys))
        perm_stream.shuffle(self._perm)

    def sample_key(self, stream: Stream) -> int:
        if stream.random() < self.hot_weight:
            rank = stream.randrange(self.n_hot)
        else:
            rank = self.n_hot + stream.randrange(self.n_keys - self.n_hot)
        return self._perm[rank]

    def __repr__(self) -> str:
        return (
            f"HotColdPopularity(n_keys={self.n_keys}, "
            f"hot_fraction={self.hot_fraction}, hot_weight={self.hot_weight})"
        )
