"""Service-time model and capacity calibration.

The paper's setup: each server has 4 cores, "each operating at an average
service rate of 3500 requests/s", and the Poisson task arrival rate is "set
to match 70% of system capacity".  This module owns both calculations:

* :class:`ServiceTimeModel` -- maps a value size to a service time, split
  into a fixed per-request overhead and a size-proportional part, with
  optional multiplicative noise.  The *mean* service time under the
  configured value-size distribution is calibrated to ``1/3500`` s.
* :func:`task_arrival_rate_for_load` -- converts a target utilization into
  a task arrival rate given the mean fan-out.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim.rng import Stream
from .fanout import FanoutDistribution
from .valuesize import ValueSizeDistribution


@dataclasses.dataclass(frozen=True)
class ServiceTimeModel:
    """Linear size -> time model: ``t = overhead + size / bandwidth``.

    ``noise`` selects the stochastic component applied at the server:

    * ``"none"``        -- deterministic service times;
    * ``"exponential"`` -- multiply by an Exp(1) variate (heavy variability,
      mean preserved) -- the default, matching the paper's "average service
      rate" phrasing with an M/M-like server;
    * ``"lognormal"``   -- multiply by a LogNormal with mean 1 and
      ``noise_sigma`` (moderate variability).
    """

    overhead: float
    bandwidth: float  # bytes per second
    noise: str = "exponential"
    noise_sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ValueError("overhead must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.noise not in ("none", "exponential", "lognormal"):
            raise ValueError(f"unknown noise model {self.noise!r}")

    # -- deterministic (forecast) part --------------------------------------
    def expected_time(self, value_size: int) -> float:
        """Forecasted service time for a value of ``value_size`` bytes.

        This is what BRB clients use as the *cost* of a request: the paper
        forecasts service times "based on the size of the value".
        """
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        return self.overhead + value_size / self.bandwidth

    # -- stochastic (actual) part --------------------------------------------
    def sample_time(self, value_size: int, stream: Stream) -> float:
        """Actual service time drawn at the server."""
        # expected_time() inlined: this runs once per served request, and
        # the extra frame was measurable. Same expression, same float.
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        base = self.overhead + value_size / self.bandwidth
        if self.noise == "none":
            return base
        if self.noise == "exponential":
            return base * stream.expovariate(1.0)
        return base * stream.lognormal_mean(1.0, self.noise_sigma)

    def mean_time(self, mean_value_size: float) -> float:
        """Mean service time given the mean value size (noise has mean 1)."""
        if mean_value_size <= 0:
            raise ValueError("mean_value_size must be positive")
        return self.overhead + mean_value_size / self.bandwidth

    def service_rate(self, mean_value_size: float) -> float:
        """Mean requests/second a single core sustains."""
        return 1.0 / self.mean_time(mean_value_size)


def calibrate_service_model(
    value_sizes: ValueSizeDistribution,
    target_rate: float = 3500.0,
    overhead_fraction: float = 0.2,
    noise: str = "exponential",
    noise_sigma: float = 0.5,
) -> ServiceTimeModel:
    """Build a service model whose mean rate is ``target_rate`` req/s/core.

    ``overhead_fraction`` controls how much of the mean service time is the
    fixed per-request overhead (parsing, index lookup) versus the
    size-proportional transfer.  The paper pins only the aggregate rate
    (3500/s); the 20% default keeps small requests meaningfully cheaper
    than large ones, which is the asymmetry BRB's cost model exploits.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if not (0.0 <= overhead_fraction < 1.0):
        raise ValueError("overhead_fraction must be in [0, 1)")
    mean_time = 1.0 / target_rate
    overhead = mean_time * overhead_fraction
    mean_size = value_sizes.mean()
    bandwidth = mean_size / (mean_time - overhead)
    return ServiceTimeModel(
        overhead=overhead, bandwidth=bandwidth, noise=noise, noise_sigma=noise_sigma
    )


def system_capacity(
    n_servers: int, cores_per_server: int, per_core_rate: float
) -> float:
    """Aggregate request service capacity of the backend, requests/second."""
    if n_servers <= 0 or cores_per_server <= 0:
        raise ValueError("server counts must be positive")
    if per_core_rate <= 0:
        raise ValueError("per_core_rate must be positive")
    return n_servers * cores_per_server * per_core_rate


def task_arrival_rate_for_load(
    load: float,
    n_servers: int,
    cores_per_server: int,
    per_core_rate: float,
    mean_fanout: float,
) -> float:
    """Task arrival rate that drives the backend at ``load`` utilization.

    Each task contributes ``mean_fanout`` requests, so::

        rate_tasks = load * capacity_requests / mean_fanout
    """
    if not (0.0 < load):
        raise ValueError("load must be positive")
    if mean_fanout < 1.0:
        raise ValueError("mean fan-out must be >= 1")
    capacity = system_capacity(n_servers, cores_per_server, per_core_rate)
    return load * capacity / mean_fanout


def empirical_service_rate(
    model: ServiceTimeModel,
    value_sizes: ValueSizeDistribution,
    seed: int = 42,
    n: int = 100_000,
) -> float:
    """Monte-Carlo check of the calibrated per-core service rate."""
    if n <= 0:
        raise ValueError("n must be positive")
    size_stream = Stream(seed, "calibration-sizes")
    noise_stream = Stream(seed + 1, "calibration-noise")
    total = 0.0
    for _ in range(n):
        size = value_sizes.sample(size_stream)
        total += model.sample_time(size, noise_stream)
    return n / total
