"""Task and operation models, and the generator that assembles them.

A *task* is the unit end-user request (the paper's terminology): it fans
out into *operations* (individual key reads).  The cluster later groups a
task's operations into *sub-tasks* -- one per replica group -- which is
where BRB's priority assignment happens.
"""

from __future__ import annotations

import typing as _t

from .._compat import slots_dataclass
from ..sim.rng import Stream
from .arrivals import ArrivalProcess
from .fanout import FanoutDistribution
from .popularity import PopularityModel
from .valuesize import ValueSizeDistribution


@slots_dataclass(frozen=True)
class Operation:
    """A single key read within a task."""

    #: Id unique within the whole trace (assigned by the generator).
    op_id: int
    #: Id of the task this operation belongs to.
    task_id: int
    #: The key being read.
    key: int
    #: Size of the value stored under ``key``, in bytes.
    value_size: int

    def __post_init__(self) -> None:
        if self.value_size <= 0:
            raise ValueError(f"operation {self.op_id}: value_size must be positive")


@slots_dataclass(frozen=True)
class Task:
    """A batched end-user request: a set of operations issued together."""

    task_id: int
    #: Virtual time at which the task arrives at its client.
    arrival_time: float
    #: Index of the client (application server) that receives the task.
    client_id: int
    operations: _t.Tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError(f"task {self.task_id} has no operations")
        if self.arrival_time < 0:
            raise ValueError(f"task {self.task_id}: negative arrival time")

    @property
    def fanout(self) -> int:
        """Number of operations in the task."""
        return len(self.operations)

    @property
    def total_bytes(self) -> int:
        """Sum of the value sizes the task will read."""
        return sum(op.value_size for op in self.operations)

    def keys(self) -> _t.List[int]:
        return [op.key for op in self.operations]


class ValueSizeRegistry:
    """Consistent key -> value size mapping.

    A key's value size is drawn once (from the configured distribution,
    seeded by the key itself) and reused on every subsequent access -- the
    same key cannot be 100 bytes in one task and 1 MB in the next.  This
    consistency is what lets clients *forecast* service times from value
    sizes, the information BRB's cost model relies on.
    """

    def __init__(self, distribution: ValueSizeDistribution, seed: int) -> None:
        self.distribution = distribution
        self.seed = int(seed)
        self._sizes: _t.Dict[int, int] = {}

    def size_of(self, key: int) -> int:
        size = self._sizes.get(key)
        if size is None:
            key_stream = Stream(self.seed ^ (key * 0x9E3779B97F4A7C15 % (1 << 61)), f"value:{key}")
            size = self.distribution.sample(key_stream)
            self._sizes[key] = size
        return size

    def __len__(self) -> int:
        return len(self._sizes)


#: Draws buffered per stream by the task generator.  Purely an
#: amortization knob: block draws are byte-identical to per-call draws
#: (each stream is dedicated to one purpose, so drawing ahead is
#: invisible), the size only trades memory for dispatch overhead.
ARRIVAL_BLOCK = 256


class TaskGenerator:
    """Assembles tasks from fan-out, popularity, value-size and arrivals.

    Deterministic given its streams: the same (config, seed) produces the
    same trace, and strategy-internal randomness cannot perturb it (streams
    are dedicated -- see :mod:`repro.sim.rng`).

    Arrival gaps, popularity draws and client ids are pre-drawn in blocks
    of :data:`ARRIVAL_BLOCK` (see ``docs/performance.md``); because every
    stream serves exactly one purpose, buffering ahead cannot change any
    draw another component sees, and the blocks themselves are produced by
    the same sequential calls the unbuffered generator made.
    """

    def __init__(
        self,
        fanout: FanoutDistribution,
        popularity: PopularityModel,
        value_sizes: ValueSizeRegistry,
        arrivals: ArrivalProcess,
        n_clients: int,
        streams: "_StreamsLike",
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        self.fanout = fanout
        self.popularity = popularity
        self.value_sizes = value_sizes
        self.arrivals = arrivals
        self.n_clients = int(n_clients)
        self._fanout_stream = streams.stream("workload.fanout")
        self._key_stream = streams.stream("workload.keys")
        self._arrival_stream = streams.stream("workload.arrivals")
        self._client_stream = streams.stream("workload.clients")
        self._next_task_id = 0
        self._next_op_id = 0
        self._clock = 0.0
        # Per-stream block buffers (list + cursor), refilled on demand.
        # Each buffer remembers which source object filled it; a mid-run
        # reassignment of self.popularity / self.arrivals / self.n_clients
        # invalidates the stale draws instead of serving up to a block of
        # the old model's values.
        self._gap_buffer: _t.List[float] = []
        self._gap_pos = 0
        self._gap_source: _t.Optional[ArrivalProcess] = None
        self._key_buffer: _t.List[int] = []
        self._key_pos = 0
        self._key_source: _t.Optional[PopularityModel] = None
        self._client_buffer: _t.List[int] = []
        self._client_pos = 0
        self._client_source = self.n_clients

    def _draw_key_buffered(self) -> int:
        """One popularity draw from the pre-drawn block (refilling it).

        Produces exactly the sequence ``popularity.sample_key(stream)``
        would -- the blocks are built by those same sequential calls --
        so handing this to :meth:`PopularityModel.sample_distinct` as the
        draw source keeps one single copy of the distinct-key algorithm.
        """
        pos = self._key_pos
        buf = self._key_buffer
        if pos >= len(buf):
            buf = self._key_buffer = self.popularity.sample_block(
                self._key_stream, ARRIVAL_BLOCK
            )
            pos = 0
        self._key_pos = pos + 1
        return buf[pos]

    def _distinct_keys(self, count: int) -> _t.List[int]:
        """``count`` distinct keys via the buffered draw source."""
        popularity = self.popularity
        if popularity is not self._key_source:
            self._key_buffer = []
            self._key_pos = 0
            self._key_source = popularity
        return popularity.sample_distinct(
            self._key_stream, count, next_key=self._draw_key_buffered
        )

    def next_task(self) -> Task:
        """Generate the next task in arrival order."""
        pos = self._gap_pos
        if pos >= len(self._gap_buffer) or self.arrivals is not self._gap_source:
            self._gap_source = self.arrivals
            self._gap_buffer = self.arrivals.interarrival_block(
                self._arrival_stream, ARRIVAL_BLOCK
            )
            pos = 0
        self._gap_pos = pos + 1
        self._clock += self._gap_buffer[pos]

        fanout = self.fanout.sample(self._fanout_stream)
        popularity = self.popularity
        fanout = min(fanout, popularity.n_keys)
        # A model that *overrides* sample_distinct has its own semantics
        # and is called without the buffered draw source -- checked per
        # task so late reassignment of self.popularity is honored too.
        if type(popularity).sample_distinct is PopularityModel.sample_distinct:
            keys = self._distinct_keys(fanout)
        else:
            keys = popularity.sample_distinct(self._key_stream, fanout)
        task_id = self._next_task_id
        self._next_task_id += 1
        ops = []
        append = ops.append
        size_of = self.value_sizes.size_of
        op_id = self._next_op_id
        for key in keys:
            append(
                Operation(
                    op_id=op_id,
                    task_id=task_id,
                    key=key,
                    value_size=size_of(key),
                )
            )
            op_id += 1
        self._next_op_id = op_id

        pos = self._client_pos
        n = self.n_clients
        if pos >= len(self._client_buffer) or n != self._client_source:
            self._client_source = n
            draw = self._client_stream.randrange
            self._client_buffer = [draw(n) for _ in range(ARRIVAL_BLOCK)]
            pos = 0
        self._client_pos = pos + 1
        return Task(
            task_id=task_id,
            arrival_time=self._clock,
            client_id=self._client_buffer[pos],
            operations=tuple(ops),
        )

    def generate(self, n_tasks: int) -> _t.List[Task]:
        """Materialize a trace of ``n_tasks`` tasks."""
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        return [self.next_task() for _ in range(n_tasks)]


class _StreamsLike(_t.Protocol):  # pragma: no cover - typing helper
    def stream(self, name: str) -> Stream: ...


def trace_stats(tasks: _t.Sequence[Task]) -> _t.Dict[str, float]:
    """Summary statistics of a trace (used by tests and EXPERIMENTS.md)."""
    if not tasks:
        raise ValueError("empty trace")
    n_ops = sum(t.fanout for t in tasks)
    total_bytes = sum(t.total_bytes for t in tasks)
    duration = tasks[-1].arrival_time - tasks[0].arrival_time
    return {
        "n_tasks": float(len(tasks)),
        "n_operations": float(n_ops),
        "mean_fanout": n_ops / len(tasks),
        "max_fanout": float(max(t.fanout for t in tasks)),
        "mean_value_size": total_bytes / n_ops,
        "duration": duration,
        "task_rate": (len(tasks) - 1) / duration if duration > 0 else float("inf"),
    }
