"""Task and operation models, and the generator that assembles them.

A *task* is the unit end-user request (the paper's terminology): it fans
out into *operations* (individual key reads).  The cluster later groups a
task's operations into *sub-tasks* -- one per replica group -- which is
where BRB's priority assignment happens.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..sim.rng import Stream
from .arrivals import ArrivalProcess
from .fanout import FanoutDistribution
from .popularity import PopularityModel
from .valuesize import ValueSizeDistribution


@dataclasses.dataclass(frozen=True)
class Operation:
    """A single key read within a task."""

    #: Id unique within the whole trace (assigned by the generator).
    op_id: int
    #: Id of the task this operation belongs to.
    task_id: int
    #: The key being read.
    key: int
    #: Size of the value stored under ``key``, in bytes.
    value_size: int

    def __post_init__(self) -> None:
        if self.value_size <= 0:
            raise ValueError(f"operation {self.op_id}: value_size must be positive")


@dataclasses.dataclass(frozen=True)
class Task:
    """A batched end-user request: a set of operations issued together."""

    task_id: int
    #: Virtual time at which the task arrives at its client.
    arrival_time: float
    #: Index of the client (application server) that receives the task.
    client_id: int
    operations: _t.Tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError(f"task {self.task_id} has no operations")
        if self.arrival_time < 0:
            raise ValueError(f"task {self.task_id}: negative arrival time")

    @property
    def fanout(self) -> int:
        """Number of operations in the task."""
        return len(self.operations)

    @property
    def total_bytes(self) -> int:
        """Sum of the value sizes the task will read."""
        return sum(op.value_size for op in self.operations)

    def keys(self) -> _t.List[int]:
        return [op.key for op in self.operations]


class ValueSizeRegistry:
    """Consistent key -> value size mapping.

    A key's value size is drawn once (from the configured distribution,
    seeded by the key itself) and reused on every subsequent access -- the
    same key cannot be 100 bytes in one task and 1 MB in the next.  This
    consistency is what lets clients *forecast* service times from value
    sizes, the information BRB's cost model relies on.
    """

    def __init__(self, distribution: ValueSizeDistribution, seed: int) -> None:
        self.distribution = distribution
        self.seed = int(seed)
        self._sizes: _t.Dict[int, int] = {}

    def size_of(self, key: int) -> int:
        size = self._sizes.get(key)
        if size is None:
            key_stream = Stream(self.seed ^ (key * 0x9E3779B97F4A7C15 % (1 << 61)), f"value:{key}")
            size = self.distribution.sample(key_stream)
            self._sizes[key] = size
        return size

    def __len__(self) -> int:
        return len(self._sizes)


class TaskGenerator:
    """Assembles tasks from fan-out, popularity, value-size and arrivals.

    Deterministic given its streams: the same (config, seed) produces the
    same trace, and strategy-internal randomness cannot perturb it (streams
    are dedicated -- see :mod:`repro.sim.rng`).
    """

    def __init__(
        self,
        fanout: FanoutDistribution,
        popularity: PopularityModel,
        value_sizes: ValueSizeRegistry,
        arrivals: ArrivalProcess,
        n_clients: int,
        streams: "_StreamsLike",
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        self.fanout = fanout
        self.popularity = popularity
        self.value_sizes = value_sizes
        self.arrivals = arrivals
        self.n_clients = int(n_clients)
        self._fanout_stream = streams.stream("workload.fanout")
        self._key_stream = streams.stream("workload.keys")
        self._arrival_stream = streams.stream("workload.arrivals")
        self._client_stream = streams.stream("workload.clients")
        self._next_task_id = 0
        self._next_op_id = 0
        self._clock = 0.0

    def next_task(self) -> Task:
        """Generate the next task in arrival order."""
        self._clock += self.arrivals.next_interarrival(self._arrival_stream)
        fanout = self.fanout.sample(self._fanout_stream)
        fanout = min(fanout, self.popularity.n_keys)
        keys = self.popularity.sample_distinct(self._key_stream, fanout)
        task_id = self._next_task_id
        self._next_task_id += 1
        ops = []
        for key in keys:
            ops.append(
                Operation(
                    op_id=self._next_op_id,
                    task_id=task_id,
                    key=key,
                    value_size=self.value_sizes.size_of(key),
                )
            )
            self._next_op_id += 1
        return Task(
            task_id=task_id,
            arrival_time=self._clock,
            client_id=self._client_stream.randrange(self.n_clients),
            operations=tuple(ops),
        )

    def generate(self, n_tasks: int) -> _t.List[Task]:
        """Materialize a trace of ``n_tasks`` tasks."""
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        return [self.next_task() for _ in range(n_tasks)]


class _StreamsLike(_t.Protocol):  # pragma: no cover - typing helper
    def stream(self, name: str) -> Stream: ...


def trace_stats(tasks: _t.Sequence[Task]) -> _t.Dict[str, float]:
    """Summary statistics of a trace (used by tests and EXPERIMENTS.md)."""
    if not tasks:
        raise ValueError("empty trace")
    n_ops = sum(t.fanout for t in tasks)
    total_bytes = sum(t.total_bytes for t in tasks)
    duration = tasks[-1].arrival_time - tasks[0].arrival_time
    return {
        "n_tasks": float(len(tasks)),
        "n_operations": float(n_ops),
        "mean_fanout": n_ops / len(tasks),
        "max_fanout": float(max(t.fanout for t in tasks)),
        "mean_value_size": total_bytes / n_ops,
        "duration": duration,
        "task_rate": (len(tasks) - 1) / duration if duration > 0 else float("inf"),
    }
