"""Task fan-out distributions (number of data-store requests per task).

The paper's SoundCloud trace has an *average* fan-out of 8.6 requests per
task (e.g. "all tracks in a playlist").  The trace itself is proprietary,
so we model fan-out with parametric distributions whose mean we pin to the
published value; the SoundCloud-like generator uses a heavy-tailed mixture
(most tasks are small, a few fan out to hundreds of keys -- long playlists).
"""

from __future__ import annotations

import math
import typing as _t

from ..sim.rng import Stream


class FanoutDistribution:
    """Interface: ``sample(stream) -> int >= 1`` plus the analytic mean."""

    def sample(self, stream: Stream) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class FixedFanout(FanoutDistribution):
    """Every task has exactly ``n`` requests."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("fan-out must be >= 1")
        self.n = int(n)

    def sample(self, stream: Stream) -> int:
        return self.n

    def mean(self) -> float:
        return float(self.n)

    def __repr__(self) -> str:
        return f"FixedFanout({self.n})"


class UniformFanout(FanoutDistribution):
    """Uniform integer fan-out in ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int) -> None:
        if not (1 <= lo <= hi):
            raise ValueError("need 1 <= lo <= hi")
        self.lo = int(lo)
        self.hi = int(hi)

    def sample(self, stream: Stream) -> int:
        return stream.randint(self.lo, self.hi)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformFanout({self.lo}, {self.hi})"


class GeometricFanout(FanoutDistribution):
    """Shifted geometric fan-out: ``1 + Geom(p)`` with mean ``target_mean``.

    Memoryless "keep adding one more item" model; the lightest-tailed of
    the realistic choices.
    """

    def __init__(self, target_mean: float) -> None:
        if target_mean <= 1.0:
            raise ValueError("mean fan-out must exceed 1")
        self.target_mean = float(target_mean)
        #: success probability such that E[1 + G] = target_mean
        self.p = 1.0 / (self.target_mean - 0.0)

    def sample(self, stream: Stream) -> int:
        # Inverse-CDF geometric on {1, 2, ...} with mean target_mean.
        u = stream.random()
        q = 1.0 - 1.0 / self.target_mean
        if q <= 0.0:
            return 1
        return max(1, 1 + int(math.floor(math.log(u) / math.log(q))))

    def mean(self) -> float:
        return self.target_mean

    def __repr__(self) -> str:
        return f"GeometricFanout(mean={self.target_mean})"


class LogNormalFanout(FanoutDistribution):
    """Log-normal fan-out rounded up, clamped to ``[1, cap]``.

    ``sigma`` controls the tail: sigma ~1.0 gives the "mostly small tasks,
    occasional huge playlist" shape seen in fan-out studies.  The arithmetic
    mean of the *continuous* distribution is pinned to ``target_mean``;
    rounding and clamping perturb it slightly (< 3% for the defaults), and
    :func:`calibrated_lognormal` removes even that bias numerically.
    """

    def __init__(self, target_mean: float, sigma: float = 1.0, cap: int = 1024) -> None:
        if target_mean <= 1.0:
            raise ValueError("mean fan-out must exceed 1")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if cap < 2:
            raise ValueError("cap must be >= 2")
        self.target_mean = float(target_mean)
        self.sigma = float(sigma)
        self.cap = int(cap)
        self.mu = math.log(self.target_mean) - 0.5 * sigma * sigma

    def sample(self, stream: Stream) -> int:
        x = stream.lognormvariate(self.mu, self.sigma)
        return max(1, min(self.cap, int(math.ceil(x))))

    def mean(self) -> float:
        return self.target_mean

    def __repr__(self) -> str:
        return (
            f"LogNormalFanout(mean={self.target_mean}, sigma={self.sigma}, "
            f"cap={self.cap})"
        )


class MixtureFanout(FanoutDistribution):
    """Weighted mixture of fan-out distributions.

    Lets the SoundCloud generator express "80% short profile fetches,
    20% playlist expansions".
    """

    def __init__(
        self, components: _t.Sequence[_t.Tuple[float, FanoutDistribution]]
    ) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(w for w, _ in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components = [(w / total, d) for w, d in components]

    def sample(self, stream: Stream) -> int:
        u = stream.random()
        acc = 0.0
        for weight, dist in self.components:
            acc += weight
            if u <= acc:
                return dist.sample(stream)
        return self.components[-1][1].sample(stream)  # numeric slack

    def mean(self) -> float:
        return sum(w * d.mean() for w, d in self.components)

    def __repr__(self) -> str:
        parts = ", ".join(f"{w:.3f}*{d!r}" for w, d in self.components)
        return f"MixtureFanout({parts})"


def empirical_mean(dist: FanoutDistribution, stream: Stream, n: int = 50_000) -> float:
    """Monte-Carlo mean of a fan-out distribution (calibration helper)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return sum(dist.sample(stream) for _ in range(n)) / n


def calibrated_lognormal(
    target_mean: float,
    sigma: float = 1.0,
    cap: int = 1024,
    seed: int = 7,
    tolerance: float = 0.01,
) -> LogNormalFanout:
    """Log-normal fan-out whose *post-rounding* empirical mean hits target.

    Rounding-up and capping bias the discrete mean away from the continuous
    one; this adjusts the underlying continuous mean by bisection until the
    empirical mean is within ``tolerance`` (relative).
    """
    lo, hi = max(1.01, target_mean / 2.0), target_mean * 2.0
    stream = Stream(seed, "fanout-calibration")
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        dist = LogNormalFanout(mid, sigma=sigma, cap=cap)
        m = empirical_mean(dist, Stream(seed, "fanout-calibration"), n=40_000)
        if abs(m - target_mean) / target_mean <= tolerance:
            dist.target_mean = target_mean  # report the calibrated intent
            return dist
        if m > target_mean:
            hi = mid
        else:
            lo = mid
    raise RuntimeError(
        f"fan-out calibration failed: target={target_mean}, sigma={sigma}"
    )
