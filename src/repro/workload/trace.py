"""Trace serialization: save and reload generated workloads.

Traces are stored as JSON-lines: a single header record followed by one
record per task.  The format is deliberately simple so traces can be
inspected with standard tools and diffed across library versions.
"""

from __future__ import annotations

import json
import typing as _t
from pathlib import Path

from .tasks import Operation, Task

FORMAT_VERSION = 1


def _task_record(task: Task) -> _t.Dict[str, _t.Any]:
    return {
        "task_id": task.task_id,
        "arrival_time": task.arrival_time,
        "client_id": task.client_id,
        "ops": [[op.op_id, op.key, op.value_size] for op in task.operations],
    }


def _task_from_record(record: _t.Mapping[str, _t.Any]) -> Task:
    task_id = int(record["task_id"])
    ops = tuple(
        Operation(
            op_id=int(op_id),
            task_id=task_id,
            key=int(key),
            value_size=int(size),
        )
        for op_id, key, size in record["ops"]
    )
    return Task(
        task_id=task_id,
        arrival_time=float(record["arrival_time"]),
        client_id=int(record["client_id"]),
        operations=ops,
    )


def save_trace(
    path: _t.Union[str, Path],
    tasks: _t.Sequence[Task],
    metadata: _t.Optional[_t.Mapping[str, _t.Any]] = None,
) -> None:
    """Write a trace (with optional metadata) as JSON lines."""
    path = Path(path)
    header = {
        "format": "repro-trace",
        "version": FORMAT_VERSION,
        "n_tasks": len(tasks),
        "metadata": dict(metadata or {}),
    }
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for task in tasks:
            fh.write(json.dumps(_task_record(task)) + "\n")


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or of an unsupported version."""


def load_trace(
    path: _t.Union[str, Path]
) -> _t.Tuple[_t.List[Task], _t.Dict[str, _t.Any]]:
    """Read a trace; returns ``(tasks, metadata)``.

    Raises :class:`TraceFormatError` on malformed input so callers can
    distinguish a bad file from an I/O problem.
    """
    path = Path(path)
    tasks: _t.List[Task] = []
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceFormatError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: bad header: {exc}") from exc
        if header.get("format") != "repro-trace":
            raise TraceFormatError(f"{path}: not a repro trace file")
        if header.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported trace version {header.get('version')!r}"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                tasks.append(_task_from_record(record))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: bad task record: {exc}") from exc
    declared = header.get("n_tasks")
    if declared is not None and declared != len(tasks):
        raise TraceFormatError(
            f"{path}: header declares {declared} tasks, found {len(tasks)}"
        )
    return tasks, dict(header.get("metadata", {}))
