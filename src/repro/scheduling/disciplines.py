"""Server-side queue disciplines.

A discipline maps a :class:`~repro.cluster.messages.RequestMessage` to a
sort key; the server's priority store serves smaller keys first and breaks
ties FIFO (arrival order).  The discipline is the only thing that differs
between a task-oblivious server (FIFO) and a BRB server (PRIORITY fed by
client-assigned EqualMax/UnifIncr priorities).
"""

from __future__ import annotations

import typing as _t
from itertools import count

from ..cluster.messages import RequestMessage


class Discipline:
    """Interface: ``key(request, now) -> orderable`` (smaller first)."""

    name: str = "abstract"

    def key(self, request: RequestMessage, now: float) -> _t.Tuple[float, ...]:
        raise NotImplementedError  # pragma: no cover - abstract


class FifoDiscipline(Discipline):
    """First-come first-served: key is the enqueue sequence number."""

    name = "fifo"

    def __init__(self) -> None:
        self._seq = count()

    def key(self, request: RequestMessage, now: float) -> _t.Tuple[float, ...]:
        return (float(next(self._seq)),)


class SjfDiscipline(Discipline):
    """Shortest-Job-First on the *individual* request's forecast cost.

    Task-oblivious size-aware scheduling -- the natural straw-man between
    FIFO and BRB: it knows request sizes but not task structure.
    """

    name = "sjf"

    def key(self, request: RequestMessage, now: float) -> _t.Tuple[float, ...]:
        return (request.expected_service,)


class EdfDiscipline(Discipline):
    """Earliest-Deadline-First using the task's bottleneck as the deadline.

    The deadline of a request is ``created_at + bottleneck_cost``: the
    earliest time its task could possibly complete.  An alternative
    task-aware discipline used in the ablations.
    """

    name = "edf"

    def key(self, request: RequestMessage, now: float) -> _t.Tuple[float, ...]:
        return (request.created_at + request.bottleneck_cost,)


class PriorityDiscipline(Discipline):
    """Serve by the client-assigned priority tuple (BRB's discipline)."""

    name = "priority"

    def key(self, request: RequestMessage, now: float) -> _t.Tuple[float, ...]:
        return tuple(request.priority)


_DISCIPLINES: _t.Dict[str, _t.Callable[[], Discipline]] = {
    "fifo": FifoDiscipline,
    "sjf": SjfDiscipline,
    "edf": EdfDiscipline,
    "priority": PriorityDiscipline,
}


def make_discipline(name: str) -> Discipline:
    """Factory by name; raises ValueError on unknown disciplines."""
    try:
        factory = _DISCIPLINES[name]
    except KeyError:
        raise ValueError(
            f"unknown discipline {name!r}; known: {sorted(_DISCIPLINES)}"
        ) from None
    return factory()
