"""Server-side queue disciplines (FIFO, SJF, EDF, priority)."""

from .disciplines import (
    Discipline,
    EdfDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
    SjfDiscipline,
    make_discipline,
)

__all__ = [
    "Discipline",
    "EdfDiscipline",
    "FifoDiscipline",
    "PriorityDiscipline",
    "SjfDiscipline",
    "make_discipline",
]
