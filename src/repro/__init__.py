"""repro -- reproduction of *BRB: BetteR Batch Scheduling to Reduce Tail
Latencies in Cloud Data Stores* (Reda, Suresh, Canini, Braithwaite --
ACM SIGCOMM 2015).

The package is layered bottom-up:

* :mod:`repro.sim` -- deterministic discrete-event kernel (virtual time).
* :mod:`repro.metrics` -- histograms, samples, percentile summaries.
* :mod:`repro.workload` -- fan-outs, Pareto value sizes, Poisson arrivals,
  the SoundCloud-like trace generator and capacity calibration.
* :mod:`repro.cluster` -- the replicated/partitioned data-store substrate:
  multi-core servers, clients, network, placement.
* :mod:`repro.scheduling` -- server queue disciplines.
* :mod:`repro.baselines` -- replica selectors incl. the C3 baseline.
* :mod:`repro.core` -- the paper's contribution: task-aware splitting,
  EqualMax / UnifIncr priorities, the credits realization and the ideal
  global-queue model.
* :mod:`repro.harness` / :mod:`repro.analysis` -- experiment configs, the
  strategy-builder registry, runner, aggregation and report rendering.
* :mod:`repro.scenarios` -- named workload scenarios composing config
  overrides with scripted fault schedules.

Quickstart::

    from repro.harness import ExperimentConfig, run_experiment

    result = run_experiment(
        ExperimentConfig(strategy="unifincr-credits", n_tasks=5000), seed=1
    )
    print(result.summary((50.0, 95.0, 99.0)))
"""

from . import (
    analysis,
    baselines,
    cluster,
    core,
    harness,
    metrics,
    scenarios,
    scheduling,
    sim,
    workload,
)
from .harness import (
    ExperimentConfig,
    figure1_toy,
    figure2,
    run_experiment,
    run_seeds,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "__version__",
    "analysis",
    "baselines",
    "cluster",
    "core",
    "figure1_toy",
    "figure2",
    "harness",
    "metrics",
    "run_experiment",
    "run_seeds",
    "scenarios",
    "scheduling",
    "sim",
    "workload",
]
