"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        run one experiment (optionally a named scenario)
``figure1``    the paper's toy example (deterministic)
``figure2``    the headline evaluation across strategies and seeds
``trace``      generate / inspect workload traces
``strategies`` list the registered strategy builders
``scenarios``  list the registered workload scenarios
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from .analysis import grouped_bar_chart, percentile_matrix, ratio_table, render_table
from .harness import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    KNOWN_STRATEGIES,
    figure1_toy,
    figure2,
    figure2_series,
    get_builder,
    run_experiment,
)
from .metrics import PAPER_PERCENTILES
from .scenarios import SCENARIOS, get_scenario, scenario_names
from .workload import load_trace, make_soundcloud_workload, save_trace, trace_stats


def _add_run(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("run", help="run a single experiment")
    p.add_argument("--strategy", default="unifincr-credits", choices=KNOWN_STRATEGIES)
    p.add_argument("--scenario", default=None, choices=scenario_names(),
                   help="run a named scenario (workload + fault schedule)")
    p.add_argument("--tasks", type=int, default=5000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--load", type=float, default=None,
                   help="offered load as a fraction of capacity")
    p.add_argument("--fanout", type=float, default=None,
                   help="mean requests per task")
    p.add_argument("--slow-server", type=int, default=None,
                   help="inject a 3x slowdown on this server id")
    p.set_defaults(func=_cmd_run)


def _cmd_run(args: argparse.Namespace) -> int:
    overrides: _t.Dict[str, _t.Any] = {}
    if args.load is not None:
        overrides["load"] = args.load
    if args.fanout is not None:
        overrides["mean_fanout"] = args.fanout
    if args.slow_server is not None:
        overrides["slowdown_server"] = args.slow_server
    if args.scenario is not None:
        config = get_scenario(args.scenario).build_config(
            strategy=args.strategy, n_tasks=args.tasks, **overrides
        )
    else:
        config = ExperimentConfig(
            strategy=args.strategy, n_tasks=args.tasks, **overrides
        )
    print(f"running {config.describe()} (seed {args.seed})")
    for line in config.faults().describe():
        print(f"  fault: {line}")
    result = run_experiment(config, seed=args.seed)
    print(result.summary((50.0, 90.0, 95.0, 99.0, 99.9)))
    rows = [{"metric": k, "value": v} for k, v in sorted(result.extras.items())]
    rows.append({"metric": "events_processed", "value": result.events_processed})
    rows.append({"metric": "sim_duration_s", "value": result.sim_duration})
    print(render_table(rows))
    return 0


def _add_figure1(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("figure1", help="the paper's toy schedule")
    p.set_defaults(func=_cmd_figure1)


def _cmd_figure1(args: argparse.Namespace) -> int:
    oblivious = figure1_toy(task_aware=False)
    aware = figure1_toy(task_aware=True)
    rows = [
        {"schedule": "task-oblivious", "T1": oblivious.t1_completion,
         "T2": oblivious.t2_completion},
        {"schedule": "task-aware", "T1": aware.t1_completion,
         "T2": aware.t2_completion},
    ]
    print(render_table(rows, title="Figure 1 (completion in service units)",
                       float_fmt=".1f"))
    return 0


def _add_figure2(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("figure2", help="reproduce the evaluation figure")
    p.add_argument("--tasks", type=int, default=12_000)
    p.add_argument("--seeds", type=int, default=3)
    p.add_argument("--out", type=str, default=None, help="raw JSON output path")
    p.set_defaults(func=_cmd_figure2)


def _cmd_figure2(args: argparse.Namespace) -> int:
    comparison = figure2(
        n_tasks=args.tasks, seeds=tuple(range(1, args.seeds + 1))
    )
    summaries = {n: comparison.summary_of(n) for n in FIGURE2_STRATEGIES}
    print(percentile_matrix(
        {n: s.percentiles for n, s in summaries.items()},
        percentiles=PAPER_PERCENTILES,
    ))
    print()
    print(grouped_bar_chart(figure2_series(comparison),
                            title="Figure 2 -- task read latency (ms)"))
    print()
    print(ratio_table(comparison.speedup("c3", "equalmax-credits"),
                      label="C3 / EqualMax-credits"))
    if args.out:
        comparison.save_json(args.out)
        print(f"raw results -> {args.out}")
    return 0


def _add_trace(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("trace", help="generate or inspect traces")
    sub = p.add_subparsers(dest="trace_command", required=True)

    gen = sub.add_parser("generate", help="synthesize a SoundCloud-like trace")
    gen.add_argument("path")
    gen.add_argument("--tasks", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--fanout", type=float, default=8.6)
    gen.set_defaults(func=_cmd_trace_generate)

    stats = sub.add_parser("stats", help="print statistics of a saved trace")
    stats.add_argument("path")
    stats.set_defaults(func=_cmd_trace_stats)


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    workload = make_soundcloud_workload(
        n_tasks=args.tasks, mean_fanout=args.fanout
    )
    trace = workload.generate(seed=args.seed)
    save_trace(args.path, trace, metadata={"seed": args.seed})
    print(f"wrote {len(trace)} tasks to {args.path}")
    return 0


def _add_strategies(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("strategies", help="list registered strategies")
    p.set_defaults(func=_cmd_strategies)


def _cmd_strategies(args: argparse.Namespace) -> int:
    for name in KNOWN_STRATEGIES:
        marker = "*" if name in FIGURE2_STRATEGIES else " "
        description = get_builder(name).description
        print(f" {marker} {name:20s} {description}")
    print("\n * = plotted in the paper's Figure 2")
    return 0


def _add_scenarios(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("scenarios", help="list registered scenarios")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="show overrides and fault schedules")
    p.set_defaults(func=_cmd_scenarios)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    for name in SCENARIOS:
        spec = SCENARIOS[name]
        if args.verbose:
            print(spec.describe())
        else:
            faults = len(spec.faults)
            tag = f" ({faults} fault event{'s' if faults != 1 else ''})" if faults else ""
            print(f"  {name:24s} {spec.summary}{tag}")
    print("\nrun one with: python -m repro run --scenario <name>")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    tasks, metadata = load_trace(args.path)
    print(f"metadata: {metadata}")
    rows = [{"metric": k, "value": v} for k, v in trace_stats(tasks).items()]
    print(render_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BRB (SIGCOMM'15) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run(subparsers)
    _add_figure1(subparsers)
    _add_figure2(subparsers)
    _add_trace(subparsers)
    _add_strategies(subparsers)
    _add_scenarios(subparsers)
    return parser


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
