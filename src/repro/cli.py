"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        run one experiment (optionally a named scenario)
``profile``    cProfile one run and print the top-N hotspot table
``sweep``      run a (value x strategy x seed) grid, optionally in parallel
``figure1``    the paper's toy example (deterministic)
``figure2``    the headline evaluation across strategies and seeds
``serve``      start the live asyncio multiget KV service
``loadgen``    drive a live service with a scenario's workload + faults
``watch``      poll a live cluster's metrics mid-run (admin plane; ``--json``)
``firehose``   saturate a live service (wire-path throughput ceiling)
``compare``    sim vs live differential for one scenario
``trace``      workload traces + span-tree tail attribution (see below)

``run`` and ``loadgen`` accept ``--trace-sample`` / ``--trace-out`` to
record span trees for a deterministic sample of multigets; ``trace
attribution`` / ``trace slowest`` / ``trace diff`` analyse the resulting
JSONL artifacts (docs/observability.md has the full workflow).
``ring``       inspect / perturb the replica-placement ring
``cache``      inspect / clear the on-disk result cache
``strategies`` list the registered strategy builders
``scenarios``  list the registered workload scenarios (``--json`` for tools)
``docs-cli``   render (or verify) ``docs/cli.md`` from this argparse tree

Grid commands (``run`` with several seeds, ``sweep``, ``figure2``) accept
``--jobs N`` to fan independent simulation runs over ``N`` worker
processes and ``--cache [DIR]`` to reuse completed (config, strategy,
seed) cells from an on-disk cache; results are identical to serial runs
(see ``repro.harness.parallel``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import typing as _t

from .analysis import grouped_bar_chart, percentile_matrix, ratio_table, render_table
from .harness import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    KNOWN_STRATEGIES,
    ResultCache,
    compare_strategies,
    figure1_toy,
    figure2,
    figure2_series,
    get_builder,
    make_executor,
    run_seeds,
    sweep,
)
from .metrics import PAPER_PERCENTILES
from .scenarios import SCENARIOS, get_scenario, scenario_names
from .workload import load_trace, make_soundcloud_workload, save_trace, trace_stats


def _add_parallel_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="fan runs over N worker processes (0 = all cores; "
                        "default serial)")
    p.add_argument("--cache", nargs="?", const="", default=None, metavar="DIR",
                   help="reuse completed runs from an on-disk cache "
                        "(default dir: $REPRO_CACHE_DIR or ./.repro-cache)")


def _executor_from(args: argparse.Namespace):
    return make_executor(jobs=args.jobs, cache_dir=args.cache)


def _add_remediate_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--remediate", default=None,
                   choices=("off", "monitor", "slo"),
                   help="streamed-metrics mode: 'monitor' publishes bus "
                        "snapshots and counts SLO breach windows; 'slo' also "
                        "acts through the placement/credits/hedging levers "
                        "(see docs/observability.md)")
    p.add_argument("--slo-p99-ms", type=float, default=None, metavar="MS",
                   help="windowed-p99 target (model ms) for the SLO breach "
                        "detector (required with --remediate slo)")


def _remediation_overrides(args: argparse.Namespace) -> _t.Dict[str, _t.Any]:
    overrides: _t.Dict[str, _t.Any] = {}
    if args.remediate is not None:
        overrides["remediation"] = args.remediate
    if args.slo_p99_ms is not None:
        overrides["slo_p99_ms"] = args.slo_p99_ms
    return overrides


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-sample", type=float, default=None, metavar="RATE",
                   help="record span trees for this fraction of post-warmup "
                        "multigets (deterministic per task id; the schedule "
                        "is unchanged)")
    p.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                   help="write the sampled span trees as a JSONL trace "
                        "artifact for `repro trace attribution` (implies "
                        "--trace-sample 1.0 unless given)")


def _trace_overrides(args: argparse.Namespace) -> _t.Dict[str, _t.Any]:
    overrides: _t.Dict[str, _t.Any] = {}
    if args.trace_sample is not None:
        overrides["trace_sample"] = args.trace_sample
    elif args.trace_out is not None:
        overrides["trace_sample"] = 1.0
    return overrides


def _write_trace_artifact(
    path: str,
    config: ExperimentConfig,
    scenario: str,
    realm: str,
    seeds: _t.Sequence[int],
    results: _t.Sequence[_t.Any],
) -> None:
    """Append one meta + trace block per seed to a JSONL artifact."""
    from .trace import write_traces

    total = 0
    missing = 0
    for index, (seed, result) in enumerate(zip(seeds, results)):
        if result.traces is None:
            missing += 1
        total += write_traces(
            path,
            result.traces or (),
            meta={
                "strategy": config.strategy,
                "scenario": scenario,
                "seed": seed,
                "realm": realm,
                "sample": config.trace_sample,
                "n_tasks": config.n_tasks,
                "warmup_tasks": int(config.warmup_fraction * config.n_tasks),
            },
            append=index > 0,
        )
    print(f"traces: {total} span tree(s) -> {path}")
    if missing:
        print(
            f"note: {missing} run(s) carried no traces (cached results "
            "store only the golden summary; rerun without --cache to "
            "record spans)",
            file=sys.stderr,
        )


def _add_run(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("run", help="run a single experiment")
    p.add_argument("--strategy", default="unifincr-credits", choices=KNOWN_STRATEGIES)
    p.add_argument("--scenario", default=None, choices=scenario_names(),
                   help="run a named scenario (workload + fault schedule)")
    p.add_argument("--tasks", type=int, default=5000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--seeds", type=int, default=1, metavar="K",
                   help="repeat under K consecutive seeds (starting at --seed)")
    p.add_argument("--load", type=float, default=None,
                   help="offered load as a fraction of capacity")
    p.add_argument("--fanout", type=float, default=None,
                   help="mean requests per task")
    p.add_argument("--slow-server", type=int, default=None,
                   help="inject a 3x slowdown on this server id")
    _add_remediate_flags(p)
    _add_trace_flags(p)
    _add_parallel_flags(p)
    p.set_defaults(func=_cmd_run)


def _cmd_run(args: argparse.Namespace) -> int:
    overrides: _t.Dict[str, _t.Any] = {}
    if args.load is not None:
        overrides["load"] = args.load
    if args.fanout is not None:
        overrides["mean_fanout"] = args.fanout
    if args.slow_server is not None:
        overrides["slowdown_server"] = args.slow_server
    overrides.update(_remediation_overrides(args))
    overrides.update(_trace_overrides(args))
    try:
        if args.scenario is not None:
            config = get_scenario(args.scenario).build_config(
                strategy=args.strategy, n_tasks=args.tasks, **overrides
            )
        else:
            config = ExperimentConfig(
                strategy=args.strategy, n_tasks=args.tasks, **overrides
            )
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    if args.seeds > 1:
        seeds = tuple(range(args.seed, args.seed + args.seeds))
        print(f"running {config.describe()} (seeds {seeds[0]}..{seeds[-1]})")
        for line in config.faults().describe():
            print(f"  fault: {line}")
        runs = run_seeds(config, seeds, executor=_executor_from(args))
        comparison = compare_strategies({config.strategy: runs})
        mean = comparison.summary_of(config.strategy)
        print(mean)
        spread = comparison.strategies[config.strategy].percentile_spread(99.0)
        print(f"p99 across seeds: {spread[0] * 1e3:.3f}..{spread[1] * 1e3:.3f} ms")
        if args.trace_out is not None:
            _write_trace_artifact(
                args.trace_out, config, args.scenario or "custom", "sim",
                seeds, runs,
            )
        return 0
    print(f"running {config.describe()} (seed {args.seed})")
    for line in config.faults().describe():
        print(f"  fault: {line}")
    # Through the executor seam even for one seed, so --cache reuses the
    # cell; with one job the executor runs in-process (no pool overhead).
    result = run_seeds(config, (args.seed,), executor=_executor_from(args))[0]
    print(result.summary((50.0, 90.0, 95.0, 99.0, 99.9)))
    rows = [{"metric": k, "value": v} for k, v in sorted(result.extras.items())]
    rows.append({"metric": "events_processed", "value": result.events_processed})
    rows.append({"metric": "sim_duration_s", "value": result.sim_duration})
    print(render_table(rows))
    if args.trace_out is not None:
        _write_trace_artifact(
            args.trace_out, config, args.scenario or "custom", "sim",
            (args.seed,), (result,),
        )
    return 0


def _add_profile(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "profile",
        help="cProfile one simulation run and print the hotspot table",
        description="Run one (scenario, strategy, seed) simulation under "
                    "cProfile and print the top-N hotspots plus kernel "
                    "throughput (events/sec, tasks/sec). The profiling "
                    "workflow lives in docs/performance.md.",
    )
    p.add_argument("--strategy", default="unifincr-credits", choices=KNOWN_STRATEGIES)
    p.add_argument("--scenario", default=None, choices=scenario_names(),
                   help="profile a named scenario (workload + fault schedule)")
    p.add_argument("--tasks", type=int, default=3000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--top", type=int, default=25, metavar="N",
                   help="rows in the hotspot table")
    p.add_argument("--sort", default="tottime",
                   choices=("tottime", "cumtime", "ncalls"),
                   help="hotspot ranking column")
    p.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="also dump raw cProfile stats here (snakeviz/pstats "
                        "compatible)")
    p.set_defaults(func=_cmd_profile)


def _profile_rows(
    stats: _t.Any, sort: str, top: int
) -> _t.List[_t.Dict[str, _t.Any]]:
    """Top-``top`` hotspot rows from a ``pstats.Stats``-compatible table."""
    import os

    column = {"ncalls": 3, "tottime": 4, "cumtime": 5}[sort]
    entries = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        entries.append((filename, lineno, name, nc, tt, ct))
    entries.sort(key=lambda e: e[column], reverse=True)
    rows = []
    for filename, lineno, name, nc, tt, ct in entries[:top]:
        if filename.startswith("~"):
            where = name  # builtins render as e.g. ~:0(<built-in ...>)
        else:
            short = filename
            for marker in (f"src{os.sep}", f"lib{os.sep}python"):
                idx = short.find(marker)
                if idx != -1:
                    short = short[idx:]
                    break
            where = f"{short}:{lineno}({name})"
        rows.append(
            {
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
                "function": where,
            }
        )
    return rows


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    import time

    from .harness.runner import run_experiment

    if args.scenario is not None:
        config = get_scenario(args.scenario).build_config(
            strategy=args.strategy, n_tasks=args.tasks
        )
    else:
        config = ExperimentConfig(strategy=args.strategy, n_tasks=args.tasks)
    print(f"profiling {config.describe()} (seed {args.seed})")
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_experiment(config, seed=args.seed)
    profiler.disable()
    elapsed = time.perf_counter() - start
    print(
        f"{result.events_processed} events in {elapsed:.2f}s under the "
        f"profiler: {result.events_processed / elapsed:,.0f} events/s, "
        f"{config.n_tasks / elapsed:,.0f} tasks/s (expect ~2-4x faster "
        f"unprofiled; see docs/performance.md)"
    )
    stats = pstats.Stats(profiler)
    rows = _profile_rows(stats, args.sort, args.top)
    print(render_table(rows, title=f"top {len(rows)} by {args.sort}"))
    if args.out:
        profiler.dump_stats(args.out)
        print(f"raw profile -> {args.out} (inspect with python -m pstats)")
    return 0


def _parse_sweep_value(raw: str) -> _t.Any:
    """Best-effort literal: int, then float, else the bare string."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _add_sweep(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "sweep", help="run a (value x strategy x seed) grid"
    )
    p.add_argument("--parameter", required=True,
                   help="config field to vary (dotted paths reach nested "
                        "specs, e.g. cluster.one_way_latency)")
    p.add_argument("--values", required=True,
                   help="comma-separated values for the swept parameter")
    p.add_argument("--strategies", default="c3,unifincr-credits",
                   help="comma-separated strategy names")
    p.add_argument("--seeds", type=int, default=1, metavar="K",
                   help="seed grid 1..K per cell")
    p.add_argument("--scenario", default=None, choices=scenario_names(),
                   help="sweep over a named scenario instead of the default config")
    p.add_argument("--tasks", type=int, default=5000)
    p.add_argument("--percentile", type=float, default=99.0,
                   help="percentile column for the rendered table")
    p.add_argument("--out", type=str, default=None, help="raw JSON output path")
    _add_parallel_flags(p)
    p.set_defaults(func=_cmd_sweep)


def _cmd_sweep(args: argparse.Namespace) -> int:
    values = [_parse_sweep_value(v) for v in args.values.split(",") if v]
    strategies = tuple(s for s in args.strategies.split(",") if s)
    if args.scenario is not None:
        base: _t.Union[ExperimentConfig, str] = args.scenario
        n_tasks: _t.Optional[int] = args.tasks
    else:
        base = ExperimentConfig(n_tasks=args.tasks)
        n_tasks = None
    executor = _executor_from(args)
    cells = len(values) * len(strategies) * args.seeds
    print(
        f"sweeping {args.parameter} over {values}: {cells} cells "
        f"({len(strategies)} strategies x {args.seeds} seeds) via {executor!r}"
    )
    result = sweep(
        base,
        parameter=args.parameter,
        values=values,
        strategies=strategies,
        seeds=tuple(range(1, args.seeds + 1)),
        n_tasks=n_tasks,
        executor=executor,
    )
    print(result.render(args.percentile))
    if executor.cache is not None:
        c = executor.cache
        print(f"cache: {c.hits} hits, {c.misses} misses, {c.stores} stores "
              f"({c.root})")
    if args.out:
        result.save_json(args.out)
        print(f"raw results -> {args.out}")
    return 0


def _add_figure1(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("figure1", help="the paper's toy schedule")
    p.set_defaults(func=_cmd_figure1)


def _cmd_figure1(args: argparse.Namespace) -> int:
    oblivious = figure1_toy(task_aware=False)
    aware = figure1_toy(task_aware=True)
    rows = [
        {"schedule": "task-oblivious", "T1": oblivious.t1_completion,
         "T2": oblivious.t2_completion},
        {"schedule": "task-aware", "T1": aware.t1_completion,
         "T2": aware.t2_completion},
    ]
    print(render_table(rows, title="Figure 1 (completion in service units)",
                       float_fmt=".1f"))
    return 0


def _add_figure2(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("figure2", help="reproduce the evaluation figure")
    p.add_argument("--tasks", type=int, default=12_000)
    p.add_argument("--seeds", type=int, default=3)
    p.add_argument("--out", type=str, default=None, help="raw JSON output path")
    _add_parallel_flags(p)
    p.set_defaults(func=_cmd_figure2)


def _cmd_figure2(args: argparse.Namespace) -> int:
    comparison = figure2(
        n_tasks=args.tasks,
        seeds=tuple(range(1, args.seeds + 1)),
        executor=_executor_from(args),
    )
    summaries = {n: comparison.summary_of(n) for n in FIGURE2_STRATEGIES}
    print(percentile_matrix(
        {n: s.percentiles for n, s in summaries.items()},
        percentiles=PAPER_PERCENTILES,
    ))
    print()
    print(grouped_bar_chart(figure2_series(comparison),
                            title="Figure 2 -- task read latency (ms)"))
    print()
    print(ratio_table(comparison.speedup("c3", "equalmax-credits"),
                      label="C3 / EqualMax-credits"))
    if args.out:
        comparison.save_json(args.out)
        print(f"raw results -> {args.out}")
    return 0


def _add_trace(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("trace", help="generate or inspect traces")
    sub = p.add_subparsers(dest="trace_command", required=True)

    gen = sub.add_parser("generate", help="synthesize a SoundCloud-like trace")
    gen.add_argument("path")
    gen.add_argument("--tasks", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--fanout", type=float, default=8.6)
    gen.set_defaults(func=_cmd_trace_generate)

    stats = sub.add_parser("stats", help="print statistics of a saved trace")
    stats.add_argument("path")
    stats.set_defaults(func=_cmd_trace_stats)

    attr = sub.add_parser(
        "attribution",
        help="critical-path tail attribution per (strategy, scenario)",
        description="Read JSONL span-trace artifacts (from `repro run "
                    "--trace-out` / `repro loadgen --trace-out`) and print "
                    "one tail-attribution table per (strategy, scenario) "
                    "group: each critical-path segment kind's share of the "
                    "summed tail latency, with queue_wait broken down by "
                    "partition. Shares always sum to 100%.",
    )
    attr.add_argument("files", nargs="+", help="JSONL trace artifacts")
    attr.add_argument("--tail", type=float, default=99.0, metavar="P",
                      help="tail percentile defining the analysed set")
    attr.add_argument("--json", action="store_true",
                      help="machine-readable output (one JSON array)")
    attr.set_defaults(func=_cmd_trace_attribution)

    slow = sub.add_parser(
        "slowest",
        help="exemplar dump of the K slowest traces per group",
    )
    slow.add_argument("files", nargs="+", help="JSONL trace artifacts")
    slow.add_argument("-k", type=int, default=5, dest="k", metavar="K",
                      help="traces per group, slowest first")
    slow.set_defaults(func=_cmd_trace_slowest)

    diff = sub.add_parser(
        "diff",
        help="compare two groups' tail attributions side by side",
        description="Diff the tail attribution of two (strategy, scenario) "
                    "groups. With exactly two groups across the given "
                    "files, they are compared in sorted order; otherwise "
                    "pick them with --a/--b (STRATEGY or "
                    "STRATEGY/SCENARIO).",
    )
    diff.add_argument("files", nargs="+", help="JSONL trace artifacts")
    diff.add_argument("--tail", type=float, default=99.0, metavar="P",
                      help="tail percentile defining the analysed sets")
    diff.add_argument("--a", default=None, metavar="SEL",
                      help="group A selector: STRATEGY or STRATEGY/SCENARIO")
    diff.add_argument("--b", default=None, metavar="SEL",
                      help="group B selector: STRATEGY or STRATEGY/SCENARIO")
    diff.set_defaults(func=_cmd_trace_diff)


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    workload = make_soundcloud_workload(
        n_tasks=args.tasks, mean_fanout=args.fanout
    )
    trace = workload.generate(seed=args.seed)
    save_trace(args.path, trace, metadata={"seed": args.seed})
    print(f"wrote {len(trace)} tasks to {args.path}")
    return 0


def _load_trace_groups(files: _t.Sequence[str]) -> _t.Any:
    """Load span-trace artifacts or exit-worthy None (message printed)."""
    from .trace import load_traces

    try:
        groups = load_traces(files)
    except (OSError, ValueError) as exc:
        print(f"bad trace artifact: {exc}", file=sys.stderr)
        return None
    if not groups:
        print("no trace groups in the given files", file=sys.stderr)
        return None
    return groups


def _select_trace_group(groups: _t.Any, selector: str) -> _t.Any:
    """Resolve a STRATEGY or STRATEGY/SCENARIO selector to one group."""
    if "/" in selector:
        strategy, _, scenario = selector.partition("/")
        matches = [
            g for g in groups
            if g.strategy == strategy and g.scenario == scenario
        ]
    else:
        matches = [g for g in groups if g.strategy == selector]
    if len(matches) != 1:
        known = ", ".join(f"{g.strategy}/{g.scenario}" for g in groups)
        raise ValueError(
            f"selector {selector!r} matches {len(matches)} group(s); "
            f"available: {known}"
        )
    return matches[0]


def _cmd_trace_attribution(args: argparse.Namespace) -> int:
    from .trace import attribution, render_attribution

    groups = _load_trace_groups(args.files)
    if groups is None:
        return 2
    try:
        results = [attribution(g, tail=args.tail) for g in groups]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return 0
    for index, result in enumerate(results):
        if index:
            print()
        print(render_attribution(result))
    return 0


def _cmd_trace_slowest(args: argparse.Namespace) -> int:
    from .trace import render_slowest, slowest

    groups = _load_trace_groups(args.files)
    if groups is None:
        return 2
    if args.k < 1:
        print("-k must be at least 1", file=sys.stderr)
        return 2
    for index, group in enumerate(groups):
        if index:
            print()
        print(render_slowest(group, slowest(group, k=args.k)))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .trace import attribution, render_diff

    groups = _load_trace_groups(args.files)
    if groups is None:
        return 2
    if (args.a is None) != (args.b is None):
        print("--a and --b must be given together", file=sys.stderr)
        return 2
    if args.a is None:
        if len(groups) != 2:
            print(
                f"found {len(groups)} trace group(s); diff needs exactly "
                "two (or explicit --a/--b selectors)",
                file=sys.stderr,
            )
            return 2
        group_a, group_b = groups
    else:
        try:
            group_a = _select_trace_group(groups, args.a)
            group_b = _select_trace_group(groups, args.b)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        print(
            render_diff(
                attribution(group_a, tail=args.tail),
                attribution(group_b, tail=args.tail),
            )
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _add_serve(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "serve", help="start the live asyncio multiget KV service"
    )
    p.add_argument("--scenario", default="steady-state", choices=scenario_names(),
                   help="cluster shape + service calibration to serve")
    p.add_argument("--host", default=None, help="bind address (default loopback)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (0 = ephemeral; default 7411; with --procs N, "
                        "process i listens on port+i)")
    p.add_argument("--procs", type=int, default=1, metavar="N",
                   help="fork N server processes, each hosting a contiguous "
                        "worker group on its own port")
    p.add_argument("--time-scale", type=float, default=None, metavar="S",
                   help="wall seconds per model second (default 25)")
    p.add_argument("--seed", type=int, default=1,
                   help="seed for the service-time noise streams")
    p.add_argument("--stats-interval", type=float, default=None, metavar="S",
                   help="print per-worker queue depth and ops/s to stderr "
                        "every S wall seconds")
    p.add_argument("--metrics-port", type=int, default=None, metavar="P",
                   help="export Prometheus text over HTTP on this port "
                        "(0 = ephemeral; with --procs N, process i exports "
                        "on P+i)")
    p.add_argument("--uvloop", action="store_true",
                   help="use uvloop's event loop when the package is installed "
                        "(silently falls back to asyncio otherwise)")
    p.set_defaults(func=_cmd_serve)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        DEFAULT_TIME_SCALE,
        ServeSupervisor,
        install_uvloop,
        run_server,
    )

    config = get_scenario(args.scenario).build_config()
    time_scale = args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT

    if args.procs > 1:
        import time as _time

        supervisor = ServeSupervisor(
            config,
            procs=args.procs,
            time_scale=time_scale,
            seed=args.seed,
            host=host,
            base_port=port,
            stats_interval=args.stats_interval,
            use_uvloop=args.uvloop,
            metrics_base_port=args.metrics_port,
        )
        try:
            endpoints = supervisor.start()
        except (ValueError, RuntimeError) as exc:
            print(f"serve failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"serving scenario {args.scenario!r} across {args.procs} "
            f"processes (time scale {time_scale:g}x):",
            flush=True,
        )
        for (endpoint_host, endpoint_port), group, metrics_port in zip(
            endpoints, supervisor.groups, supervisor.metrics_ports
        ):
            metrics_note = (
                f" metrics http://{endpoint_host}:{metrics_port}/"
                if metrics_port is not None
                else ""
            )
            print(
                f"  {endpoint_host}:{endpoint_port} "
                f"workers {group[0]}..{group[-1]}{metrics_note}",
                flush=True,
            )
        try:
            while supervisor.alive:
                _time.sleep(0.5)
            print("a server process exited; shutting down", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            supervisor.stop()
        return 0

    if args.uvloop:
        install_uvloop()

    def ready(server) -> None:
        metrics_note = (
            f", metrics http://{server.host}:{server.metrics_port}/"
            if server.metrics_port is not None
            else ""
        )
        print(
            f"serving scenario {args.scenario!r} on "
            f"{server.host}:{server.port} "
            f"({server.cluster.n_servers} workers x "
            f"{server.cluster.cores_per_server} cores, "
            f"time scale {time_scale:g}x{metrics_note})",
            flush=True,
        )

    try:
        asyncio.run(
            run_server(
                config,
                time_scale=time_scale,
                seed=args.seed,
                host=host,
                port=port,
                ready=ready,
                stats_interval=args.stats_interval,
                metrics_port=args.metrics_port,
            )
        )
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _add_loadgen(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "loadgen", help="drive a live service with a scenario workload"
    )
    p.add_argument("--scenario", default="steady-state", choices=scenario_names())
    p.add_argument("--strategy", default="unifincr-credits", choices=KNOWN_STRATEGIES)
    p.add_argument("--tasks", type=int, default=5000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--seeds", type=int, default=1, metavar="K",
                   help="repeat under K consecutive seeds (starting at --seed)")
    p.add_argument("--host", default=None)
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--endpoints", default=None, metavar="H:P,H:P,...",
                   help="comma-separated endpoints of a multi-process cluster "
                        "(overrides --host/--port)")
    p.add_argument("--pool", type=int, default=1, metavar="K",
                   help="connections per endpoint")
    p.add_argument("--protocol", default="binary", choices=("binary", "json"),
                   help="highest wire codec to negotiate (json pins v1)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock safety timeout per run (seconds)")
    p.add_argument("--out", type=str, default=None,
                   help="write the summary JSON (sim-identical schema) here")
    _add_remediate_flags(p)
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_loadgen)


def _parse_endpoints(raw: str) -> _t.List[_t.Tuple[str, int]]:
    """``host:port,host:port`` -> endpoint tuples (ValueError on garbage)."""
    endpoints = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, sep, port = chunk.rpartition(":")
        if not sep or not host:
            raise ValueError(f"bad endpoint {chunk!r} (expected host:port)")
        endpoints.append((host, int(port)))
    if not endpoints:
        raise ValueError("empty endpoint list")
    return endpoints


def _protocol_cap(name: str) -> int:
    from .serve import MAX_PROTOCOL_VERSION, PROTOCOL_VERSION

    return PROTOCOL_VERSION if name == "json" else MAX_PROTOCOL_VERSION


def _reject_model_strategies(strategies: _t.Iterable[str]) -> _t.Optional[str]:
    """Clean CLI message for strategies with no live realization."""
    from .harness.builders import ModelBuilder

    for name in strategies:
        if isinstance(get_builder(name), ModelBuilder):
            return (
                f"strategy {name!r} is the unrealizable global-queue model; "
                "it cannot run live (pick a -credits realization or a "
                "baseline)"
            )
    return None


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .loadgen import LiveTransportError, live_summary, run_live_seeds
    from .serve import DEFAULT_HOST, DEFAULT_PORT

    message = _reject_model_strategies((args.strategy,))
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    try:
        config = get_scenario(args.scenario).build_config(
            strategy=args.strategy,
            n_tasks=args.tasks,
            **_remediation_overrides(args),
            **_trace_overrides(args),
        )
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    seeds = tuple(range(args.seed, args.seed + args.seeds))
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    if args.endpoints is not None:
        try:
            endpoints = _parse_endpoints(args.endpoints)
        except ValueError as exc:
            print(f"bad --endpoints: {exc}", file=sys.stderr)
            return 2
    else:
        endpoints = [(host, port)]
    where = ", ".join(f"{h}:{p}" for h, p in endpoints)
    print(
        f"loadgen: {config.describe()} (seeds {list(seeds)}) -> {where} "
        f"(pool {args.pool}, protocol {args.protocol})"
    )
    for line in config.faults().describe():
        print(f"  fault: {line}")
    try:
        results = asyncio.run(
            run_live_seeds(
                config,
                seeds,
                endpoints=endpoints,
                pool=args.pool,
                protocol=_protocol_cap(args.protocol),
                wall_timeout=args.timeout,
            )
        )
    except (ConnectionError, OSError, LiveTransportError) as exc:
        print(f"loadgen failed: {exc}", file=sys.stderr)
        return 1
    for result in results:
        print(result.summary((50.0, 90.0, 95.0, 99.0, 99.9)))
        if config.remediation != "off":
            print(
                f"  SLO: {result.extras.get('slo_breach_windows', 0):.0f} "
                f"breach window(s), "
                f"{result.extras.get('remediation_actions', 0):.0f} "
                f"remediation action(s), "
                f"{result.extras.get('bus_snapshots', 0):.0f} bus snapshot(s)"
            )
    total = sum(r.tasks_completed for r in results)
    wall = sum(r.extras.get("live_wall_duration_s", 0.0) for r in results)
    print(f"completed {total} multigets in {wall:.1f}s wall "
          f"(time scale {results[0].extras['live_time_scale']:g}x)")
    lag_mean = max(r.extras.get("schedule_lag_mean_s", 0.0) for r in results)
    lag_max = max(r.extras.get("schedule_lag_max_s", 0.0) for r in results)
    print(
        f"open-loop schedule lag: mean {lag_mean * 1e3:.3f} ms, "
        f"max {lag_max * 1e3:.3f} ms (model time; large values mean the "
        f"generator fell behind the arrival schedule)"
    )
    summary = live_summary(
        {config.strategy: results},
        meta={
            "realm": "live",
            "scenario": args.scenario,
            "n_tasks": args.tasks,
            "time_scale": results[0].extras["live_time_scale"],
            "wall_duration_s": wall,
            "protocol": results[0].extras.get("live_protocol", 1.0),
            "endpoints": len(endpoints),
            "pool": args.pool,
            "schedule_lag_mean_s": lag_mean,
            "schedule_lag_max_s": lag_max,
        },
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(summary, indent=2), encoding="utf-8"
        )
        print(f"summary -> {args.out}")
    if args.trace_out is not None:
        _write_trace_artifact(
            args.trace_out, config, args.scenario, "live", seeds, results,
        )
    return 0


def _add_watch(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "watch",
        help="poll a live cluster's metrics over the admin plane",
        description="Connect to a running `repro serve` cluster and poll "
                    "its metrics mid-run: one compact line per interval "
                    "(completed ops, ops/s, per-worker backlog), one JSON "
                    "object per poll with --json, or the raw Prometheus "
                    "exposition text with --prometheus -- the same page "
                    "`repro serve --metrics-port` exports over HTTP. When "
                    "a load generator streams its client-side metrics bus "
                    "to the cluster (`repro loadgen --remediate ...`), the "
                    "poll also reports cluster-wide client-side windowed "
                    "p50/p99. Stops after --count polls or on Ctrl-C.",
    )
    p.add_argument("--host", default=None)
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--endpoints", default=None, metavar="H:P,H:P,...",
                   help="comma-separated endpoints of a multi-process "
                        "cluster (overrides --host/--port)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="wall seconds between polls")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="stop after N polls (default: until interrupted)")
    p.add_argument("--prometheus", action="store_true",
                   help="dump Prometheus text each poll instead of the "
                        "compact line")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object per poll instead of the "
                        "compact line")
    p.set_defaults(func=_cmd_watch)


def _combine_client_bus(
    snapshots: _t.Mapping[str, _t.Mapping[str, _t.Any]],
) -> _t.Optional[_t.Dict[str, _t.Any]]:
    """Fold per-reporter client-bus snapshots into one cluster-wide view.

    Counts and rates add across reporters.  Percentiles cannot be merged
    exactly from summaries, so the p50 is the window-count-weighted mean
    and the p99 the max across reporters (conservative: never understates
    the worst client's tail).  With one load generator — the common case —
    both are exact.
    """
    reporters = list(snapshots.values())
    if not reporters:
        return None
    window_count = sum(int(s.get("window_count", 0)) for s in reporters)
    weight = max(1, window_count)
    return {
        "reporters": sorted(snapshots),
        "window_count": window_count,
        "completed": sum(int(s.get("completed", 0)) for s in reporters),
        "arrival_rate": sum(float(s.get("arrival_rate", 0.0)) for s in reporters),
        "served_rate": sum(float(s.get("served_rate", 0.0)) for s in reporters),
        "latency_p50_ms": sum(
            float(s.get("latency_p50_ms", 0.0)) * int(s.get("window_count", 0))
            for s in reporters
        ) / weight,
        "latency_p99_ms": max(
            float(s.get("latency_p99_ms", 0.0)) for s in reporters
        ),
    }


def _cmd_watch(args: argparse.Namespace) -> int:
    import asyncio
    import time as _time

    from .loadgen import LiveTransportError
    from .loadgen.transport import LiveTransport
    from .serve import DEFAULT_HOST, DEFAULT_PORT

    if args.endpoints is not None:
        try:
            endpoints = _parse_endpoints(args.endpoints)
        except ValueError as exc:
            print(f"bad --endpoints: {exc}", file=sys.stderr)
            return 2
    else:
        host = args.host if args.host is not None else DEFAULT_HOST
        port = args.port if args.port is not None else DEFAULT_PORT
        endpoints = [(host, port)]
    if args.interval <= 0:
        print("--interval must be positive", file=sys.stderr)
        return 2
    if args.prometheus and args.json:
        print("--prometheus and --json are mutually exclusive", file=sys.stderr)
        return 2

    async def watch() -> int:
        transport = await LiveTransport.connect(endpoints)
        try:
            # Gate optional admin commands on the hello-ack advertisement:
            # probing an old server would poison the stream with an error
            # frame instead of a clean "not supported".
            has_client_bus = "client-bus" in transport.features
            last_completed: _t.Optional[int] = None
            last_at = _time.monotonic()
            polls = 0
            while args.count is None or polls < args.count:
                if polls:
                    await asyncio.sleep(args.interval)
                if args.prometheus:
                    text = await asyncio.wait_for(
                        transport.fetch_metrics(), timeout=10
                    )
                    print(text, end="", flush=True)
                    polls += 1
                    continue
                stats = await asyncio.wait_for(
                    transport.fetch_stats(), timeout=10
                )
                client = None
                if has_client_bus:
                    client = _combine_client_bus(
                        await asyncio.wait_for(
                            transport.fetch_client_bus(), timeout=10
                        )
                    )
                now = _time.monotonic()
                completed = int(stats.get("completed", 0))
                if last_completed is None:
                    rate = 0.0
                else:
                    rate = (completed - last_completed) / max(
                        now - last_at, 1e-9
                    )
                last_completed, last_at = completed, now
                if args.json:
                    record = {
                        "poll": polls,
                        "completed": completed,
                        "ops_per_s": rate,
                        "uptime_model_s": float(
                            stats.get("uptime_model_s", 0.0)
                        ),
                        "traced_ops": int(stats.get("traced_ops", 0)),
                        "workers": stats.get("workers", []),
                        "client_bus": client,
                    }
                    print(json.dumps(record), flush=True)
                else:
                    backlog = " ".join(
                        f"w{w.get('worker')}:"
                        f"{int(w.get('queued', 0)) + int(w.get('in_service', 0))}"
                        for w in stats.get("workers", [])
                    )
                    line = (
                        f"[watch] completed={completed} ops/s={rate:,.0f} "
                        f"uptime={float(stats.get('uptime_model_s', 0.0)):.2f}"
                        f"model-s backlog {backlog}"
                    )
                    if client is not None:
                        line += (
                            f" | client p50={client['latency_p50_ms']:.2f}ms"
                            f" p99={client['latency_p99_ms']:.2f}ms"
                            f" ({len(client['reporters'])} reporter(s))"
                        )
                    print(line, flush=True)
                polls += 1
            return 0
        finally:
            await transport.close()

    try:
        return asyncio.run(watch())
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError, LiveTransportError) as exc:
        message = str(exc)
        if "admin" in message and "unknown" in message:
            print(
                f"watch failed: {exc}\n"
                "the server rejected the metrics admin command -- it "
                "predates metrics admin support. Restart it from this "
                "checkout (`repro serve`), or point --endpoints at a "
                "current cluster.",
                file=sys.stderr,
            )
        else:
            print(f"watch failed: {exc}", file=sys.stderr)
        return 1


def _add_firehose(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "firehose",
        help="saturate a live service with closed-loop multigets",
        description="Drive a running service as hard as the wire allows: "
                    "a fixed window of multigets kept in flight, no "
                    "arrival schedule and no replica selection, so the "
                    "measured ceiling is the transport's (codec, "
                    "pipelining, pooling), not the scheduler's. The "
                    "sustained-rate tool behind "
                    "results/live_throughput.json and the CI live smoke; "
                    "use `repro loadgen` to measure scheduling quality.",
    )
    p.add_argument("--endpoints", default=None, metavar="H:P,H:P,...",
                   help="comma-separated endpoints of the cluster "
                        "(default: the default serve address)")
    p.add_argument("--multigets", type=int, default=10_000, metavar="N",
                   help="measured multigets (after warmup)")
    p.add_argument("--fanout", type=int, default=4, metavar="K",
                   help="keys per multiget")
    p.add_argument("--window", type=int, default=256, metavar="W",
                   help="multigets kept in flight (1 = sequential)")
    p.add_argument("--pool", type=int, default=1, metavar="K",
                   help="connections per endpoint")
    p.add_argument("--protocol", default="binary", choices=("binary", "json"),
                   help="highest wire codec to negotiate (json pins v1)")
    p.add_argument("--value-size", type=int, default=1024, metavar="B",
                   help="value bytes per key")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="wall-clock safety timeout")
    p.add_argument("--out", type=str, default=None,
                   help="write the measurement JSON here")
    p.set_defaults(func=_cmd_firehose)


def _cmd_firehose(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .loadgen import LiveTransportError, run_firehose
    from .serve import DEFAULT_HOST, DEFAULT_PORT

    if args.endpoints is not None:
        try:
            endpoints = _parse_endpoints(args.endpoints)
        except ValueError as exc:
            print(f"bad --endpoints: {exc}", file=sys.stderr)
            return 2
    else:
        endpoints = [(DEFAULT_HOST, DEFAULT_PORT)]
    where = ", ".join(f"{h}:{p}" for h, p in endpoints)
    print(
        f"firehose -> {where}: {args.multigets} multigets x fanout "
        f"{args.fanout}, window {args.window}, pool {args.pool}, "
        f"{args.protocol} protocol"
    )
    try:
        result = asyncio.run(
            run_firehose(
                endpoints,
                multigets=args.multigets,
                fanout=args.fanout,
                value_size=args.value_size,
                window=args.window,
                pool=args.pool,
                protocol=_protocol_cap(args.protocol),
                wall_timeout=args.timeout,
            )
        )
    except (ConnectionError, OSError, LiveTransportError) as exc:
        print(f"firehose failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"{result.multigets_per_s:,.0f} multigets/s "
        f"({result.ops_per_s:,.0f} ops/s) over {result.elapsed_s:.2f}s"
    )
    print(
        f"multiget RTT: p50 {result.p50_ms:.2f} ms, p99 {result.p99_ms:.2f} ms "
        f"(wall; divide by the server's time scale for model time)"
    )
    print(
        f"wire: {result.writes_per_multiget:.3f} writes/multiget, "
        f"{result.bytes_per_op:.1f} bytes/op sent"
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(result.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"measurement -> {args.out}")
    return 0


def _add_compare(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "compare", help="sim vs live differential for one scenario"
    )
    p.add_argument("--scenario", default="steady-state", choices=scenario_names())
    p.add_argument("--strategy", default="c3,unifincr-credits",
                   help="comma-separated strategy names")
    p.add_argument("--tasks", type=int, default=5000)
    p.add_argument("--seeds", type=int, default=1, metavar="K",
                   help="seed grid 1..K for both realms")
    p.add_argument("--time-scale", type=float, default=None, metavar="S",
                   help="live time stretch (default 25)")
    p.add_argument("--procs", type=int, default=1, metavar="N",
                   help="run the live half against an N-process cluster "
                        "(default: in-process loopback)")
    p.add_argument("--pool", type=int, default=1, metavar="K",
                   help="live connections per endpoint")
    p.add_argument("--protocol", default="binary", choices=("binary", "json"),
                   help="highest wire codec to negotiate (json pins v1)")
    p.add_argument("--out", type=str, default=None, help="raw JSON output path")
    _add_parallel_flags(p)  # applies to the simulated half of the diff
    p.set_defaults(func=_cmd_compare)


def _cmd_compare(args: argparse.Namespace) -> int:
    from .loadgen import run_compare
    from .serve import DEFAULT_TIME_SCALE

    strategies = tuple(s for s in args.strategy.split(",") if s)
    if not strategies:
        print("need at least one strategy to compare", file=sys.stderr)
        return 2
    for name in strategies:
        if name not in KNOWN_STRATEGIES:
            print(f"unknown strategy {name!r}", file=sys.stderr)
            return 2
    message = _reject_model_strategies(strategies)
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    time_scale = args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
    backend = (
        f"{args.procs}-process cluster" if args.procs > 1 else "loopback"
    )
    print(
        f"comparing {', '.join(strategies)} on {args.scenario!r}: "
        f"{args.tasks} tasks x {args.seeds} seed(s), sim then live "
        f"({backend}, {time_scale:g}x time scale, {args.protocol} protocol)"
    )
    report = run_compare(
        args.scenario,
        strategies,
        n_tasks=args.tasks,
        seeds=tuple(range(1, args.seeds + 1)),
        time_scale=time_scale,
        executor=_executor_from(args),
        procs=args.procs,
        pool=args.pool,
        protocol=_protocol_cap(args.protocol),
    )
    print(report.render())
    if args.out:
        report.save_json(args.out)
        print(f"raw results -> {args.out}")
    return 0


def _add_ring(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "ring", help="inspect or perturb the replica-placement ring"
    )
    p.add_argument("--scenario", default=None, choices=scenario_names(),
                   help="take the cluster shape from a named scenario")
    p.add_argument("--servers", type=int, default=None,
                   help="server count (default: the paper's 9)")
    p.add_argument("--rf", type=int, default=None, metavar="R",
                   help="replication factor (default 3; R == servers gives "
                        "the degenerate full-replication ring)")
    p.add_argument("--partitions", type=int, default=None,
                   help="partition (shard) count")
    p.add_argument("--kind", default=None, choices=("ring", "chash"),
                   help="token ring or vnode consistent hashing")
    p.add_argument("--keys", type=int, default=10_000, metavar="N",
                   help="keyspace sampled for ownership shares")
    p.add_argument("--key", type=int, action="append", default=None,
                   metavar="K", help="look up K's partition and replica set "
                   "(repeatable)")
    p.add_argument("--exclude", default=None, metavar="IDS",
                   help="comma-separated server ids to decommission; prints "
                        "the movement delta against the theoretical minimum")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable report")
    p.set_defaults(func=_cmd_ring)


def _ring_cluster(args: argparse.Namespace):
    """The ClusterSpec a ``repro ring`` invocation describes."""
    from .cluster.topology import ClusterSpec
    from .scenarios import get_scenario

    if args.scenario is not None:
        base = get_scenario(args.scenario).build_config(n_tasks=1).cluster
    else:
        base = ClusterSpec()
    import dataclasses as _dc

    overrides: _t.Dict[str, _t.Any] = {}
    if args.servers is not None:
        overrides["n_servers"] = args.servers
    if args.rf is not None:
        overrides["replication_factor"] = args.rf
    if args.partitions is not None:
        overrides["n_partitions"] = args.partitions
    if args.kind is not None:
        overrides["placement_kind"] = args.kind
    return _dc.replace(base, **overrides) if overrides else base


def _cmd_ring(args: argparse.Namespace) -> int:
    from .placement import placement_delta, ring_report

    try:
        cluster = _ring_cluster(args)
        placement = cluster.make_placement()
        placement.validate()
    except ValueError as exc:
        print(f"bad ring: {exc}", file=sys.stderr)
        return 2
    report = ring_report(placement, n_keys=args.keys)
    lookups = [
        {
            "key": key,
            "partition": placement.partition_of(key),
            "replicas": list(placement.replicas_of_key(key)),
        }
        for key in (args.key or ())
    ]
    delta = None
    if args.exclude:
        try:
            excluded = [int(s) for s in args.exclude.split(",") if s]
            perturbed = placement.without_servers(excluded)
            delta = placement_delta(placement, perturbed, n_keys=args.keys)
        except (ValueError, NotImplementedError) as exc:
            print(f"cannot exclude: {exc}", file=sys.stderr)
            return 2
    if args.as_json:
        out: _t.Dict[str, _t.Any] = report.to_dict()
        if lookups:
            out["lookups"] = lookups
        if delta is not None:
            out["exclude_delta"] = delta.to_dict()
        print(json.dumps(out, indent=2))
        return 0
    print(repr(placement))
    print(render_table(report.to_rows(), title="ownership", float_fmt=".1f"))
    print(f"balance: key-share CV {report.replica_share_cv:.3f}, "
          f"hottest server at {report.max_over_mean:.2f}x the mean share")
    print("\n".join(report.ownership_bars()))
    if lookups:
        print(render_table(lookups, title="key lookups"))
    if delta is not None:
        print(
            f"decommissioning {args.exclude}: {delta.changed_partitions} "
            f"partition(s) re-home; {delta.moved_fraction:.1%} of keys "
            f"change replica set ({delta.primary_moved_fraction:.1%} change "
            f"primary); theoretical minimum {delta.affected_fraction:.1%}"
        )
    return 0


def _add_cache(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "./.repro-cache)")
    p.set_defaults(func=_cmd_cache)


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache at {stats['root']}: {stats['entries']} entries, "
          f"{stats['bytes']} bytes")
    if stats["prefixes"]:
        rows = [
            {"digest_prefix": prefix, "entries": count}
            for prefix, count in sorted(stats["prefixes"].items())
        ]
        print(render_table(rows))
    return 0


def _add_strategies(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("strategies", help="list registered strategies")
    p.set_defaults(func=_cmd_strategies)


def _cmd_strategies(args: argparse.Namespace) -> int:
    for name in KNOWN_STRATEGIES:
        marker = "*" if name in FIGURE2_STRATEGIES else " "
        description = get_builder(name).description
        print(f" {marker} {name:20s} {description}")
    print("\n * = plotted in the paper's Figure 2")
    return 0


def _add_scenarios(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser("scenarios", help="list registered scenarios")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="show overrides and fault schedules")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable listing (names, workload params, "
                        "fault events)")
    p.set_defaults(func=_cmd_scenarios)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.as_json:
        print(json.dumps(
            [SCENARIOS[name].to_dict() for name in SCENARIOS], indent=2
        ))
        return 0
    for name in SCENARIOS:
        spec = SCENARIOS[name]
        if args.verbose:
            print(spec.describe())
        else:
            faults = len(spec.faults)
            tag = f" ({faults} fault event{'s' if faults != 1 else ''})" if faults else ""
            print(f"  {name:24s} {spec.summary}{tag}")
    print("\nrun one with: python -m repro run --scenario <name>")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    tasks, metadata = load_trace(args.path)
    print(f"metadata: {metadata}")
    rows = [{"metric": k, "value": v} for k, v in trace_stats(tasks).items()]
    print(render_table(rows))
    return 0


def _subcommands(
    parser: argparse.ArgumentParser,
) -> _t.Dict[str, argparse.ArgumentParser]:
    """Name -> subparser map of one parser's subcommands (empty if none)."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _describe_action(action: argparse.Action) -> _t.Optional[_t.Dict[str, str]]:
    """One markdown table row for an argparse action (None = skip)."""
    if isinstance(
        action, (argparse._HelpAction, argparse._SubParsersAction)
    ):
        return None
    if action.option_strings:
        metavar = action.metavar or (
            action.dest.upper() if action.nargs != 0 else ""
        )
        flag = ", ".join(action.option_strings)
        if metavar and action.nargs != 0:
            flag = f"{flag} {metavar}"
    else:
        flag = action.metavar or action.dest
    if action.default is None or action.default is argparse.SUPPRESS:
        default = "--"
    elif action.default is False and action.nargs == 0:
        default = "--"
    else:
        default = repr(action.default)
    help_text = (action.help or "").replace("|", "\\|")
    if action.choices is not None and len(action.choices) <= 8:
        help_text += f" (choices: {', '.join(str(c) for c in action.choices)})"
    return {"flag": f"`{flag}`", "default": default, "help": help_text}


def render_cli_docs(parser: _t.Optional[argparse.ArgumentParser] = None) -> str:
    """Render ``docs/cli.md`` from the live argparse tree.

    Every flag of every subcommand lands in one greppable file; the docs
    test regenerates this text and diffs it against the committed file,
    so the CLI reference can never drift from the parser.
    """
    parser = parser if parser is not None else build_parser()
    lines = [
        "# CLI reference",
        "",
        "<!-- Generated by `repro docs-cli --out docs/cli.md`; do not edit"
        " by hand. -->",
        "",
        f"`python -m repro` / `repro` -- {parser.description}",
        "",
        "Run `repro <command> --help` for the authoritative, current help.",
        "",
    ]

    def emit(name: str, sub: argparse.ArgumentParser, depth: int) -> None:
        lines.append(f"{'#' * depth} `repro {name}`")
        lines.append("")
        help_text = sub.description or ""
        if help_text:
            lines.append(help_text)
            lines.append("")
        rows = [r for r in map(_describe_action, sub._actions) if r]
        if rows:
            lines.append("| flag | default | meaning |")
            lines.append("| --- | --- | --- |")
            for row in rows:
                lines.append(
                    f"| {row['flag']} | {row['default']} | {row['help']} |"
                )
            lines.append("")
        for child_name, child in _subcommands(sub).items():
            emit(f"{name} {child_name}", child, depth + 1)

    for name, sub in _subcommands(parser).items():
        emit(name, sub, 2)
    return "\n".join(lines).rstrip() + "\n"


def _add_docs_cli(subparsers: argparse._SubParsersAction) -> None:
    p = subparsers.add_parser(
        "docs-cli", help="render docs/cli.md from the argparse tree"
    )
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the markdown here (default: stdout)")
    p.add_argument("--check", default=None, metavar="PATH",
                   help="exit 1 unless PATH matches the rendered markdown")
    p.set_defaults(func=_cmd_docs_cli)


def _cmd_docs_cli(args: argparse.Namespace) -> int:
    from pathlib import Path

    text = render_cli_docs()
    if args.check is not None:
        on_disk = Path(args.check).read_text(encoding="utf-8")
        if on_disk != text:
            print(
                f"{args.check} is stale; regenerate with "
                f"`repro docs-cli --out {args.check}`",
                file=sys.stderr,
            )
            return 1
        print(f"{args.check} is up to date")
        return 0
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
        return 0
    print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BRB (SIGCOMM'15) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run(subparsers)
    _add_profile(subparsers)
    _add_sweep(subparsers)
    _add_figure1(subparsers)
    _add_figure2(subparsers)
    _add_serve(subparsers)
    _add_loadgen(subparsers)
    _add_watch(subparsers)
    _add_firehose(subparsers)
    _add_compare(subparsers)
    _add_trace(subparsers)
    _add_ring(subparsers)
    _add_cache(subparsers)
    _add_strategies(subparsers)
    _add_scenarios(subparsers)
    _add_docs_cli(subparsers)
    return parser


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (`repro trace ... | head`) closed stdout;
        # swap in devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
