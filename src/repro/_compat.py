"""Small version-compatibility helpers.

The package supports Python 3.9+ (see ``pyproject.toml``), but some
performance features only exist on newer interpreters.  Everything here
degrades gracefully: behaviour is identical across versions, only the
memory/speed profile differs.
"""

from __future__ import annotations

import dataclasses
import sys
import typing as _t

if sys.version_info >= (3, 10):

    def slots_dataclass(**kwargs: _t.Any) -> _t.Callable[[type], type]:
        """``@dataclasses.dataclass(slots=True, ...)`` where supported.

        ``__slots__``-based instances skip the per-object ``__dict__``,
        which matters for the message and operation types allocated once
        per simulated request.  On 3.9 the decorator silently drops the
        slots (plain dataclass), trading memory for compatibility.
        """
        return dataclasses.dataclass(slots=True, **kwargs)

else:  # pragma: no cover - exercised only on 3.9

    def slots_dataclass(**kwargs: _t.Any) -> _t.Callable[[type], type]:
        return dataclasses.dataclass(**kwargs)
