"""Self-healing evaluation: SLO remediation on vs off, same seeds.

For each faulted scenario we run its ``monitor`` baseline (metrics bus
and breach detector streaming, policy never acts -- so both modes carry
the identical observation load) against the ``slo`` mode (full loop:
detect, act through placement/credits/hedging, revert on clear).

What the numbers show at bench scale (12k tasks x 3 seeds, C3):

* ``hot-shard`` -- the headline win.  Spreading the hot partition's
  replicas cuts the windowed-p99 breach count roughly in half and the
  measured p99 by ~4x; every seed improves on both axes.
* ``flash-crowd`` -- roughly neutral: surges clear before the hysteresis
  confirms a breach at most seeds, and the actions that do fire neither
  help nor hurt.
* ``crash-restart`` -- neutral by design: the crash fault driver already
  re-homes routing, so remediation's exclusions overlap it.  The check
  here is "first, do no harm".

Artifacts: ``results/remediation.json`` + ``results/remediation.txt``.
"""

import pytest
from conftest import bench_scale, save_report

from repro.harness import run_experiment
from repro.scenarios import get_scenario

#: Scenarios paired with how strongly remediation must win there.
SCENARIOS = ("hot-shard", "flash-crowd", "crash-restart")
MODES = ("monitor", "slo")
SLO_P99_MS = 10.0
STRATEGY = "c3"


def _run_pairs(n_tasks, seeds):
    results = {}
    for scenario in SCENARIOS:
        spec = get_scenario(scenario)
        for mode in MODES:
            config = spec.build_config(
                strategy=STRATEGY,
                n_tasks=n_tasks,
                remediation=mode,
                slo_p99_ms=SLO_P99_MS,
            )
            results[(scenario, mode)] = [
                run_experiment(config, seed=seed) for seed in seeds
            ]
    return results


def _cell(runs):
    return {
        "p99_ms": [round(r.summary().p99 * 1000.0, 4) for r in runs],
        "breach_windows": [r.extras["slo_breach_windows"] for r in runs],
        "windows_evaluated": [r.extras["slo_windows_evaluated"] for r in runs],
        "actions": [r.extras["remediation_actions"] for r in runs],
        "bus_snapshots": [r.extras["bus_snapshots"] for r in runs],
    }


def test_remediation(once):
    n_tasks, seeds = bench_scale()
    runs = once(_run_pairs, n_tasks, seeds)

    data = {
        "strategy": STRATEGY,
        "slo_p99_ms": SLO_P99_MS,
        "n_tasks": n_tasks,
        "seeds": list(seeds),
        "scenarios": {
            scenario: {mode: _cell(runs[(scenario, mode)]) for mode in MODES}
            for scenario in SCENARIOS
        },
    }

    lines = [
        f"SLO remediation on vs off -- {STRATEGY}, {n_tasks} tasks x "
        f"{len(seeds)} seeds, target p99 {SLO_P99_MS:.0f} ms (model time)",
        "",
        f"{'scenario':<16} {'mode':<8} {'p99 ms (per seed)':<28} "
        f"{'breach windows':<16} {'actions'}",
    ]
    for scenario in SCENARIOS:
        for mode in MODES:
            cell = data["scenarios"][scenario][mode]
            lines.append(
                f"{scenario:<16} {mode:<8} "
                f"{'/'.join(f'{v:.1f}' for v in cell['p99_ms']):<28} "
                f"{'/'.join(f'{v:.0f}' for v in cell['breach_windows']):<16} "
                f"{'/'.join(f'{v:.0f}' for v in cell['actions'])}"
            )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("remediation", report, data=data)

    # -- the acceptance comparison ---------------------------------------
    # Monitor mode must observe without acting, in every cell.
    for (scenario, mode), cell_runs in runs.items():
        for r in cell_runs:
            assert r.tasks_completed == n_tasks, (scenario, mode)
            assert r.extras["bus_snapshots"] > 0, (scenario, mode)
            if mode == "monitor":
                assert r.extras["remediation_actions"] == 0.0, scenario

    # Hot shard: remediation wins on both axes at every seed.
    for mon, slo in zip(runs[("hot-shard", "monitor")], runs[("hot-shard", "slo")]):
        assert slo.extras["remediation_actions"] >= 1.0
        assert slo.extras["slo_breach_windows"] < mon.extras["slo_breach_windows"]
        assert slo.summary().p99 < mon.summary().p99

    # The neutral scenarios: first, do no harm (10% p99 headroom for the
    # re-timed event schedule, one extra breach window of slack).
    for scenario in ("flash-crowd", "crash-restart"):
        for mon, slo in zip(runs[(scenario, "monitor")], runs[(scenario, "slo")]):
            assert slo.summary().p99 <= mon.summary().p99 * 1.10, scenario
            assert (
                slo.extras["slo_breach_windows"]
                <= mon.extras["slo_breach_windows"] + 1
            ), scenario
