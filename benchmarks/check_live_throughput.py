"""CI perf-smoke gate for the live wire path: fail on a >30% regression.

Usage::

    python benchmarks/check_live_throughput.py \
        [results/live_throughput.json] [results/live_throughput_baseline.json]

Compares the fresh ``benchmarks/test_bench_live_throughput.py`` grid
against the committed baseline's ``current`` block:

* per-cell **normalized** multigets/sec (multigets per calibration spin,
  which cancels machine speed) must stay above ``TOLERANCE`` of baseline;
* the structural **ratios** (headline vs sequential speedup, binary vs
  JSON at equal depth) must hold at the same tolerance -- these are the
  levers the overhaul claims, and they regress independently of raw
  speed (e.g. a codec change that slows only the binary path);
* the headline cell's ``writes_per_multiget`` must not grow past
  ``1/TOLERANCE`` of baseline -- write coalescing quietly breaking shows
  up here long before raw throughput does on a fast loopback.

The live path forks server processes and rides the scheduler, so it is
noisier than the in-process event-loop bench; the tolerance is looser
(0.7 vs the kernel gate's 0.8).  Exit code 1 on any regression.

To re-record the baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_live_throughput.py -q
    python benchmarks/check_live_throughput.py --update-baseline
"""

import json
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "results"
TOLERANCE = 0.7  # fail below 70% of baseline (a >30% regression)

#: Grid cells that are informational, never gated (high variance by
#: design: the fanout rider multiplies per-multiget work eightfold).
UNGATED_CELLS = frozenset({"binary-pooled-2proc-fanout8"})

RATIOS = ("headline_vs_sequential", "binary_vs_json_deep")


def _cells(data):
    return sorted(data.get("cells", {}))


def update_baseline(measured_path, baseline_path):
    measured = json.loads(Path(measured_path).read_text())
    if Path(baseline_path).exists():
        baseline = json.loads(Path(baseline_path).read_text())
    else:
        baseline = {}
    baseline["current"] = {
        "calibration_spins_per_sec": measured["calibration_spins_per_sec"],
        "config": measured["config"],
        "cells": measured["cells"],
        "ratios": measured["ratios"],
    }
    Path(baseline_path).write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline 'current' block updated from {measured_path}")
    return 0


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    measured_path = args[0] if args else RESULTS / "live_throughput.json"
    baseline_path = (
        args[1] if len(args) > 1 else RESULTS / "live_throughput_baseline.json"
    )
    if "--update-baseline" in argv:
        return update_baseline(measured_path, baseline_path)

    measured = json.loads(Path(measured_path).read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    current = baseline.get("current")
    if current is None:
        print("baseline has no 'current' block; run with --update-baseline first")
        return 1

    failed = False
    for cell in _cells(current):
        if cell in UNGATED_CELLS:
            continue
        want = current["cells"][cell].get("normalized")
        got = measured.get("cells", {}).get(cell, {}).get("normalized")
        if got is None:
            # A cell the baseline gates vanished from the grid: config
            # drift, not a perf result -- fail loudly with a pointer.
            print(
                f"{cell:28s} missing from the fresh measurement; "
                "re-record with --update-baseline if the grid changed "
                "intentionally"
            )
            failed = True
            continue
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= TOLERANCE else "REGRESSED"
        print(
            f"{cell:28s} normalized {got:.6f} vs baseline {want:.6f} "
            f"({ratio:.2f}x)  {status}"
        )
        if ratio < TOLERANCE:
            failed = True

    for name in RATIOS:
        want = current.get("ratios", {}).get(name)
        got = measured.get("ratios", {}).get(name)
        if want is None:
            continue
        if got is None:
            print(f"{name:28s} missing from the fresh measurement")
            failed = True
            continue
        ratio = got / want
        status = "ok" if ratio >= TOLERANCE else "REGRESSED"
        print(
            f"{name:28s} {got:.2f}x vs baseline {want:.2f}x "
            f"({ratio:.2f}x)  {status}"
        )
        if ratio < TOLERANCE:
            failed = True

    headline = current.get("ratios", {}).get("headline_cell")
    want_wpm = current.get("cells", {}).get(headline, {}).get("writes_per_multiget")
    got_wpm = (
        measured.get("cells", {}).get(headline, {}).get("writes_per_multiget")
    )
    if want_wpm and got_wpm is not None:
        # More syscalls per multiget = coalescing regressed.  The floor
        # keeps the check meaningful when the baseline is near-perfectly
        # coalesced (a hundredth of a write per multiget).
        limit = max(want_wpm / TOLERANCE, 0.1)
        status = "ok" if got_wpm <= limit else "REGRESSED"
        print(
            f"{'writes_per_multiget':28s} {got_wpm:.4f} vs baseline "
            f"{want_wpm:.4f} (limit {limit:.4f})  {status}"
        )
        if got_wpm > limit:
            failed = True

    ungated = [
        c
        for c in _cells(measured)
        if c not in UNGATED_CELLS and c not in current.get("cells", {})
    ]
    if ungated:
        print(
            f"note: cells {ungated} are measured but not in the baseline; "
            "run --update-baseline to start gating them"
        )
    if failed:
        print(
            f"FAIL: live throughput regressed more than "
            f"{(1 - TOLERANCE) * 100:.0f}% against the committed baseline"
        )
        return 1
    print("live perf-smoke: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
