"""Live loopback benchmark: wall-clock p50/p99 per strategy.

Starts an in-process :class:`~repro.serve.LiveServer` and drives it with
the scenario-replaying load generator, once per strategy, recording the
live percentiles next to a matching simulation of the identical config.
This is the acceptance benchmark for the live serving subsystem: every
strategy must complete its full multiget count, and BRB's credits
realization must keep its tail at or below the C3 baseline *on real
concurrency*, mirroring the simulated ordering.

Scale control: ``REPRO_LIVE_TASKS`` (default 1500 -- roughly half a minute
of wall time across the strategies), ``REPRO_LIVE_TIME_SCALE`` (default
25; larger = more timer headroom, longer wall time).
"""

import asyncio
import os

from conftest import save_report

from repro.analysis import render_table
from repro.harness import run_experiment
from repro.loadgen import run_live
from repro.scenarios import get_scenario
from repro.serve import DEFAULT_TIME_SCALE, LiveServer

STRATEGIES = ("c3", "unifincr-credits", "equalmax-credits")
SCENARIO = "steady-state"


def live_scale():
    n_tasks = int(os.environ.get("REPRO_LIVE_TASKS", 1500))
    time_scale = float(os.environ.get("REPRO_LIVE_TIME_SCALE", DEFAULT_TIME_SCALE))
    return n_tasks, time_scale


async def run_one_live(config, time_scale):
    server = LiveServer.from_config(config, time_scale=time_scale, port=0)
    await server.start()
    try:
        return await run_live(config, seed=1, host=server.host, port=server.port)
    finally:
        await server.stop()


def run_loopback_bench(n_tasks, time_scale):
    scenario = get_scenario(SCENARIO)
    rows = []
    raw = {"scenario": SCENARIO, "n_tasks": n_tasks, "time_scale": time_scale,
           "strategies": {}}
    for strategy in STRATEGIES:
        config = scenario.build_config(strategy=strategy, n_tasks=n_tasks)
        live = asyncio.run(run_one_live(config, time_scale))
        sim = run_experiment(config, seed=1)
        live_summary = live.summary((50.0, 99.0))
        sim_summary = sim.summary((50.0, 99.0))
        assert live.tasks_completed == n_tasks, (
            f"{strategy}: live run lost tasks "
            f"({live.tasks_completed}/{n_tasks})"
        )
        rows.append(
            {
                "strategy": strategy,
                "live p50 (ms)": live_summary.median * 1e3,
                "live p99 (ms)": live_summary.p99 * 1e3,
                "sim p50 (ms)": sim_summary.median * 1e3,
                "sim p99 (ms)": sim_summary.p99 * 1e3,
                "wall (s)": live.extras["live_wall_duration_s"],
            }
        )
        raw["strategies"][strategy] = {
            "live_p50_ms": live_summary.median * 1e3,
            "live_p99_ms": live_summary.p99 * 1e3,
            "sim_p50_ms": sim_summary.median * 1e3,
            "sim_p99_ms": sim_summary.p99 * 1e3,
            "tasks_completed": live.tasks_completed,
            "requests_served": live.requests_served,
            "wall_duration_s": live.extras["live_wall_duration_s"],
        }
    return rows, raw


def test_live_loopback(once):
    n_tasks, time_scale = live_scale()
    rows, raw = once(run_loopback_bench, n_tasks, time_scale)

    report = render_table(
        rows,
        title=(
            f"live loopback vs sim -- {SCENARIO}, {n_tasks} multigets, "
            f"time scale {time_scale:g}x"
        ),
        float_fmt=".3f",
    )
    print()
    print(report)
    save_report("live_loopback", report, raw)

    by_name = {row["strategy"]: row for row in rows}
    for row in rows:
        assert 0 < row["live p99 (ms)"] < float("inf")
    # The paper's ordering must carry over to real concurrency: BRB's
    # realizable credits tail no worse than the C3 baseline.
    assert (
        by_name["unifincr-credits"]["live p99 (ms)"]
        <= by_name["c3"]["live p99 (ms)"]
    ), "live run inverted the BRB vs C3 tail ordering"
