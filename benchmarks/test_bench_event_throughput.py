"""Kernel event-throughput benchmark: the bench trajectory's speed data.

Measures events/sec and tasks/sec for

* ``micro`` -- the classic bank-of-timers stress test driven through the
  process + ``timeout()`` path (the same workload
  ``results/event_throughput_baseline.json`` records for the pre-overhaul
  engine);
* ``micro_callback`` -- the same ticker bank on the calendar's bare
  ``call_later`` Timer fast path (no Event wrapper, no process);
* one full simulation per strategy (steady-state scenario), where the
  kernel, the workload generator and the cluster substrate all run.

Writes ``results/event_throughput.json`` including the speedup against
the committed pre-overhaul baseline.  Raw events/sec are machine-bound,
so every measurement also records a pure-Python calibration spin rate;
the ``normalized`` values (events per spin) transfer across machines and
are what CI's perf-smoke gate compares (see
``benchmarks/check_event_throughput.py`` and ``docs/performance.md``).
"""

import json
import os
import time
from pathlib import Path

from conftest import pingpong_events, save_report

from repro.harness.runner import run_experiment
from repro.scenarios import get_scenario
from repro.sim import Environment

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "event_throughput_baseline.json"

STRATEGIES = ("c3", "unifincr-credits")
N_TASKS = int(os.environ.get("REPRO_BENCH_THROUGHPUT_TASKS", "2000"))
REPEATS = int(os.environ.get("REPRO_BENCH_THROUGHPUT_REPEATS", "3"))


def calibration_spin(n=2_000_000):
    """Pure-Python spin rate (iterations/sec): the machine-speed yardstick.

    Touches no repro code, so it is identical pre/post any engine change;
    dividing events/sec by it cancels most of the machine dependence.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(n):
        acc += i
    return n / (time.perf_counter() - t0)


def callback_ticker(n_timers=100, horizon=100.0):
    """Same ticker bank on the bare-callback Timer fast path."""
    env = Environment()

    def make(period):
        def tick(_arg):
            env.call_later(period, tick)

        return tick

    for i in range(n_timers):
        env.call_later(0.0, make(0.5 + 0.01 * i))
    env.run(until=horizon)
    return env.events_processed


def _best_rate(fn, repeats=REPEATS):
    """(best events/sec, events) over ``repeats`` runs (min wall time)."""
    best = 0.0
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        elapsed = time.perf_counter() - t0
        best = max(best, events / elapsed)
    return best, events


def measure_throughput():
    """All throughput sections of the results JSON (no baseline fields)."""
    spins = max(calibration_spin() for _ in range(3))
    out = {"calibration_spins_per_sec": spins, "strategies": {}}
    for name, fn in (("micro", pingpong_events), ("micro_callback", callback_ticker)):
        rate, events = _best_rate(fn)
        out[name] = {
            "events_per_sec": rate,
            "events": events,
            "normalized": rate / spins,
        }
    for strategy in STRATEGIES:
        config = get_scenario("steady-state").build_config(
            strategy=strategy, n_tasks=N_TASKS
        )
        best_events = 0.0
        best_tasks = 0.0
        events = 0
        for _ in range(max(2, REPEATS - 1)):
            t0 = time.perf_counter()
            result = run_experiment(config, seed=1)
            elapsed = time.perf_counter() - t0
            best_events = max(best_events, result.events_processed / elapsed)
            best_tasks = max(best_tasks, N_TASKS / elapsed)
            events = result.events_processed
        out["strategies"][strategy] = {
            "events_per_sec": best_events,
            "tasks_per_sec": best_tasks,
            "events": events,
            "n_tasks": N_TASKS,
            "normalized": best_events / spins,
        }
    out["tracing"] = measure_tracing_cells(spins)
    return out


def measure_tracing_cells(spins, strategy="unifincr-credits"):
    """Tracing-off and tracing-on cells for the overhead guard.

    ``off`` exercises the exact production default (recorder never
    constructed); ``on`` samples every post-warmup task, which is the
    worst case — real deployments sample a few percent.
    """
    cells = {}
    for label, sample in (("off", 0.0), ("on", 1.0)):
        config = get_scenario("steady-state").build_config(
            strategy=strategy, n_tasks=N_TASKS, trace_sample=sample
        )
        best = 0.0
        for _ in range(max(2, REPEATS - 1)):
            t0 = time.perf_counter()
            result = run_experiment(config, seed=1)
            elapsed = time.perf_counter() - t0
            best = max(best, result.events_processed / elapsed)
        cells[label] = {
            "trace_sample": sample,
            "events_per_sec": best,
            "normalized": best / spins,
        }
    cells["strategy"] = strategy
    cells["overhead_on_pct"] = 100.0 * (
        1.0 - cells["on"]["events_per_sec"] / cells["off"]["events_per_sec"]
    )
    return cells


def _attach_baseline(data):
    """Fold the committed pre-overhaul baseline + speedups into ``data``."""
    if not BASELINE_PATH.exists():
        return data
    baseline = json.loads(BASELINE_PATH.read_text())
    pre = baseline.get("pre_pr", {})
    base_spins = baseline.get("calibration_spins_per_sec")
    data["baseline"] = baseline
    speedups = {}

    def speedup(current_rate, base_rate):
        # Normalize both sides when the baseline has a spin rate, so the
        # ratio survives a machine change.
        if base_spins:
            return (current_rate / data["calibration_spins_per_sec"]) / (
                base_rate / base_spins
            )
        return current_rate / base_rate

    if "micro" in pre:
        base_rate = pre["micro"]["events_per_sec"]
        speedups["micro"] = speedup(data["micro"]["events_per_sec"], base_rate)
        # The callback ticker is the post-overhaul fast path; its baseline
        # is the same pre-overhaul process ticker (the closest the old
        # engine comes to "schedule a bare callback").
        speedups["micro_callback"] = speedup(
            data["micro_callback"]["events_per_sec"], base_rate
        )
    for strategy in STRATEGIES:
        if strategy in pre:
            speedups[strategy] = speedup(
                data["strategies"][strategy]["events_per_sec"],
                pre[strategy]["events_per_sec"],
            )
    data["speedup_vs_pre_pr"] = speedups
    return data


def test_event_throughput_bench():
    data = _attach_baseline(measure_throughput())
    lines = [
        "kernel event throughput (best of %d):" % REPEATS,
        f"  micro (process ticker):   {data['micro']['events_per_sec']:,.0f} events/s",
        f"  micro (callback ticker):  {data['micro_callback']['events_per_sec']:,.0f} events/s",
    ]
    for strategy in STRATEGIES:
        entry = data["strategies"][strategy]
        lines.append(
            f"  {strategy:20s} {entry['events_per_sec']:,.0f} events/s, "
            f"{entry['tasks_per_sec']:,.0f} tasks/s"
        )
    for name, ratio in sorted(data.get("speedup_vs_pre_pr", {}).items()):
        lines.append(f"  speedup vs pre-overhaul [{name}]: {ratio:.2f}x")
    tracing = data["tracing"]
    lines.append(
        f"  tracing off/on [{tracing['strategy']}]: "
        f"{tracing['off']['events_per_sec']:,.0f} / "
        f"{tracing['on']['events_per_sec']:,.0f} events/s "
        f"(full-sampling cost {tracing['overhead_on_pct']:.1f}%)"
    )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("event_throughput", report, data=data)

    # Sanity floor, not a perf gate (CI's perf-smoke compares normalized
    # rates against the committed baseline with 20% slack).
    assert data["micro"]["events_per_sec"] > 50_000
    assert data["micro_callback"]["events_per_sec"] > data["micro"]["events_per_sec"] * 0.8
    for strategy in STRATEGIES:
        assert data["strategies"][strategy]["events_per_sec"] > 5_000
    # Tracing-off must be free: the recorder is never constructed, so the
    # cell may not sit more than 5% below the same strategy's plain cell
    # (both measured this session, so machine speed cancels).
    plain = data["strategies"][tracing["strategy"]]["events_per_sec"]
    assert tracing["off"]["events_per_sec"] > plain * 0.95
    # Full sampling is bounded observation cost, not a rewrite of the run.
    assert tracing["on"]["events_per_sec"] > plain * 0.5
