"""Micro-benchmark: parallel grid execution vs the serial sweep loop.

Times the same 16-cell (4 values x 2 strategies x 2 seeds) load sweep
three ways -- serial, fanned over a 4-worker process pool, and re-run
against a warm on-disk result cache -- and verifies all three produce
byte-identical ``SweepResult.to_dict()`` output before reporting any
timing.  The parallel speedup scales with physical cores (~Nx on an
N >= 4 core machine for this CPU-bound grid); the warm-cache speedup is
hardware-independent.

Writes ``results/micro_sweep_parallel.txt`` / ``.json``.
"""

import os
import tempfile
import time

from conftest import save_report

from repro.harness import (
    ExperimentConfig,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    sweep,
)

WORKERS = 4
GRID_KWARGS = dict(
    parameter="load",
    values=[0.45, 0.6, 0.75, 0.9],
    strategies=("oblivious-random", "oblivious-lor"),
    seeds=(1, 2),
)


def _cells():
    return (
        len(GRID_KWARGS["values"])
        * len(GRID_KWARGS["strategies"])
        * len(GRID_KWARGS["seeds"])
    )


def _timed_sweep(base, executor=None):
    start = time.perf_counter()
    result = sweep(base, executor=executor, **GRID_KWARGS)
    return result, time.perf_counter() - start


def test_parallel_sweep_speedup():
    n_tasks = int(os.environ.get("REPRO_BENCH_TASKS", 2_000))
    base = ExperimentConfig(n_tasks=n_tasks, n_keys=5_000)
    cores = os.cpu_count() or 1

    serial, t_serial = _timed_sweep(base)
    parallel, t_parallel = _timed_sweep(base, ProcessExecutor(jobs=WORKERS))

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        _, t_cold_cache = _timed_sweep(base, ProcessExecutor(jobs=WORKERS, cache=cache))
        cached, t_warm_cache = _timed_sweep(base, SerialExecutor(cache=cache))
        assert cache.hits == _cells()  # warm pass re-ran nothing

    # Timing is meaningless unless the outputs are interchangeable.
    assert serial.canonical_json() == parallel.canonical_json()
    assert serial.canonical_json() == cached.canonical_json()

    parallel_speedup = t_serial / t_parallel
    cache_speedup = t_serial / t_warm_cache

    lines = [
        "parallel sweep micro-benchmark",
        f"grid: {len(GRID_KWARGS['values'])} values x "
        f"{len(GRID_KWARGS['strategies'])} strategies x "
        f"{len(GRID_KWARGS['seeds'])} seeds = {_cells()} cells, "
        f"{n_tasks} tasks/cell",
        f"machine: {cores} cores; pool workers: {WORKERS}",
        "",
        f"serial sweep:            {t_serial:8.2f} s",
        f"process pool (x{WORKERS}):       {t_parallel:8.2f} s   "
        f"speedup {parallel_speedup:5.2f}x",
        f"cold run filling cache:  {t_cold_cache:8.2f} s",
        f"warm-cache re-sweep:     {t_warm_cache:8.2f} s   "
        f"speedup {cache_speedup:5.2f}x",
        "",
        "serial, parallel and cached to_dict() outputs: byte-identical",
        f"(pool speedup tracks physical cores: expect ~{min(WORKERS, cores)}x "
        f"here, ~{WORKERS}x on a >= {WORKERS}-core machine)",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    save_report(
        "micro_sweep_parallel",
        report,
        data={
            "cells": _cells(),
            "n_tasks_per_cell": n_tasks,
            "cores": cores,
            "workers": WORKERS,
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "cold_cache_s": t_cold_cache,
            "warm_cache_s": t_warm_cache,
            "parallel_speedup": parallel_speedup,
            "cache_speedup": cache_speedup,
            "outputs_identical": True,
        },
    )
    # The cache's repeated-sweep speedup is hardware-independent; the pool
    # speedup approaches the worker count only with >= WORKERS free cores,
    # so it is recorded but not asserted.
    assert cache_speedup >= 2.0
