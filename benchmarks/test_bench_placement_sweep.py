"""Placement sweep: replication factor x shard count vs tail latency.

The placement layer's headline question: how much tail headroom does
replica routing freedom buy?  RF=1 pins every key to one server (no
selection at all -- load imbalance lands where it lands); RF=N is the
degenerate full-replication ring where any server is eligible for any
key (the pre-placement model); production sits between.  The shard count
sweeps the granularity the vnode ring can spread hotspots with.

Run under a skewed workload (hot-shard scenario shape) so placement
actually matters; steady-state's hash-uniform popularity barely
distinguishes RF values.  Writes ``results/placement_sweep.{txt,json}``.
"""

from conftest import bench_run_grid, bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig
from repro.harness.results import compare_strategies
from repro.cluster.topology import ClusterSpec

STRATEGIES = ("c3", "unifincr-credits")
REPLICATION_FACTORS = (1, 3, 9)
SHARD_COUNTS = (9, 36, 72)


def _cell_config(n_tasks, rf, shards):
    return ExperimentConfig(
        n_tasks=n_tasks,
        n_keys=20_000,
        zipf_skew=1.1,
        load=0.65,
        cluster=ClusterSpec(
            replication_factor=rf,
            placement_kind="chash",
            n_partitions=shards,
        ),
    )


def run_sweep(n_tasks, seeds):
    rows = []
    raw = {}
    for rf in REPLICATION_FACTORS:
        for shards in SHARD_COUNTS:
            cfg = _cell_config(n_tasks, rf, shards)
            comparison = compare_strategies(
                bench_run_grid(
                    {name: cfg.with_strategy(name) for name in STRATEGIES},
                    seeds,
                )
            )
            raw[f"rf{rf}-shards{shards}"] = comparison.to_dict()
            row = {"rf": rf, "shards": shards}
            for name in STRATEGIES:
                summary = comparison.summary_of(name)
                row[f"{name} p50 (ms)"] = summary.median * 1e3
                row[f"{name} p99 (ms)"] = summary.p99 * 1e3
            rows.append(row)
    # Delta columns against the paper's default cell (RF=3).
    base = {
        (row["shards"], name): row[f"{name} p99 (ms)"]
        for row in rows
        if row["rf"] == 3
        for name in STRATEGIES
    }
    for row in rows:
        for name in STRATEGIES:
            row[f"{name} d-p99 (ms)"] = (
                row[f"{name} p99 (ms)"] - base[(row["shards"], name)]
            )
    return rows, raw


def test_placement_sweep(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_sweep, max(2500, n_tasks // 4), seeds[:1])

    report = render_table(
        rows,
        title="Placement sweep -- replication factor x shard count "
        "(skewed workload, p99 deltas vs RF=3)",
        float_fmt=".2f",
    )
    print("\n" + report)
    save_report("placement_sweep", report, data=raw)

    by_cell = {(row["rf"], row["shards"]): row for row in rows}
    for row in rows:
        for name in STRATEGIES:
            assert row[f"{name} p99 (ms)"] > 0
    # Routing freedom helps the tail under skew: for the credits strategy,
    # the best replicated cell beats the unreplicated one per shard count.
    for shards in SHARD_COUNTS:
        replicated = min(
            by_cell[(rf, shards)]["unifincr-credits p99 (ms)"]
            for rf in REPLICATION_FACTORS
            if rf > 1
        )
        pinned = by_cell[(1, shards)]["unifincr-credits p99 (ms)"]
        assert replicated < pinned * 1.05, (
            f"replication gave no tail benefit at {shards} shards: "
            f"best replicated {replicated:.2f}ms vs RF=1 {pinned:.2f}ms"
        )
