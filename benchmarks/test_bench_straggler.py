"""Ablation F: a degraded replica (straggler) and how each system absorbs it.

One of the nine servers runs 4x slower in recurring windows (GC pauses /
compaction).  Three mitigation philosophies meet the same fault:

* **C3** re-ranks replicas away from the slow server (feedback-driven);
* **hedged** duplicates late requests to another replica (reactive);
* **BRB (UnifIncr-credits)** spreads by outstanding bytes and lets
  priorities protect short tasks queued behind straggler-inflated work;
* **oblivious-random** is the no-defence floor.

Paper connection: BRB "complements" mitigation approaches (i)-(iii) of its
Section 1; this bench quantifies the complement on a concrete straggler.

The fault shape is the registered ``straggler`` scenario (one server 4x
slower in recurring windows), so the bench, the CLI and ad-hoc scripts all
measure the same thing.
"""

from conftest import bench_scale, save_report

from repro.analysis import render_table, slo_attainment
from repro.harness import run_experiment
from repro.scenarios import get_scenario

STRATEGIES = ("oblivious-random", "c3", "hedged", "unifincr-credits")


def run_ablation(n_tasks, seed):
    rows = []
    raw = {}
    scenario = get_scenario("straggler")
    for strategy in STRATEGIES:
        cfg = scenario.build_config(strategy=strategy, n_tasks=n_tasks)
        result = run_experiment(cfg, seed=seed)
        summary = result.summary((50.0, 95.0, 99.0))
        values = result.task_latencies.values()
        rows.append(
            {
                "strategy": strategy,
                "p50 (ms)": summary.median * 1e3,
                "p99 (ms)": summary.p99 * 1e3,
                "SLO<=5ms": slo_attainment(values, 5e-3),
                "windows": result.extras.get("slowdown_windows", 0.0),
                "hedges": result.extras.get("hedges_sent", 0.0),
            }
        )
        raw[strategy] = {
            "p50_ms": summary.median * 1e3,
            "p99_ms": summary.p99 * 1e3,
            "slo_5ms": slo_attainment(values, 5e-3),
        }
    return rows, raw


def test_straggler(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_ablation, max(4000, n_tasks // 2), seeds[0])

    report = render_table(
        rows, title="Ablation F -- one replica 4x slow (recurring windows)"
    )
    print("\n" + report)
    save_report("ablation_straggler", report, data=raw)

    by_name = {row["strategy"]: row for row in rows}
    assert all(row["windows"] >= 1 for row in rows), "fault never fired"
    # Every defence beats the no-defence floor at the tail.
    floor = by_name["oblivious-random"]["p99 (ms)"]
    for strategy in ("c3", "hedged", "unifincr-credits"):
        assert by_name[strategy]["p99 (ms)"] < floor, strategy
    # BRB keeps the best median under the fault.
    assert by_name["unifincr-credits"]["p50 (ms)"] == min(
        row["p50 (ms)"] for row in rows
    )
