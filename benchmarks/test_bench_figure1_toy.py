"""Figure 1: the worked example (task-oblivious vs task-aware schedule).

Paper claim: with servers S1=[A,E], S2=[B,C], S3=[D] and tasks T1=[A,B,C],
T2=[D,E], a task-oblivious schedule completes T2 in 2 time units while the
task-aware (optimal) schedule completes it in 1; T1 takes 2 either way.
"""

from conftest import save_report

from repro.harness import figure1_toy


def test_figure1_schedules(once):
    def run():
        oblivious = figure1_toy(task_aware=False)
        aware_unif = figure1_toy(task_aware=True, assigner_name="unifincr")
        aware_eqmx = figure1_toy(task_aware=True, assigner_name="equalmax")
        return oblivious, aware_unif, aware_eqmx

    oblivious, aware_unif, aware_eqmx = once(run)

    # The paper's exact numbers (unit service times).
    assert oblivious.t1_completion == 2.0
    assert oblivious.t2_completion == 2.0
    for aware in (aware_unif, aware_eqmx):
        assert aware.t1_completion == 2.0
        assert aware.t2_completion == 1.0

    lines = [
        "Figure 1 -- toy schedule (completion times in service-time units)",
        "",
        f"{'schedule':<26} {'T1':>5} {'T2':>5}",
        f"{'task-oblivious (paper: 2/2)':<26} {oblivious.t1_completion:>5.1f} {oblivious.t2_completion:>5.1f}",
        f"{'task-aware/unifincr (2/1)':<26} {aware_unif.t1_completion:>5.1f} {aware_unif.t2_completion:>5.1f}",
        f"{'task-aware/equalmax (2/1)':<26} {aware_eqmx.t1_completion:>5.1f} {aware_eqmx.t2_completion:>5.1f}",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    save_report(
        "figure1_toy",
        report,
        data={
            "oblivious": {"t1": oblivious.t1_completion, "t2": oblivious.t2_completion},
            "unifincr": {"t1": aware_unif.t1_completion, "t2": aware_unif.t2_completion},
            "equalmax": {"t1": aware_eqmx.t1_completion, "t2": aware_eqmx.t2_completion},
        },
    )
