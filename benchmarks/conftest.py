"""Shared benchmark configuration.

Scale control
-------------
Benchmarks default to a scaled-down task count so the whole suite runs in
minutes on a laptop.  Two environment variables widen the scope:

* ``REPRO_FULL_SCALE=1`` -- the paper's full setup (500k tasks, 6 seeds).
  Expect hours of wall time with the pure-Python kernel.
* ``REPRO_BENCH_TASKS=<n>`` / ``REPRO_BENCH_SEEDS=<k>`` -- override the
  scaled defaults directly.

Every benchmark writes its rendered report and raw JSON into
``results/`` at the repository root, which is where EXPERIMENTS.md points.
"""

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Scaled defaults (paper: 500_000 tasks, 6 seeds).
DEFAULT_TASKS = 12_000
DEFAULT_SEEDS = (1, 2, 3)


def bench_scale():
    """(n_tasks, seeds) for the current invocation."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return 500_000, (1, 2, 3, 4, 5, 6)
    n_tasks = int(os.environ.get("REPRO_BENCH_TASKS", DEFAULT_TASKS))
    n_seeds = int(os.environ.get("REPRO_BENCH_SEEDS", len(DEFAULT_SEEDS)))
    return n_tasks, tuple(range(1, n_seeds + 1))


def bench_executor():
    """Grid executor honoring ``REPRO_BENCH_JOBS`` (serial by default).

    ``REPRO_BENCH_JOBS=N`` fans each benchmark's run grid over N worker
    processes (0 = all cores); results are byte-identical to serial runs
    (see ``repro.harness.parallel``), so the assertions are unaffected.
    """
    from repro.harness import make_executor

    jobs = os.environ.get("REPRO_BENCH_JOBS")
    return make_executor(jobs=int(jobs) if jobs is not None else None)


def bench_run_grid(configs, seeds):
    """Run {strategy: config} x seeds as ONE grid through the executor.

    Returns ``{strategy: [RunResult, ...]}`` ready for
    ``compare_strategies``.  Fanning the whole strategy x seed block in a
    single ``run_jobs`` call (instead of one ``run_seeds`` per strategy)
    lets ``REPRO_BENCH_JOBS`` workers span the full block and pays pool
    startup once per sweep point.
    """
    from repro.harness.parallel import enumerate_run_grid, split_by_strategy

    jobs = enumerate_run_grid([configs], seeds)
    return split_by_strategy(
        bench_executor().run_jobs(jobs), list(configs), len(seeds)
    )


def pingpong_events(n_processes=100, horizon=100.0):
    """A bank of timer processes: the canonical kernel micro-workload.

    Shared by ``test_bench_micro.py`` and
    ``test_bench_event_throughput.py`` so the committed throughput
    baseline and the perf gate always measure the *same* workload.
    """
    from repro.sim import Environment

    env = Environment()

    def ticker(env, period):
        while True:
            yield env.timeout(period)

    for i in range(n_processes):
        env.process(ticker(env, 0.5 + 0.01 * i))
    env.run(until=horizon)
    return env.events_processed


def save_report(name: str, text: str, data=None) -> None:
    """Persist a rendered report (and optional JSON) under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2), encoding="utf-8"
        )


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark timer.

    Simulation runs are long and deterministic; statistical repetition
    belongs to the seed grid, not the wall-clock timer.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
