"""Live wire-path throughput benchmark: the firehose ablation grid.

Runs :func:`repro.loadgen.run_firehose` against real forked server
processes (:class:`repro.serve.ServeSupervisor`) across the protocol
ablation grid -- JSON vs binary codec, single connection vs pooled,
one vs two server processes, sequential vs pipelined -- and writes
``results/live_throughput.json``.  The grid isolates each lever of the
live-path overhaul:

* ``json-seq-1proc`` is the *before*: one JSON connection, one multiget
  in flight at a time (the synchronous request-response discipline the
  pre-overhaul transport approximated);
* the deep-window cells turn on pipelining, then the binary codec, then
  connection pooling, then the multi-process cluster;
* the ``fanout8`` rider reports a paper-shaped multiget (8 keys) on the
  full stack, for scale -- it is informational, not gated.

The backend is configured so the *transport* is what saturates: a small
time scale collapses emulated service sleeps below the event-loop timer
resolution, and a generous core count keeps the whole pipeline window in
service at once (otherwise the bench would measure queueing, which is
the loadgen driver's job to measure).  Raw rates are machine-bound, so
each cell also records a ``normalized`` value (multigets per calibration
spin); CI's live perf gate compares those (see
``benchmarks/check_live_throughput.py``).

Scale control: ``REPRO_FIREHOSE_MULTIGETS`` (default 12000) sizes the
largest cells; ``REPRO_BENCH_STRICT=1`` additionally enforces the
absolute acceptance floor (>= 50k multigets/s on the headline cell),
which only the baseline-recording machine is expected to clear.
"""

import asyncio
import os
import time

from conftest import save_report

from repro.cluster.topology import ClusterSpec
from repro.loadgen import run_firehose
from repro.scenarios import get_scenario
from repro.serve import ServeSupervisor

MULTIGETS = int(os.environ.get("REPRO_FIREHOSE_MULTIGETS", "12000"))
TIME_SCALE = float(os.environ.get("REPRO_FIREHOSE_TIME_SCALE", "0.02"))
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: Pipeline depth of the deep-window cells (multigets in flight).
WINDOW = 512

#: name -> (protocol, procs, pool, window, fanout, share of MULTIGETS).
#: The sequential baseline gets a small share: at one multiget in flight
#: it runs three orders of magnitude slower than the headline cell.
CELLS = (
    ("json-seq-1proc", 1, 1, 1, 1, 1, 0.08),
    ("json-deep-1proc", 1, 1, 1, WINDOW, 1, 0.5),
    ("binary-deep-1proc", 2, 1, 1, WINDOW, 1, 1.0),
    ("binary-pooled-1proc", 2, 1, 2, WINDOW, 1, 1.0),
    ("json-pooled-2proc", 1, 2, 2, WINDOW, 1, 0.5),
    ("binary-pooled-2proc", 2, 2, 2, WINDOW, 1, 1.0),
    ("binary-pooled-2proc-fanout8", 2, 2, 2, 64, 8, 0.25),
)

HEADLINE = "binary-pooled-2proc"
SEQUENTIAL = "json-seq-1proc"


def bench_config():
    """A steady-state cluster whose backend outruns the transport."""
    return get_scenario("steady-state").build_config(
        strategy="c3",
        n_tasks=1,
        cluster=ClusterSpec(n_servers=8, cores_per_server=64),
        # The firehose opts out of congestion broadcasts anyway; a long
        # interval keeps the per-worker monitors off the hot loop.
        congestion_check_interval=50.0,
    )


def calibration_spin(n=2_000_000):
    """Pure-Python spin rate: the machine-speed yardstick (see the event
    throughput bench, which uses the identical loop)."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(n):
        acc += i
    return n / (time.perf_counter() - t0)


def run_cell(config, protocol, procs, pool, window, fanout, multigets):
    """One grid cell: fork a fresh cluster, drive it, tear it down."""
    supervisor = ServeSupervisor(
        config, procs=procs, time_scale=TIME_SCALE, base_port=0
    )
    endpoints = supervisor.start()
    try:
        result = asyncio.run(
            run_firehose(
                endpoints,
                multigets=multigets,
                fanout=fanout,
                window=window,
                pool=pool,
                protocol=protocol,
            )
        )
    finally:
        supervisor.stop()
    return result


def measure():
    spins = max(calibration_spin() for _ in range(3))
    config = bench_config()
    data = {
        "calibration_spins_per_sec": spins,
        "config": {
            "n_servers": config.cluster.n_servers,
            "cores_per_server": config.cluster.cores_per_server,
            "time_scale": TIME_SCALE,
            "value_size": 1024,
        },
        "cells": {},
    }
    for name, protocol, procs, pool, window, fanout, share in CELLS:
        count = max(500, int(MULTIGETS * share))
        result = run_cell(config, protocol, procs, pool, window, fanout, count)
        cell = result.to_dict()
        cell["normalized"] = result.multigets_per_s / spins
        data["cells"][name] = cell
    headline = data["cells"][HEADLINE]
    sequential = data["cells"][SEQUENTIAL]
    data["ratios"] = {
        "headline_vs_sequential": (
            headline["multigets_per_s"] / sequential["multigets_per_s"]
        ),
        "binary_vs_json_deep": (
            data["cells"]["binary-deep-1proc"]["multigets_per_s"]
            / data["cells"]["json-deep-1proc"]["multigets_per_s"]
        ),
        "headline_cell": HEADLINE,
        "sequential_cell": SEQUENTIAL,
    }
    return data


def test_live_throughput_bench():
    data = measure()
    lines = ["live wire-path throughput (firehose):"]
    for name, cell in data["cells"].items():
        lines.append(
            f"  {name:28s} {cell['multigets_per_s']:9,.0f} multigets/s  "
            f"p50 {cell['p50_ms']:7.2f} ms  p99 {cell['p99_ms']:7.2f} ms  "
            f"writes/mg {cell['writes_per_multiget']:.3f}  "
            f"bytes/op {cell['bytes_per_op']:.1f}"
        )
    ratios = data["ratios"]
    lines.append(
        f"  speedup {HEADLINE} vs {SEQUENTIAL}: "
        f"{ratios['headline_vs_sequential']:.1f}x"
    )
    lines.append(
        f"  binary vs JSON (deep window): {ratios['binary_vs_json_deep']:.2f}x"
    )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("live_throughput", report, data=data)

    cells = data["cells"]
    # Every cell must have actually completed its multigets with sane
    # latencies; a wedged cell would otherwise record rate 0 silently.
    for name, cell in cells.items():
        assert cell["multigets_per_s"] > 0, name
        assert 0 < cell["p99_ms"] < float("inf"), name
    # Machine-independent structural claims of the overhaul:
    # pipelining + binary + pooling + processes beats the sequential JSON
    # baseline by an order of magnitude ...
    assert ratios["headline_vs_sequential"] >= 10.0
    # ... the codec alone is a clear win at equal pipeline depth ...
    assert ratios["binary_vs_json_deep"] >= 1.3
    # ... writes stay coalesced under pipelining (many frames per
    # syscall), which is the point of the BatchWriter.
    assert cells[HEADLINE]["writes_per_multiget"] < 0.5
    # Binary op+res round trip is ~33 payload bytes + 4B length prefix
    # per direction; anything near JSON's ~95 means negotiation failed.
    assert cells[HEADLINE]["bytes_per_op"] < 45.0
    if STRICT:
        # Absolute acceptance floor -- meaningful on the machine that
        # recorded the committed baseline, not on arbitrary CI runners.
        assert cells[HEADLINE]["multigets_per_s"] >= 50_000
