"""Ablation D: sensitivity to the credits adaptation/measurement intervals.

The paper fixes adaptation at 1 s and leaves the measurement interval
unspecified.  This ablation sweeps the measurement (grant) cadence and
shows the realization is robust once reports are much faster than the
1 s congestion adaptation -- and degrades when they are not.
"""

from conftest import bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig, run_seeds
from repro.harness.results import compare_strategies

INTERVALS = (0.025, 0.05, 0.1, 0.25)


def run_sweep(n_tasks, seeds):
    rows = []
    raw = {}
    for interval in INTERVALS:
        cfg = ExperimentConfig(
            n_tasks=n_tasks,
            strategy="equalmax-credits",
            credits_measurement_interval=interval,
        )
        comparison = compare_strategies(
            {"equalmax-credits": run_seeds(cfg, seeds)}
        )
        raw[str(interval)] = comparison.to_dict()
        s = comparison.summary_of("equalmax-credits")
        runs = comparison.strategies["equalmax-credits"].runs
        rows.append(
            {
                "measurement interval (s)": interval,
                "p50 (ms)": s.median * 1e3,
                "p99 (ms)": s.p99 * 1e3,
                "gated requests": sum(r.extras["gated_requests"] for r in runs),
            }
        )
    return rows, raw


def test_credits_interval(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_sweep, max(3000, n_tasks // 2), seeds[:1])

    report = render_table(
        rows, title="Ablation D -- credits measurement-interval sweep"
    )
    print("\n" + report)
    save_report("ablation_credits_interval", report, data=raw)

    # Medians are insensitive to the cadence (top-ups mask staleness).
    p50s = [row["p50 (ms)"] for row in rows]
    assert max(p50s) / min(p50s) < 1.3
    # All runs completed (the table itself is the evidence); p99 at the
    # fastest cadence is no worse than at the slowest by more than 2x.
    assert rows[0]["p99 (ms)"] < rows[-1]["p99 (ms)"] * 2.0
