"""Ablation C: priority algorithms under the identical credits realization.

Separates BRB's two levers: the credits *machinery* (shared by every row)
from the task-aware *priorities* (the only thing that differs).  FIFO
priorities are the null hypothesis; SJF is size-aware-but-task-oblivious;
EDF, EqualMax and UnifIncr are task-aware.
"""

from conftest import bench_run_grid, bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig
from repro.harness.results import compare_strategies

STRATEGIES = (
    "fifo-credits",
    "sjf-credits",
    "edf-credits",
    "equalmax-credits",
    "unifincr-credits",
)


def run_ablation(n_tasks, seeds):
    cfg = ExperimentConfig(n_tasks=n_tasks)
    comparison = compare_strategies(
        bench_run_grid(
            {name: cfg.with_strategy(name) for name in STRATEGIES}, seeds
        )
    )
    rows = []
    for name in STRATEGIES:
        s = comparison.summary_of(name)
        rows.append(
            {
                "priorities": name.replace("-credits", ""),
                "p50 (ms)": s.median * 1e3,
                "p95 (ms)": s.percentile(95.0) * 1e3,
                "p99 (ms)": s.p99 * 1e3,
                "mean (ms)": s.mean * 1e3,
            }
        )
    return rows, comparison.to_dict()


def test_priority_ablation(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_ablation, max(3000, n_tasks // 2), seeds[:1])

    report = render_table(
        rows, title="Ablation C -- priority assignment under credits"
    )
    print("\n" + report)
    save_report("ablation_priorities", report, data=raw)

    by_name = {row["priorities"]: row for row in rows}
    # Task-aware assigners beat FIFO at the median.
    for algo in ("equalmax", "unifincr", "edf"):
        assert by_name[algo]["p50 (ms)"] < by_name["fifo"]["p50 (ms)"], algo
    # EqualMax/UnifIncr at least match plain per-request SJF at the median
    # (they add task context on top of size-awareness).
    for algo in ("equalmax", "unifincr"):
        assert by_name[algo]["p50 (ms)"] <= by_name["sjf"]["p50 (ms)"] * 1.10, algo
