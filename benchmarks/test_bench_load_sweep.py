"""Ablation A: the Figure 2 ordering across system load.

Not a paper figure; establishes where the paper's headline factors live.
The BRB-over-C3 advantage grows with load (scheduling only matters when
queues form), while the credits/model gap widens too -- the trade the
realizable design makes.
"""

from conftest import bench_run_grid, bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig
from repro.harness.results import compare_strategies

LOADS = (0.4, 0.55, 0.7, 0.85)
STRATEGIES = ("c3", "equalmax-credits", "equalmax-model")


def run_sweep(n_tasks, seeds):
    rows = []
    raw = {}
    for load in LOADS:
        cfg = ExperimentConfig(n_tasks=n_tasks, load=load)
        comparison = compare_strategies(
            bench_run_grid(
                {name: cfg.with_strategy(name) for name in STRATEGIES}, seeds
            )
        )
        raw[str(load)] = comparison.to_dict()
        speedup = comparison.speedup("c3", "equalmax-credits")
        row = {"load": load}
        for name in STRATEGIES:
            row[f"{name} p99 (ms)"] = comparison.summary_of(name).p99 * 1e3
        row["C3/BRB @p50"] = speedup[50.0]
        row["C3/BRB @p99"] = speedup[99.0]
        rows.append(row)
    return rows, raw


def test_load_sweep(once):
    n_tasks, seeds = bench_scale()
    # The sweep multiplies runs by len(LOADS): use a third of the budget.
    rows, raw = once(run_sweep, max(2000, n_tasks // 3), seeds[:1])

    report = render_table(rows, title="Ablation A -- load sweep (p99 and C3/BRB factors)")
    print("\n" + report)
    save_report("ablation_load_sweep", report, data=raw)

    # The BRB advantage at the median must not shrink as load rises.
    medians = [row["C3/BRB @p50"] for row in rows]
    assert medians[-1] >= medians[0] * 0.9
    # BRB wins the median at every load.
    assert all(m > 1.0 for m in medians)
    # The model stays fastest at p99 everywhere.
    for row in rows:
        assert row["equalmax-model p99 (ms)"] <= row["equalmax-credits p99 (ms)"] * 1.05
