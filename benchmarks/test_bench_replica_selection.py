"""Ablation E: replica selection policies under task-oblivious FIFO.

Reconstructs the landscape BRB improves upon: random / round-robin /
least-outstanding / C3 (with and without rate control), all with FIFO
servers.  C3's ranking should beat random and round-robin at the tail --
this is the C3 paper's own claim, and it sanity-checks our baseline before
Figure 2 leans on it.
"""

from conftest import bench_run_grid, bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig
from repro.harness.results import compare_strategies

STRATEGIES = ("oblivious-random", "oblivious-rr", "oblivious-lor", "c3-norate", "c3")


def run_ablation(n_tasks, seeds):
    cfg = ExperimentConfig(n_tasks=n_tasks)
    comparison = compare_strategies(
        bench_run_grid(
            {name: cfg.with_strategy(name) for name in STRATEGIES}, seeds
        )
    )
    rows = []
    for name in STRATEGIES:
        s = comparison.summary_of(name)
        rows.append(
            {
                "selector": name,
                "p50 (ms)": s.median * 1e3,
                "p95 (ms)": s.percentile(95.0) * 1e3,
                "p99 (ms)": s.p99 * 1e3,
            }
        )
    return rows, comparison.to_dict()


def test_replica_selection(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_ablation, max(3000, n_tasks // 2), seeds[:1])

    report = render_table(
        rows, title="Ablation E -- replica selection under FIFO servers"
    )
    print("\n" + report)
    save_report("ablation_replica_selection", report, data=raw)

    by_name = {row["selector"]: row for row in rows}
    # Load-aware selection (LOR, C3) beats load-blind (random) at the tail.
    assert by_name["oblivious-lor"]["p99 (ms)"] < by_name["oblivious-random"]["p99 (ms)"]
    assert by_name["c3-norate"]["p99 (ms)"] < by_name["oblivious-random"]["p99 (ms)"] * 1.05
