"""The hot-shard attribution story, committed as a results artifact.

Runs the hot-shard scenario under full trace sampling for the paper's
headline pair and writes ``results/trace_attribution.{json,txt}``: where
each strategy's p99 critical path actually goes.

The story the artifact pins down (and this benchmark asserts):

* **unifincr-credits** queues on the hot shard — ``queue_wait`` dominates
  its p99 attribution, and nearly all of that queueing sits on
  partition 0 (the scenario's hot replica group).
* **c3** keeps the hot shard's server queues near empty (cubic rate
  limiter + queue-aware replica ranking) and pays its tail client-side
  instead: ``credit_wait`` (the pacing gate) dominates, with queue-wait
  share near zero.

That contrast is exactly what the tracing subsystem exists to surface:
"p99 is high" becomes "p99 is queue-bound *on the hot shard*" for one
strategy and "p99 is rate-limiter-bound at the client" for the other.
"""

import os

from conftest import save_report

from repro.harness.runner import run_experiment
from repro.scenarios import get_scenario
from repro.trace import (
    RunTraces,
    attribution,
    diff_attributions,
    render_attribution,
    render_diff,
)

N_TASKS = int(os.environ.get("REPRO_BENCH_TRACE_TASKS", "4000"))
SEEDS = (1, 2)
TAIL = 99.0


def collect(strategy):
    """Full-sample hot-shard traces for ``strategy``, seeds merged."""
    config = get_scenario("hot-shard").build_config(
        strategy=strategy, n_tasks=N_TASKS, trace_sample=1.0
    )
    group = RunTraces(
        strategy=strategy, scenario="hot-shard", realm="sim", sample=1.0,
        seeds=list(SEEDS), n_tasks=N_TASKS * len(SEEDS),
    )
    for seed in SEEDS:
        result = run_experiment(config, seed=seed)
        group.traces.extend(result.traces)
    return group


def test_trace_attribution_artifact():
    credits = attribution(collect("unifincr-credits"), tail=TAIL)
    c3 = attribution(collect("c3"), tail=TAIL)

    report = "\n\n".join([
        f"hot-shard p{TAIL:g} critical-path attribution "
        f"({N_TASKS} tasks x seeds {list(SEEDS)}, sample=1.0)",
        render_attribution(credits),
        render_attribution(c3),
        render_diff(credits, c3),
    ])
    print("\n" + report)
    save_report(
        "trace_attribution",
        report,
        data={
            "scenario": "hot-shard",
            "tail": TAIL,
            "n_tasks": N_TASKS,
            "seeds": list(SEEDS),
            "attributions": [credits.to_dict(), c3.to_dict()],
            "diff_credits_to_c3": diff_attributions(credits, c3),
        },
    )

    # Attribution accounts for 100% of tail latency in both groups.
    assert abs(sum(credits.shares.values()) - 1.0) < 1e-9
    assert abs(sum(c3.shares.values()) - 1.0) < 1e-9

    # The credits realization queues on the hot shard: queue_wait
    # dominates, and partition 0 owns (nearly) all of it.
    kind, share = credits.dominant()
    assert kind == "queue_wait"
    assert share > 0.5
    queue_total = sum(credits.queue_by_partition.values())
    assert credits.queue_by_partition.get(0, 0.0) > 0.8 * queue_total

    # C3 shifts the wait client-side: its pacing gate dominates and the
    # hot shard's server queue all but vanishes from the critical path.
    kind, share = c3.dominant()
    assert kind == "credit_wait"
    assert c3.shares["queue_wait"] < 0.2
