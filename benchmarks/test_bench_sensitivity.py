"""Ablations G & H: network latency and replication factor sensitivity.

* **G (network latency)**: the paper fixes 50 us one-way.  As the network
  delay grows it dominates end-to-end latency and scheduling gains shrink
  -- quantifies how datacenter-internal the technique is.
* **H (replication factor)**: R=1 removes replica choice entirely (pure
  scheduling gains); R=3 is the paper's setting; higher R adds placement
  freedom for both systems.
"""

from conftest import bench_scale, save_report

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.harness import ExperimentConfig, run_experiment

LATENCIES = (10e-6, 50e-6, 200e-6, 1e-3)
REPLICATION = (1, 2, 3, 5)


def run_latency_sweep(n_tasks, seed):
    rows = []
    for latency in LATENCIES:
        summaries = {}
        for strategy in ("c3", "equalmax-credits"):
            cfg = ExperimentConfig(
                strategy=strategy,
                n_tasks=n_tasks,
                cluster=ClusterSpec(one_way_latency=latency),
            )
            summaries[strategy] = run_experiment(cfg, seed=seed).summary(
                (50.0, 99.0)
            )
        rows.append(
            {
                "one-way latency (us)": latency * 1e6,
                "c3 p50 (ms)": summaries["c3"].median * 1e3,
                "brb p50 (ms)": summaries["equalmax-credits"].median * 1e3,
                "C3/BRB @p50": summaries["c3"].median
                / summaries["equalmax-credits"].median,
                "C3/BRB @p99": summaries["c3"].p99
                / summaries["equalmax-credits"].p99,
            }
        )
    return rows


def run_replication_sweep(n_tasks, seed):
    rows = []
    for rf in REPLICATION:
        summaries = {}
        for strategy in ("c3", "equalmax-credits"):
            cfg = ExperimentConfig(
                strategy=strategy,
                n_tasks=n_tasks,
                cluster=ClusterSpec(replication_factor=rf),
            )
            summaries[strategy] = run_experiment(cfg, seed=seed).summary(
                (50.0, 99.0)
            )
        rows.append(
            {
                "replication factor": rf,
                "c3 p99 (ms)": summaries["c3"].p99 * 1e3,
                "brb p99 (ms)": summaries["equalmax-credits"].p99 * 1e3,
                "C3/BRB @p50": summaries["c3"].median
                / summaries["equalmax-credits"].median,
            }
        )
    return rows


def test_latency_sensitivity(once):
    n_tasks, seeds = bench_scale()
    rows = once(run_latency_sweep, max(2000, n_tasks // 4), seeds[0])
    report = render_table(rows, title="Ablation G -- one-way network latency sweep")
    print("\n" + report)
    save_report("ablation_latency", report, data=rows)

    # Gains shrink as the (unschedulable) network share grows.
    first, last = rows[0], rows[-1]
    assert last["C3/BRB @p50"] <= first["C3/BRB @p50"] * 1.1
    # BRB keeps winning the median at the paper's 50us point.
    assert rows[1]["C3/BRB @p50"] > 1.0


def test_replication_sensitivity(once):
    n_tasks, seeds = bench_scale()
    rows = once(run_replication_sweep, max(2000, n_tasks // 4), seeds[0])
    report = render_table(rows, title="Ablation H -- replication factor sweep")
    print("\n" + report)
    save_report("ablation_replication", report, data=rows)

    # BRB wins the median at every R, including R=1 where there is no
    # replica choice and only task-aware scheduling differs.
    assert all(row["C3/BRB @p50"] > 1.0 for row in rows)
