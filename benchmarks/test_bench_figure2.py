"""Figure 2: task latency percentiles for C3 vs BRB variants.

Paper claims reproduced here:

1. Ordering at every reported percentile: model <= credits, and both BRB
   realizations beat C3 at the median.
2. "the credits strategy is at most 38% of an ideal model" -- we assert
   the EqualMax credits/model gap at p99 stays under 50% at bench scale
   (measured ~28% at 20k tasks) and report the exact number.
3. "improves the latencies by up to a factor of 3 at the median ... and up
   to 2 times at the 99th percentile" vs C3 -- factors are workload- and
   load-sensitive; we assert BRB wins and report measured factors
   (EXPERIMENTS.md discusses the magnitude gap and the load sweep that
   recovers paper-sized factors).
"""

import pytest
from conftest import bench_executor, bench_scale, save_report

from repro.analysis import grouped_bar_chart, percentile_matrix, ratio_table
from repro.harness import FIGURE2_STRATEGIES, figure2, figure2_series
from repro.metrics import PAPER_PERCENTILES


def test_figure2(once):
    n_tasks, seeds = bench_scale()
    comparison = once(
        figure2, n_tasks=n_tasks, seeds=seeds, executor=bench_executor()
    )

    summaries = {
        name: comparison.summary_of(name) for name in FIGURE2_STRATEGIES
    }

    # -- render the figure -----------------------------------------------
    matrix = percentile_matrix(
        {name: s.percentiles for name, s in summaries.items()},
        percentiles=PAPER_PERCENTILES,
    )
    series = figure2_series(comparison)
    chart = grouped_bar_chart(series, title="Figure 2 -- task read latency (ms)")
    c3_over_eq = comparison.speedup("c3", "equalmax-credits")
    c3_over_un = comparison.speedup("c3", "unifincr-credits")
    gap_eq = comparison.gap_to_ideal("equalmax-credits", "equalmax-model")
    gap_un = comparison.gap_to_ideal("unifincr-credits", "unifincr-model")

    report = "\n\n".join(
        [
            f"Figure 2 reproduction -- {n_tasks} tasks x {len(seeds)} seeds "
            f"(paper: 500k x 6)",
            matrix,
            chart,
            ratio_table(c3_over_eq, label="C3 / EqualMax-credits"),
            ratio_table(c3_over_un, label="C3 / UnifIncr-credits"),
            ratio_table(
                {p: 1.0 + g for p, g in gap_eq.items()},
                label="EqualMax credits/model (paper <= 1.38 @ p99)",
            ),
            ratio_table(
                {p: 1.0 + g for p, g in gap_un.items()},
                label="UnifIncr credits/model",
            ),
        ]
    )
    print("\n" + report)
    save_report("figure2", report, data=comparison.to_dict())

    # -- paper-shape assertions -------------------------------------------
    for algo in ("equalmax", "unifincr"):
        model = summaries[f"{algo}-model"]
        credits = summaries[f"{algo}-credits"]
        for p in PAPER_PERCENTILES:
            # The ideal model lower-bounds its realizable counterpart.
            assert model.percentile(p) <= credits.percentile(p) * 1.05, (algo, p)
        # BRB beats C3 at median and p95.
        assert credits.median < summaries["c3"].median
        assert credits.percentile(95.0) < summaries["c3"].percentile(95.0) * 1.05
    # Credits stays in the same ballpark as the ideal at the tail
    # (paper: within 38%; we allow 60% at reduced bench scale).
    assert gap_eq[99.0] < 0.60, f"EqualMax credits/model p99 gap {gap_eq[99.0]:.0%}"
    # BRB's p99 does not regress materially past C3's.
    assert summaries["equalmax-credits"].p99 < summaries["c3"].p99 * 1.15
