"""Micro-benchmarks: kernel event throughput and metrics ingest.

These are the only benches where wall-clock time is itself the result --
they bound the cost of scaling the Figure 2 runs to the paper's 500k
tasks, and catch kernel performance regressions.
"""

from conftest import pingpong_events, save_report

from repro.metrics import LogHistogram
from repro.sim import Environment, PriorityItem, PriorityStore, Stream


def store_churn(n_items=50_000):
    env = Environment()
    store = PriorityStore(env)
    stream = Stream(1, "keys")
    drained = []

    def producer(env):
        for i in range(n_items):
            store.put(PriorityItem(stream.random(), i))
            if i % 64 == 0:
                yield env.timeout(0.001)

    def consumer(env):
        for _ in range(n_items):
            item = yield store.get()
            drained.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert len(drained) == n_items
    return env.events_processed


def histogram_ingest(n=200_000):
    h = LogHistogram(min_value=1e-6, max_value=10.0, precision=0.01)
    stream = Stream(2, "lat")
    for _ in range(n):
        h.record(stream.expovariate(1000.0) + 1e-6)
    return h


def test_event_throughput(benchmark):
    events = benchmark(pingpong_events)
    assert events > 10_000
    stats = benchmark.stats.stats
    rate = events / stats.mean
    report = f"kernel event throughput: {rate:,.0f} events/s ({events} events)"
    print("\n" + report)
    # JSON artifact alongside the .txt so the bench-trajectory tooling can
    # read this series like every other benchmark's.
    save_report(
        "micro_event_throughput",
        report,
        data={
            "events": events,
            "events_per_sec": rate,
            "mean_s": stats.mean,
            "min_s": stats.min,
            "rounds": stats.rounds,
        },
    )


def test_priority_store_churn(benchmark):
    events = benchmark.pedantic(store_churn, rounds=1, iterations=1)
    assert events > 50_000


def test_histogram_ingest(benchmark):
    h = benchmark.pedantic(histogram_ingest, rounds=1, iterations=1)
    assert h.count == 200_000
    assert h.quantile(0.99) > h.quantile(0.5)
