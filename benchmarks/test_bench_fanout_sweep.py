"""Ablation B: task-awareness benefit vs fan-out.

Task-aware scheduling exists *because* of fan-out: with fan-out ~1 a task
is its own bottleneck and BRB degenerates to size-aware SJF; the benefit
should appear and persist as fan-out grows (the paper's motivation:
"tens to thousands of data accesses").
"""

from conftest import bench_run_grid, bench_scale, save_report

from repro.analysis import render_table
from repro.harness import ExperimentConfig
from repro.harness.results import compare_strategies

FANOUTS = (1.5, 4.0, 8.6, 16.0)
STRATEGIES = ("c3", "unifincr-credits")


def run_sweep(n_tasks, seeds):
    rows = []
    raw = {}
    for fanout in FANOUTS:
        cfg = ExperimentConfig(n_tasks=n_tasks, mean_fanout=fanout)
        comparison = compare_strategies(
            bench_run_grid(
                {name: cfg.with_strategy(name) for name in STRATEGIES}, seeds
            )
        )
        raw[str(fanout)] = comparison.to_dict()
        speedup = comparison.speedup("c3", "unifincr-credits")
        rows.append(
            {
                "mean fan-out": fanout,
                "c3 p50 (ms)": comparison.summary_of("c3").median * 1e3,
                "brb p50 (ms)": comparison.summary_of("unifincr-credits").median * 1e3,
                "C3/BRB @p50": speedup[50.0],
                "C3/BRB @p99": speedup[99.0],
            }
        )
    return rows, raw


def test_fanout_sweep(once):
    n_tasks, seeds = bench_scale()
    rows, raw = once(run_sweep, max(2000, n_tasks // 3), seeds[:1])

    report = render_table(rows, title="Ablation B -- fan-out sweep")
    print("\n" + report)
    save_report("ablation_fanout_sweep", report, data=raw)

    # BRB wins the median at the paper's fan-out and above.
    by_fanout = {row["mean fan-out"]: row for row in rows}
    assert by_fanout[8.6]["C3/BRB @p50"] > 1.0
    assert by_fanout[16.0]["C3/BRB @p50"] > 1.0
