"""Prose-3: "The standard deviation is not shown as it is largely
negligible."

The paper averages 6 seeds and waves the error bars away.  This bench
quantifies that: run the headline BRB configuration across a seed grid and
report the coefficient of variation (stdev/mean) of each percentile across
seeds.  "Largely negligible" is operationalized as CV < 10% at the median
and < 20% at p99 (tails are intrinsically noisier at reduced scale).
"""

from conftest import bench_scale, save_report

from repro.analysis import coefficient_of_variation, render_table
from repro.harness import ExperimentConfig, run_seeds

SEEDS = (1, 2, 3, 4, 5)


def run_grid(n_tasks):
    cfg = ExperimentConfig(strategy="equalmax-credits", n_tasks=n_tasks)
    runs = run_seeds(cfg, SEEDS)
    summaries = [r.summary((50.0, 95.0, 99.0)) for r in runs]
    rows = []
    for p in (50.0, 95.0, 99.0):
        values = [s.percentile(p) * 1e3 for s in summaries]
        rows.append(
            {
                "percentile": f"p{p:g}",
                "mean (ms)": sum(values) / len(values),
                "min (ms)": min(values),
                "max (ms)": max(values),
                "CV": coefficient_of_variation(values),
            }
        )
    return rows


def test_seed_stability(once):
    n_tasks, _ = bench_scale()
    rows = once(run_grid, max(4000, n_tasks // 2))

    report = render_table(
        rows,
        title=(
            "Prose-3 -- seed stability of EqualMax-credits "
            f"({len(SEEDS)} seeds; paper: 'std dev largely negligible')"
        ),
    )
    print("\n" + report)
    save_report("seed_stability", report, data=rows)

    by_p = {row["percentile"]: row for row in rows}
    assert by_p["p50"]["CV"] < 0.10
    assert by_p["p95"]["CV"] < 0.15
    assert by_p["p99"]["CV"] < 0.25
