"""CI perf-smoke gate: fail on a >20% kernel-throughput regression.

Usage::

    python benchmarks/check_event_throughput.py \
        [results/event_throughput.json] [results/event_throughput_baseline.json]

Compares the *normalized* events/sec (events per calibration spin -- see
``benchmarks/test_bench_event_throughput.py``) of the fresh measurement
against the committed baseline's ``current`` block, section by section.
Normalization cancels machine speed, so the gate is meaningful on CI
runners that are slower or faster than the machine that recorded the
baseline.  Exit code 1 when any section drops below 80% of the baseline.

To re-record the baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_event_throughput.py -q
    python benchmarks/check_event_throughput.py --update-baseline
"""

import json
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "results"
TOLERANCE = 0.8  # fail below 80% of baseline (a >20% regression)


def _normalized(data, section):
    if section in ("micro", "micro_callback"):
        entry = data.get(section)
    else:
        entry = data.get("strategies", {}).get(section)
    return None if entry is None else entry.get("normalized")


def _sections(data):
    sections = [s for s in ("micro", "micro_callback") if s in data]
    return sections + sorted(data.get("strategies", {}))


def update_baseline(measured_path, baseline_path):
    measured = json.loads(Path(measured_path).read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    current = {
        "calibration_spins_per_sec": measured["calibration_spins_per_sec"],
        "micro": measured["micro"],
        "micro_callback": measured["micro_callback"],
        "strategies": measured["strategies"],
    }
    baseline["current"] = current
    Path(baseline_path).write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline 'current' block updated from {measured_path}")
    return 0


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    measured_path = args[0] if args else RESULTS / "event_throughput.json"
    baseline_path = (
        args[1] if len(args) > 1 else RESULTS / "event_throughput_baseline.json"
    )
    if "--update-baseline" in argv:
        return update_baseline(measured_path, baseline_path)

    measured = json.loads(Path(measured_path).read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    current = baseline.get("current")
    if current is None:
        print("baseline has no 'current' block; run with --update-baseline first")
        return 1

    failed = False
    for section in _sections(current):
        want = _normalized(current, section)
        got = _normalized(measured, section)
        if got is None:
            # A section the baseline gates vanished from the bench: that
            # is a config drift, not a perf result -- fail loudly with a
            # pointer instead of a KeyError stack trace.
            print(
                f"{section:20s} missing from the fresh measurement; "
                "re-record with --update-baseline if the bench's section "
                "list changed intentionally"
            )
            failed = True
            continue
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= TOLERANCE else "REGRESSED"
        print(
            f"{section:20s} normalized {got:.4f} vs baseline {want:.4f} "
            f"({ratio:.2f}x)  {status}"
        )
        if ratio < TOLERANCE:
            failed = True
    ungated = [s for s in _sections(measured) if _normalized(current, s) is None]
    if ungated:
        print(
            f"note: sections {ungated} are measured but not in the "
            "baseline; run --update-baseline to start gating them"
        )
    if failed:
        print(f"FAIL: kernel throughput regressed more than "
              f"{(1 - TOLERANCE) * 100:.0f}% against the committed baseline")
        return 1
    print("perf-smoke: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
