#!/usr/bin/env python3
"""Where does the latency go?  Decompose request time for C3 vs BRB.

Every request's life splits into client wait (gating/pacing), network
(fixed), server queue wait (schedulable) and service time
(workload-determined).  BRB cannot make values smaller or the network
faster -- its entire win must come from *rearranging* waits.  The
decomposition shows how: the median queue wait collapses (short requests
stop waiting behind convoys) while the p99 *request* queue wait may even
grow -- BRB deliberately parks slack-rich requests -- yet the p99 *task*
latency plummets.  Scheduling moves waiting to where it is free.

Usage::

    python examples/latency_anatomy.py [n_tasks]
"""

import sys

from repro.analysis import render_table
from repro.harness import ExperimentConfig, run_experiment


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    rows = []
    for strategy in ("c3", "unifincr-credits", "unifincr-model"):
        cfg = ExperimentConfig(
            strategy=strategy, n_tasks=n_tasks, record_requests=True
        )
        result = run_experiment(cfg, seed=1)
        assert result.queue_waits is not None and result.service_times is not None
        rows.append(
            {
                "strategy": strategy,
                "client wait p99 (ms)": result.client_waits.quantile(0.99) * 1e3,
                "queue wait p50 (ms)": result.queue_waits.quantile(0.5) * 1e3,
                "queue wait p99 (ms)": result.queue_waits.quantile(0.99) * 1e3,
                "service p50 (ms)": result.service_times.quantile(0.5) * 1e3,
                "service p99 (ms)": result.service_times.quantile(0.99) * 1e3,
                "task p99 (ms)": result.summary((99.0,)).p99 * 1e3,
            }
        )
        print(f"{strategy} done")

    print()
    print(render_table(rows, title="Per-request latency anatomy"))
    print(
        "\nService times are identical across strategies (same workload, same\n"
        "servers). BRB cuts the median queue wait while *raising* the p99\n"
        "request queue wait -- slack-rich requests wait so critical ones\n"
        "don't -- and the task-level p99 improves by multiples."
    )


if __name__ == "__main__":
    main()
