#!/usr/bin/env python3
"""Tour the scenario registry: one strategy across every named scenario.

Every registered scenario -- the baseline and fault scenarios
(steady-state, straggler, recurring-gc, flash-crowd, hotspot-skew,
heterogeneous-cluster, network-jitter, crash-restart), the placement
pathologies (hot-shard, replica-lag, ring-rebalance, shard-skew; see
docs/scenarios.md), plus anything third-party code registered -- is run
with the same strategy and seed, and the percentile shifts are
tabulated.  This is the "as many scenarios as you can imagine" loop:
adding a scenario to the registry adds a row here with no other changes.

Usage::

    python examples/scenario_tour.py [strategy] [n_tasks]
"""

import sys

from repro.analysis import render_table
from repro.harness import run_experiment
from repro.scenarios import SCENARIOS

def main() -> None:
    strategy = sys.argv[1] if len(sys.argv) > 1 else "unifincr-credits"
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 5000

    rows = []
    for name in SCENARIOS:
        config = SCENARIOS[name].build_config(strategy=strategy, n_tasks=n_tasks)
        result = run_experiment(config, seed=1)
        summary = result.summary((50.0, 95.0, 99.0))
        fault_windows = sum(
            v for k, v in result.extras.items() if k.endswith("_windows")
        )
        rows.append(
            {
                "scenario": name,
                "p50 (ms)": summary.percentile(50.0) * 1e3,
                "p95 (ms)": summary.percentile(95.0) * 1e3,
                "p99 (ms)": summary.percentile(99.0) * 1e3,
                "fault windows": fault_windows,
            }
        )

    print(render_table(rows, title=f"{strategy} across the scenario registry"))


if __name__ == "__main__":
    main()
