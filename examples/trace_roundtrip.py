#!/usr/bin/env python3
"""Generate, persist, inspect and replay a workload trace.

Traces are the unit of reproducibility: generate once, save as JSON-lines,
re-load anywhere, and replay through any strategy.  This example shows the
whole loop and prints distribution statistics that should match the
paper's disclosed workload properties (mean fan-out 8.6, Pareto sizes).

Usage::

    python examples/trace_roundtrip.py [path]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import cdf_sketch, render_table
from repro.metrics import ExactSample
from repro.workload import load_trace, make_soundcloud_workload, save_trace, trace_stats


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.gettempdir()) / "soundcloud_like.jsonl"

    workload = make_soundcloud_workload(n_tasks=10_000)
    trace = workload.generate(seed=42)
    save_trace(path, trace, metadata={"seed": 42, "generator": "soundcloud-like"})
    print(f"saved {len(trace)} tasks to {path}")

    loaded, metadata = load_trace(path)
    assert len(loaded) == len(trace)
    print(f"reloaded with metadata {metadata}\n")

    stats = trace_stats(loaded)
    print(render_table(
        [{"metric": k, "value": v} for k, v in stats.items()],
        title="trace statistics (paper: mean fan-out 8.6)",
    ))
    print()

    fanouts = ExactSample()
    fanouts.record_many(float(t.fanout) for t in loaded)
    points = [
        (fanouts.quantile(q), q)
        for q in (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999)
    ]
    print(cdf_sketch(points, title="fan-out CDF (log x)"))
    print()

    sizes = ExactSample()
    sizes.record_many(
        float(op.value_size) for t in loaded for op in t.operations
    )
    print(
        f"value sizes: p50={sizes.quantile(0.5):.0f}B "
        f"p99={sizes.quantile(0.99):.0f}B max={sizes.max:.0f}B "
        f"(generalized-Pareto, Atikoglu et al.)"
    )


if __name__ == "__main__":
    main()
