#!/usr/bin/env python3
"""Figure 1 of the paper, re-enacted on the full simulation stack.

Two clients submit tasks T1=[A,B,C] and T2=[D,E] at the same instant to a
3-server store with placement S1=[A,E], S2=[B,C], S3=[D] and unit service
times.  A task-oblivious schedule serves A before E on S1, so T2 needs 2
time units; the task-aware schedule flips them and T2 finishes in 1.

Usage::

    python examples/figure1_toy.py
"""

from repro.harness import figure1_toy


def timeline(label: str, t1: float, t2: float) -> str:
    """Render a tiny two-row completion timeline."""
    width = 24
    unit = width // 2

    def bar(t: float) -> str:
        filled = int(unit * t)
        return "[" + "#" * filled + " " * (width - filled) + "]"

    return (
        f"{label}\n"
        f"  T1 {bar(t1)} completes at t={t1:g}\n"
        f"  T2 {bar(t2)} completes at t={t2:g}"
    )


def main() -> None:
    print(__doc__)
    oblivious = figure1_toy(task_aware=False)
    print(timeline("Task-oblivious schedule (FIFO servers):",
                   oblivious.t1_completion, oblivious.t2_completion))
    print()
    for assigner in ("equalmax", "unifincr"):
        aware = figure1_toy(task_aware=True, assigner_name=assigner)
        print(timeline(f"Task-aware schedule ({assigner}):",
                       aware.t1_completion, aware.t2_completion))
        print()
    print(
        "T2's completion time drops from 2 to 1 service unit under the\n"
        "task-aware schedule, exactly the paper's Figure 1 example: the\n"
        "access to A has slack (T1 is bottlenecked by S2 serving B then C),\n"
        "so S1 can serve E first at no cost to T1."
    )


if __name__ == "__main__":
    main()
