#!/usr/bin/env python3
"""A playlist-service scenario built directly on the library's public API.

The paper's motivating workload: "requesting all tracks in a playlist".
This example skips the pre-canned harness and assembles a custom cluster
by hand -- custom placement, a playlist-heavy fan-out mixture, hot-key
skew -- then pits C3 against BRB/UnifIncr-credits on the *same* trace.

It demonstrates the extension points a downstream user would touch:

* building a workload from distribution objects,
* constructing servers/clients/controller explicitly,
* feeding an identical pre-generated trace to two systems.

Usage::

    python examples/playlist_service.py [n_tasks]
"""

import sys

from repro.baselines import C3Selector, ObliviousStrategy
from repro.cluster import BackendServer, Client, ClusterSpec, Network
from repro.core import (
    BRBCreditsStrategy,
    CreditGate,
    CreditsController,
    UnifIncrAssigner,
    equal_initial_shares,
)
from repro.metrics import ExactSample, LatencySummary
from repro.scheduling import FifoDiscipline, PriorityDiscipline
from repro.sim import Environment, StreamFactory
from repro.workload import (
    HotColdPopularity,
    LogNormalFanout,
    PoissonArrivals,
    TaskGenerator,
    ValueSizeRegistry,
    atikoglu_etc,
    calibrate_service_model,
    task_arrival_rate_for_load,
)

SPEC = ClusterSpec(n_servers=6, cores_per_server=4, replication_factor=3)
N_CLIENTS = 8
LOAD = 0.72


def build_trace(n_tasks: int, seed: int):
    """Playlist-heavy workload: log-normal fan-out, hot 5% of tracks."""
    sizes = atikoglu_etc()
    service_model = calibrate_service_model(sizes, target_rate=SPEC.per_core_rate)
    fanout = LogNormalFanout(target_mean=12.0, sigma=1.1, cap=256)
    rate = task_arrival_rate_for_load(
        LOAD, SPEC.n_servers, SPEC.cores_per_server, SPEC.per_core_rate, fanout.mean()
    )
    generator = TaskGenerator(
        fanout=fanout,
        popularity=HotColdPopularity(50_000, hot_fraction=0.05, hot_weight=0.6),
        value_sizes=ValueSizeRegistry(sizes, seed=seed),
        arrivals=PoissonArrivals(rate),
        n_clients=N_CLIENTS,
        streams=StreamFactory(seed),
    )
    return generator.generate(n_tasks), service_model


def run_system(trace, service_model, system: str, seed: int) -> LatencySummary:
    """Replay one trace through either 'c3' or 'brb'."""
    env = Environment()
    streams = StreamFactory(seed * 7919 + 13)
    network = Network(env, latency=SPEC.make_latency_model(),
                      stream=streams.stream("net"))
    placement = SPEC.make_placement()
    latencies = ExactSample()

    controller = None
    if system == "brb":
        controller = CreditsController(
            env, network, n_clients=N_CLIENTS,
            server_capacities=SPEC.server_capacities(),
        )

    for server_id in range(SPEC.n_servers):
        BackendServer(
            env,
            server_id=server_id,
            cores=SPEC.cores_per_server,
            service_model=service_model,
            network=network,
            service_stream=streams.stream(f"svc.{server_id}"),
            discipline=(PriorityDiscipline() if system == "brb" else FifoDiscipline()),
            congestion_interval=0.1 if system == "brb" else None,
        )

    clients = []
    for client_id in range(N_CLIENTS):
        if system == "brb":
            gate = CreditGate(
                env, network, client_id=client_id,
                server_ids=list(range(SPEC.n_servers)),
                initial_share=equal_initial_shares(
                    SPEC.server_capacities(), N_CLIENTS, 0.1
                ),
            )
            strategy = BRBCreditsStrategy(
                placement, UnifIncrAssigner(), service_model, gate=gate
            )
        else:
            strategy = ObliviousStrategy(
                placement,
                C3Selector(
                    env,
                    concurrency_weight=N_CLIENTS,
                    stream=streams.stream(f"c3.{client_id}"),
                    initial_rate=SPEC.server_capacity() / N_CLIENTS,
                ),
                service_model,
            )
        clients.append(
            Client(env, client_id=client_id, network=network,
                   strategy=strategy, task_recorder=latencies)
        )

    def feeder():
        for task in trace:
            delay = task.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            clients[task.client_id].submit(task)

    env.process(feeder(), name="feeder")
    # Run until every client drained its pending tasks.
    while True:
        env.run(until=env.now + 1.0)
        if all(c.pending_tasks == 0 for c in clients) and sum(
            c.tasks_completed for c in clients
        ) == len(trace):
            break
    return LatencySummary.from_recorder(system, latencies, (50.0, 95.0, 99.0))


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    print(f"playlist service: {n_tasks} tasks, {N_CLIENTS} app servers, "
          f"{SPEC.n_servers}x{SPEC.cores_per_server} cores, load {LOAD:.0%}")
    trace, service_model = build_trace(n_tasks, seed=11)
    ops = sum(t.fanout for t in trace)
    print(f"trace: {ops:,} reads, mean fan-out {ops / len(trace):.1f}\n")

    for system in ("c3", "brb"):
        summary = run_system(trace, service_model, system, seed=11)
        print(summary)

    print("\nBRB's task-aware priorities pay off most for multi-track "
          "playlist fetches:\nthe long track list defines the bottleneck and "
          "short profile reads slip ahead.")


if __name__ == "__main__":
    main()
