#!/usr/bin/env python3
"""Quickstart: run one small BRB experiment and print the percentiles.

Usage::

    python examples/quickstart.py [strategy] [n_tasks]

Strategies: c3, equalmax-credits, unifincr-credits, equalmax-model,
unifincr-model, oblivious-lor, ... -- ``repro.harness.KNOWN_STRATEGIES``
is a live view of the builder registry; ``python -m repro strategies``
lists them with descriptions.  For named workloads with fault scripts see
``python -m repro scenarios`` and ``examples/scenario_tour.py``.
"""

import sys

from repro.harness import ExperimentConfig, KNOWN_STRATEGIES, run_experiment


def main() -> None:
    strategy = sys.argv[1] if len(sys.argv) > 1 else "unifincr-credits"
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    if strategy not in KNOWN_STRATEGIES:
        raise SystemExit(
            f"unknown strategy {strategy!r}; pick one of {', '.join(KNOWN_STRATEGIES)}"
        )

    config = ExperimentConfig(strategy=strategy, n_tasks=n_tasks)
    print(f"running: {config.describe()}")
    result = run_experiment(config, seed=1)

    summary = result.summary((50.0, 90.0, 95.0, 99.0, 99.9))
    print()
    print(summary)
    print()
    print(f"simulated {result.sim_duration:.2f}s of virtual time")
    print(f"kernel processed {result.events_processed:,} events")
    print(f"backend served {result.requests_served:,} requests")
    print(f"mean server utilization {result.extras['mean_server_utilization']:.1%}")
    for key in ("congestion_signals", "gated_requests", "credit_grants"):
        if key in result.extras:
            print(f"{key.replace('_', ' ')}: {result.extras[key]:.0f}")


if __name__ == "__main__":
    main()
