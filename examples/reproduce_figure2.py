#!/usr/bin/env python3
"""Reproduce Figure 2: C3 vs BRB (EqualMax/UnifIncr x credits/model).

Runs all five strategies over a common seed grid on the SoundCloud-like
workload (18 clients, 9x4-core servers at 3500 req/s, 70% load, mean
fan-out 8.6, Pareto value sizes) and prints the percentile matrix, an
ASCII rendition of the figure, and the paper's two headline ratios.

Usage::

    python examples/reproduce_figure2.py [--tasks N] [--seeds K] [--out FILE]
    python examples/reproduce_figure2.py --jobs 4      # fan runs over 4 cores
    python examples/reproduce_figure2.py --full        # paper scale (slow!)
"""

import argparse

from repro.analysis import grouped_bar_chart, percentile_matrix, ratio_table
from repro.harness import FIGURE2_STRATEGIES, figure2, figure2_series, make_executor
from repro.metrics import PAPER_PERCENTILES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=12_000,
                        help="tasks per run (paper: 500000)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of random seeds (paper: 6)")
    parser.add_argument("--full", action="store_true",
                        help="paper scale: 500k tasks x 6 seeds")
    parser.add_argument("--out", type=str, default=None,
                        help="write raw results as JSON to this path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="fan the strategy x seed grid over N worker "
                             "processes (0 = all cores); output is identical")
    args = parser.parse_args()

    n_tasks = 500_000 if args.full else args.tasks
    seeds = tuple(range(1, (6 if args.full else args.seeds) + 1))

    print(f"Figure 2 reproduction: {n_tasks} tasks x {len(seeds)} seeds")
    print(f"strategies: {', '.join(FIGURE2_STRATEGIES)}")
    print()

    comparison = figure2(
        n_tasks=n_tasks, seeds=seeds, executor=make_executor(jobs=args.jobs)
    )

    summaries = {n: comparison.summary_of(n) for n in FIGURE2_STRATEGIES}
    print(percentile_matrix(
        {n: s.percentiles for n, s in summaries.items()},
        percentiles=PAPER_PERCENTILES,
    ))
    print()
    print(grouped_bar_chart(figure2_series(comparison),
                            title="Figure 2 -- task read latency (ms)"))
    print()
    print(ratio_table(comparison.speedup("c3", "equalmax-credits"),
                      label="C3 / EqualMax-credits (paper: up to 3x/3x/2x)"))
    print()
    gap = comparison.gap_to_ideal("equalmax-credits", "equalmax-model")
    print(ratio_table({p: 1.0 + g for p, g in gap.items()},
                      label="EqualMax credits vs ideal (paper: <=1.38 @ p99)"))

    if args.out:
        comparison.save_json(args.out)
        print(f"\nraw results written to {args.out}")


if __name__ == "__main__":
    main()
