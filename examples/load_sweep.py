#!/usr/bin/env python3
"""Sweep system load and watch BRB's advantage over C3 grow.

Scheduling only matters when queues form: at 40% load every policy is
within a hair of the network+service floor; by 85% the task-aware
scheduler is multiples faster at the median.

Usage::

    python examples/load_sweep.py [--tasks N] [--loads 0.4,0.55,0.7,0.85]
"""

import argparse

from repro.analysis import render_table
from repro.harness import ExperimentConfig, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=6000)
    parser.add_argument("--loads", type=str, default="0.4,0.55,0.7,0.85")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    loads = [float(x) for x in args.loads.split(",")]
    rows = []
    for load in loads:
        summaries = {}
        for strategy in ("c3", "unifincr-credits"):
            cfg = ExperimentConfig(strategy=strategy, n_tasks=args.tasks, load=load)
            summaries[strategy] = run_experiment(cfg, seed=args.seed).summary(
                (50.0, 99.0)
            )
        c3, brb = summaries["c3"], summaries["unifincr-credits"]
        rows.append(
            {
                "load": load,
                "C3 p50 (ms)": c3.median * 1e3,
                "BRB p50 (ms)": brb.median * 1e3,
                "C3 p99 (ms)": c3.p99 * 1e3,
                "BRB p99 (ms)": brb.p99 * 1e3,
                "win @p50": c3.median / brb.median,
                "win @p99": c3.p99 / brb.p99,
            }
        )
        print(f"load {load:.0%} done")

    print()
    print(render_table(rows, title="C3 vs BRB (UnifIncr-credits) across load"))


if __name__ == "__main__":
    main()
