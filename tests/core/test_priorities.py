"""Unit + property tests for EqualMax / UnifIncr priority assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import RingPlacement
from repro.core import (
    CostModel,
    EqualMaxAssigner,
    FifoAssigner,
    SjfAssigner,
    UnifIncrAssigner,
    bottleneck,
    make_assigner,
    split_task,
)
from repro.core.priorities import EdfAssigner
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def cost_model():
    return CostModel(ServiceTimeModel(overhead=0.0, bandwidth=1000.0, noise="none"))


def make_task(sizes, task_id=0, arrival=0.0):
    ops = tuple(
        Operation(op_id=task_id * 1000 + i, task_id=task_id, key=i * 7, value_size=s)
        for i, s in enumerate(sizes)
    )
    return Task(task_id=task_id, arrival_time=arrival, client_id=0, operations=ops)


def split(task, n_servers=5, rf=2):
    placement = RingPlacement(n_servers=n_servers, replication_factor=rf)
    return split_task(task, placement.partition_of, cost_model())


class TestEqualMax:
    def test_all_ops_share_bottleneck_value(self):
        task = make_task([100, 200, 5000, 50, 75])
        subtasks = split(task)
        priorities = EqualMaxAssigner().assign(task, subtasks)
        bott = bottleneck(subtasks)
        values = {p[0] for p in priorities.values()}
        assert len(values) == 1
        assert values.pop() == pytest.approx(bott.cost)

    def test_short_bottleneck_task_wins(self):
        quick = make_task([10, 10], task_id=0)
        slow = make_task([5000, 5000], task_id=1)
        pq = EqualMaxAssigner().assign(quick, split(quick))
        ps = EqualMaxAssigner().assign(slow, split(slow))
        assert max(pq.values()) < min(ps.values())

    def test_covers_every_op(self):
        task = make_task([100] * 12)
        priorities = EqualMaxAssigner().assign(task, split(task))
        assert set(priorities) == {op.op_id for op in task.operations}

    def test_fifo_tie_break_by_arrival(self):
        early = make_task([100, 100], task_id=0, arrival=0.0)
        late = make_task([100, 100], task_id=1, arrival=5.0)
        pe = EqualMaxAssigner().assign(early, split(early))
        pl = EqualMaxAssigner().assign(late, split(late))
        assert max(pe.values()) < min(pl.values())


class TestUnifIncr:
    def test_bottleneck_ops_have_least_slack(self):
        task = make_task([10, 10, 9000])
        subtasks = split(task)
        priorities = UnifIncrAssigner().assign(task, subtasks)
        bott = bottleneck(subtasks)
        big_op = max(task.operations, key=lambda op: op.value_size)
        if len(bott.operations) == 1 and bott.operations[0] is big_op:
            assert priorities[big_op.op_id][0] == pytest.approx(0.0)
            others = [p for oid, p in priorities.items() if oid != big_op.op_id]
            assert all(p[0] > 0 for p in others)

    def test_slack_nonnegative(self):
        task = make_task([100, 250, 3000, 40, 4096, 7])
        subtasks = split(task)
        priorities = UnifIncrAssigner().assign(task, subtasks)
        assert all(p[0] >= -1e-12 for p in priorities.values())

    def test_larger_ops_more_urgent_within_task(self):
        task = make_task([100, 5000])
        subtasks = split(task)
        priorities = UnifIncrAssigner().assign(task, subtasks)
        small, big = sorted(task.operations, key=lambda op: op.value_size)
        assert priorities[big.op_id][0] <= priorities[small.op_id][0]


class TestOtherAssigners:
    def test_fifo_orders_by_arrival(self):
        t0 = make_task([100], task_id=0, arrival=0.0)
        t1 = make_task([100], task_id=1, arrival=1.0)
        p0 = FifoAssigner().assign(t0, split(t0))
        p1 = FifoAssigner().assign(t1, split(t1))
        assert max(p0.values()) < min(p1.values())

    def test_sjf_orders_by_own_cost(self):
        task = make_task([100, 900])
        priorities = SjfAssigner().assign(task, split(task))
        small, big = sorted(task.operations, key=lambda op: op.value_size)
        assert priorities[small.op_id][0] < priorities[big.op_id][0]

    def test_edf_deadline_is_arrival_plus_bottleneck(self):
        task = make_task([100, 200], arrival=2.0)
        subtasks = split(task)
        priorities = EdfAssigner().assign(task, subtasks)
        deadline = 2.0 + bottleneck(subtasks).cost
        assert all(p[0] == pytest.approx(deadline) for p in priorities.values())


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("equalmax", EqualMaxAssigner),
            ("unifincr", UnifIncrAssigner),
            ("fifo", FifoAssigner),
            ("sjf", SjfAssigner),
            ("edf", EdfAssigner),
            ("EqualMax", EqualMaxAssigner),  # case-insensitive
        ],
    )
    def test_known(self, name, cls):
        assert isinstance(make_assigner(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_assigner("lifo")


sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=100_000), min_size=1, max_size=40
)


@given(sizes_strategy, st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=150, deadline=None)
def test_equalmax_invariant_constant_within_task(sizes, arrival):
    task = make_task(sizes, arrival=arrival)
    subtasks = split(task)
    priorities = EqualMaxAssigner().assign(task, subtasks)
    bott = bottleneck(subtasks)
    assert set(priorities) == {op.op_id for op in task.operations}
    for p in priorities.values():
        assert p[0] == pytest.approx(bott.cost)
        assert p[1] == arrival


@given(sizes_strategy)
@settings(max_examples=150, deadline=None)
def test_unifincr_invariant_slack_bounded(sizes):
    """slack in [0, bottleneck]; ops on the bottleneck sub-task are never
    less urgent than an equal-cost op elsewhere."""
    task = make_task(sizes)
    subtasks = split(task)
    priorities = UnifIncrAssigner().assign(task, subtasks)
    bott = bottleneck(subtasks)
    cm = cost_model()
    for st_ in subtasks:
        for op, op_cost in zip(st_.operations, st_.op_costs):
            slack = priorities[op.op_id][0]
            assert -1e-9 <= slack <= bott.cost + 1e-9
            assert slack == pytest.approx(bott.cost - op_cost)


@given(sizes_strategy, sizes_strategy)
@settings(max_examples=100, deadline=None)
def test_equalmax_is_sjf_on_bottlenecks(sizes_a, sizes_b):
    """Between two tasks, all ops of the shorter-bottleneck task sort
    strictly first (the SJF-on-makespan property)."""
    ta = make_task(sizes_a, task_id=0, arrival=0.0)
    tb = make_task(sizes_b, task_id=1, arrival=0.0)
    sa, sb = split(ta), split(tb)
    ba, bb = bottleneck(sa).cost, bottleneck(sb).cost
    pa = EqualMaxAssigner().assign(ta, sa)
    pb = EqualMaxAssigner().assign(tb, sb)
    if ba < bb:
        assert max(pa.values()) < min(pb.values())
    elif bb < ba:
        assert max(pb.values()) < min(pa.values())
