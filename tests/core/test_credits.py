"""Unit tests for the credits controller and the client-side gate."""

import pytest

from repro.cluster import (
    CONTROLLER_ADDRESS,
    CreditGrant,
    DemandReport,
    Network,
    RequestMessage,
    client_address,
    server_address,
)
from repro.cluster.messages import CongestionSignal
from repro.cluster.network import ConstantLatency
from repro.core import CreditGate, CreditsController, equal_initial_shares
from repro.sim import Environment, Stream
from repro.workload.tasks import Operation


def req(server=0, op_id=0, priority=(0.0, 0.0, 0.0)):
    r = RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=10),
        task_id=0,
        client_id=0,
        partition=0,
        priority=priority,
    )
    r.server_id = server
    return r


class ControllerRig:
    def __init__(self, n_clients=2, capacity=100.0, epoch=1.0, interval=0.1):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(0.0), stream=Stream(0, "n")
        )
        self.inboxes = {c: [] for c in range(n_clients)}
        for c in range(n_clients):
            self.network.register(client_address(c), self.inboxes[c].append)
        # A sink for server addresses so gates can send requests.
        self.server_inbox = []
        self.network.register(server_address(0), self.server_inbox.append)
        self.controller = CreditsController(
            self.env,
            self.network,
            n_clients=n_clients,
            server_capacities={0: capacity},
            epoch=epoch,
            allocation_interval=interval,
        )

    def report(self, client, demand, at=None):
        self.network.send(
            client_address(client),
            CONTROLLER_ADDRESS,
            DemandReport(client_id=client, time=self.env.now, demand=demand),
        )


class TestController:
    def test_equal_split_without_demand(self):
        rig = ControllerRig(n_clients=2, capacity=100.0, interval=0.1)
        rig.env.run(until=0.15)
        grants = [m for m in rig.inboxes[0] if isinstance(m, CreditGrant)]
        assert grants
        # 100 req/s * 0.1s = 10 credits split over 2 clients.
        assert grants[0].credits[0] == pytest.approx(5.0)

    def test_demand_topped_up_immediately(self):
        rig = ControllerRig(n_clients=2, capacity=100.0, interval=0.1)

        def driver(env):
            yield env.timeout(0.01)
            rig.report(0, {0: 4.0})

        rig.env.process(driver(rig.env))
        rig.env.run(until=0.05)  # before the first periodic allocation
        grants = [m for m in rig.inboxes[0] if isinstance(m, CreditGrant)]
        assert grants and grants[0].credits[0] == pytest.approx(4.0)

    def test_topups_bounded_by_interval_budget(self):
        rig = ControllerRig(n_clients=1, capacity=100.0, interval=0.1)

        def driver(env):
            yield env.timeout(0.01)
            rig.report(0, {0: 25.0})  # far above the 10-credit budget

        rig.env.process(driver(rig.env))
        rig.env.run(until=0.05)
        grants = [m for m in rig.inboxes[0] if isinstance(m, CreditGrant)]
        total = sum(g.credits.get(0, 0.0) for g in grants)
        assert total <= 10.0 + 1e-9

    def test_oversubscription_proportional(self):
        rig = ControllerRig(n_clients=2, capacity=100.0, interval=0.1)

        def driver(env):
            yield env.timeout(0.01)
            # Demand 3x the budget in ratio 2:1; exhaust top-ups first.
            rig.report(0, {0: 20.0})
            rig.report(1, {0: 10.0})

        rig.env.process(driver(rig.env))
        rig.env.run(until=0.25)
        # After top-ups consumed the 10-credit interval budget, periodic
        # allocation shares the next interval's budget 2:1 on unmet demand.
        def granted(client):
            return sum(
                g.credits.get(0, 0.0)
                for g in rig.inboxes[client]
                if isinstance(g, CreditGrant)
            )

        g0, g1 = granted(0), granted(1)
        assert g0 > g1
        assert g0 + g1 <= 2 * 10.0 + 1e-9  # two intervals of budget at most

    def test_congestion_scales_down_budget(self):
        rig = ControllerRig(n_clients=1, capacity=100.0, epoch=0.2, interval=0.1)

        def driver(env):
            yield env.timeout(0.01)
            rig.network.send(
                server_address(0),
                CONTROLLER_ADDRESS,
                CongestionSignal(server_id=0, time=env.now, overload_ratio=2.0),
            )

        rig.env.process(driver(rig.env))
        rig.env.run(until=0.35)
        assert rig.controller.scales[0] < 1.0
        assert rig.controller.congestion_signals == 1

    def test_scale_recovers_without_congestion(self):
        rig = ControllerRig(n_clients=1, capacity=100.0, epoch=0.1, interval=0.1)
        rig.controller.scales[0] = 0.5
        rig.env.run(until=2.0)
        assert rig.controller.scales[0] == pytest.approx(1.0)

    def test_unknown_message_rejected(self):
        rig = ControllerRig()
        rig.network.send("x", CONTROLLER_ADDRESS, "junk")
        with pytest.raises(TypeError):
            rig.env.run(until=0.05)

    def test_validates(self):
        env = Environment()
        network = Network(env, stream=Stream(0))
        with pytest.raises(ValueError):
            CreditsController(env, network, n_clients=0, server_capacities={0: 1.0})
        with pytest.raises(ValueError):
            CreditsController(env, network, n_clients=1, server_capacities={})
        with pytest.raises(ValueError):
            CreditsController(
                env, network, n_clients=1, server_capacities={0: 1.0},
                epoch=0.1, allocation_interval=0.5,
            )


class GateRig:
    def __init__(self, initial=5.0):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(0.0), stream=Stream(0, "n")
        )
        self.server_inbox = []
        self.network.register(server_address(0), self.server_inbox.append)
        self.controller_inbox = []
        self.network.register(CONTROLLER_ADDRESS, self.controller_inbox.append)
        self.gate = CreditGate(
            self.env,
            self.network,
            client_id=0,
            server_ids=[0],
            measurement_interval=0.1,
            initial_share={0: initial},
        )


class TestGate:
    def test_sends_while_credits_last(self):
        rig = GateRig(initial=2.0)
        rig.gate.submit(req(op_id=0))
        rig.gate.submit(req(op_id=1))
        rig.gate.submit(req(op_id=2))  # out of credits: gated
        rig.env.run(until=0.01)
        assert len(rig.server_inbox) == 2
        assert rig.gate.gated == 1
        assert rig.gate.backlog_size == 1

    def test_backlog_drains_by_priority_on_grant(self):
        rig = GateRig(initial=0.0)
        rig.gate.submit(req(op_id=0, priority=(5.0, 0.0, 0.0)))
        rig.gate.submit(req(op_id=1, priority=(1.0, 0.0, 0.0)))
        rig.gate.on_grant(CreditGrant(client_id=0, epoch=1, credits={0: 1.0}))
        rig.env.run(until=0.01)
        assert [m.op.op_id for m in rig.server_inbox] == [1]  # highest priority

    def test_urgent_report_on_gating(self):
        rig = GateRig(initial=0.0)
        rig.gate.submit(req())
        rig.env.run(until=0.001)  # well before the measurement interval
        reports = [m for m in rig.controller_inbox if isinstance(m, DemandReport)]
        assert reports and reports[0].demand[0] >= 1.0

    def test_credits_accumulate_up_to_cap(self):
        rig = GateRig(initial=10.0)
        for epoch in range(10):
            rig.gate.on_grant(
                CreditGrant(client_id=0, epoch=epoch, credits={0: 10.0})
            )
        assert rig.gate.credits[0] <= 10.0 * rig.gate.accumulation_intervals + 1e-9

    def test_periodic_demand_reports(self):
        rig = GateRig(initial=100.0)
        rig.gate.submit(req())
        rig.env.run(until=0.25)
        reports = [m for m in rig.controller_inbox if isinstance(m, DemandReport)]
        assert reports

    def test_grant_for_wrong_client_rejected(self):
        rig = GateRig()
        with pytest.raises(ValueError):
            rig.gate.on_grant(CreditGrant(client_id=9, epoch=1, credits={}))

    def test_unknown_server_rejected(self):
        rig = GateRig()
        with pytest.raises(ValueError):
            rig.gate.submit(req(server=99))

    def test_fifo_within_equal_priority_backlog(self):
        rig = GateRig(initial=0.0)
        for i in range(3):
            rig.gate.submit(req(op_id=i, priority=(1.0, 0.0, 0.0)))
        rig.gate.on_grant(CreditGrant(client_id=0, epoch=1, credits={0: 3.0}))
        rig.env.run(until=0.01)
        assert [m.op.op_id for m in rig.server_inbox] == [0, 1, 2]


class TestEqualInitialShares:
    def test_splits_capacity(self):
        shares = equal_initial_shares({0: 100.0, 1: 50.0}, n_clients=4, epoch=0.1)
        assert shares[0] == pytest.approx(2.5)
        assert shares[1] == pytest.approx(1.25)

    def test_validates(self):
        with pytest.raises(ValueError):
            equal_initial_shares({0: 1.0}, n_clients=0)
