"""Unit tests for the cost model and task splitting."""

import pytest

from repro.cluster import RingPlacement
from repro.core import CostModel, bottleneck, split_task
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def model():
    # 1 byte == 1 ms, no overhead: costs are easy to read.
    return CostModel(ServiceTimeModel(overhead=0.0, bandwidth=1000.0, noise="none"))


def task_with(keys_sizes, task_id=0, arrival=0.0):
    ops = tuple(
        Operation(op_id=i, task_id=task_id, key=k, value_size=s)
        for i, (k, s) in enumerate(keys_sizes)
    )
    return Task(task_id=task_id, arrival_time=arrival, client_id=0, operations=ops)


class TestCostModel:
    def test_op_cost_from_size(self):
        m = model()
        op = Operation(op_id=0, task_id=0, key=0, value_size=500)
        assert m.op_cost(op) == pytest.approx(0.5)

    def test_subtask_cost_sums(self):
        m = model()
        ops = [
            Operation(op_id=i, task_id=0, key=i, value_size=100) for i in range(3)
        ]
        assert m.subtask_cost(ops) == pytest.approx(0.3)


class TestSplitTask:
    def test_one_subtask_per_replica_group(self):
        placement = RingPlacement(n_servers=4, replication_factor=2)
        task = task_with([(k, 100) for k in range(40)])
        subtasks = split_task(task, placement.partition_of, model())
        partitions = [st.partition for st in subtasks]
        assert partitions == sorted(set(partitions))  # distinct & ordered
        assert sum(st.size for st in subtasks) == 40

    def test_ops_grouped_with_their_partition(self):
        placement = RingPlacement(n_servers=4, replication_factor=2)
        task = task_with([(k, 100) for k in range(20)])
        for st in split_task(task, placement.partition_of, model()):
            for op in st.operations:
                assert placement.partition_of(op.key) == st.partition

    def test_costs_aligned(self):
        placement = RingPlacement(n_servers=3, replication_factor=1)
        task = task_with([(0, 100), (1, 300), (2, 500)])
        for st in split_task(task, placement.partition_of, model()):
            assert st.cost == pytest.approx(sum(st.op_costs))
            assert len(st.op_costs) == len(st.operations)

    def test_single_op_task(self):
        placement = RingPlacement(n_servers=3, replication_factor=1)
        subtasks = split_task(task_with([(7, 200)]), placement.partition_of, model())
        assert len(subtasks) == 1
        assert subtasks[0].cost == pytest.approx(0.2)


class TestBottleneck:
    def test_picks_costliest(self):
        placement = RingPlacement(n_servers=9, replication_factor=3)
        # Put a very large value on one key: its group must be bottleneck.
        task = task_with([(k, 10) for k in range(8)] + [(100, 100_000)])
        subtasks = split_task(task, placement.partition_of, model())
        bott = bottleneck(subtasks)
        assert any(op.value_size == 100_000 for op in bott.operations)
        assert all(st.cost <= bott.cost for st in subtasks)

    def test_tie_breaks_to_first(self):
        placement = RingPlacement(n_servers=2, replication_factor=1)
        task = task_with([(0, 100), (1, 100)])
        subtasks = split_task(task, placement.partition_of, model())
        if len(subtasks) == 2 and subtasks[0].cost == subtasks[1].cost:
            assert bottleneck(subtasks) is subtasks[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bottleneck([])
