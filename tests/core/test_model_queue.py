"""Unit tests for the ideal global-queue realization."""

import pytest

from repro.cluster import RequestMessage
from repro.cluster.network import ConstantLatency
from repro.core import GlobalQueue
from repro.sim import Environment, Stream
from repro.workload.tasks import Operation


def req(op_id=0, priority=(0.0, 0.0, 0.0), partition=0):
    return RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=10),
        task_id=0,
        client_id=0,
        partition=partition,
        priority=priority,
    )


class TestGlobalQueue:
    def test_submit_applies_network_delay(self):
        env = Environment()
        gq = GlobalQueue(env, latency=ConstantLatency(0.5), stream=Stream(0))
        request = req()
        gq.submit(request)
        assert len(gq) == 0  # still in flight
        env.run()
        assert len(gq) == 1
        assert request.enqueued_at == pytest.approx(0.5)
        assert request.dispatched_at == 0.0

    def test_orders_by_priority_across_clients(self):
        env = Environment()
        gq = GlobalQueue(env, latency=ConstantLatency(0.0), stream=Stream(0))
        out = []

        def consumer(env):
            for _ in range(3):
                item = yield gq.store.get()
                out.append(item.item.op.op_id)

        gq.submit(req(op_id=0, priority=(3.0, 0.0, 0.0)))
        gq.submit(req(op_id=1, priority=(1.0, 0.0, 0.0)))
        gq.submit(req(op_id=2, priority=(2.0, 0.0, 0.0)))
        env.process(consumer(env))
        env.run()
        assert out == [1, 2, 0]

    def test_submitted_counter(self):
        env = Environment()
        gq = GlobalQueue(env, latency=ConstantLatency(0.0), stream=Stream(0))
        for i in range(5):
            gq.submit(req(op_id=i))
        env.run()
        assert gq.submitted == 5
        assert len(gq) == 5
