"""Unit tests for the BRB dispatch strategies (credits + model)."""

import pytest

from repro.cluster import (
    BackendServer,
    Client,
    Network,
    PullServer,
    RingPlacement,
    client_address,
)
from repro.cluster.messages import CreditGrant
from repro.cluster.network import ConstantLatency
from repro.core import (
    BRBCreditsStrategy,
    BRBModelStrategy,
    CreditGate,
    EqualMaxAssigner,
    GlobalQueue,
    UnifIncrAssigner,
)
from repro.scheduling import PriorityDiscipline
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def unit_model():
    return ServiceTimeModel(overhead=0.0, bandwidth=1000.0, noise="none")


def make_task(keys_sizes, task_id=0, arrival=0.0):
    ops = tuple(
        Operation(op_id=task_id * 100 + i, task_id=task_id, key=k, value_size=s)
        for i, (k, s) in enumerate(keys_sizes)
    )
    return Task(task_id=task_id, arrival_time=arrival, client_id=0, operations=ops)


class CreditsRig:
    def __init__(self, n_servers=3, rf=2, initial_credits=1000.0):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(0.0), stream=Stream(0, "n")
        )
        self.placement = RingPlacement(n_servers=n_servers, replication_factor=rf)
        self.model = unit_model()
        self.servers = [
            BackendServer(
                self.env,
                server_id=s,
                cores=1,
                service_model=self.model,
                network=self.network,
                service_stream=Stream(s + 1, f"s{s}"),
                discipline=PriorityDiscipline(),
            )
            for s in range(n_servers)
        ]
        # Controller address must exist for demand reports.
        self.controller_inbox = []
        self.network.register(("controller", 0), self.controller_inbox.append)
        self.gate = CreditGate(
            self.env,
            self.network,
            client_id=0,
            server_ids=list(range(n_servers)),
            initial_share={s: initial_credits for s in range(n_servers)},
        )
        self.strategy = BRBCreditsStrategy(
            self.placement, EqualMaxAssigner(), self.model, gate=self.gate
        )
        self.completions = []
        self.client = Client(
            self.env,
            client_id=0,
            network=self.network,
            strategy=self.strategy,
            on_complete=self.completions.append,
        )


class TestBRBCredits:
    def test_end_to_end_completion(self):
        rig = CreditsRig()
        rig.client.submit(make_task([(k, 100) for k in range(6)]))
        rig.env.run(until=5.0)
        assert len(rig.completions) == 1

    def test_requests_carry_priorities_and_costs(self):
        rig = CreditsRig()
        task = make_task([(0, 100), (1, 900), (2, 50)])
        requests = rig.strategy.prepare(task)
        assert len(requests) == 3
        for r in requests:
            assert r.bottleneck_cost > 0
            assert r.expected_service == pytest.approx(r.op.value_size / 1000.0)
            assert len(r.priority) == 3
            assert r.server_id in rig.placement.replicas_of(r.partition)

    def test_equalmax_priorities_equal_within_task(self):
        rig = CreditsRig()
        requests = rig.strategy.prepare(make_task([(k, 100 * (k + 1)) for k in range(5)]))
        heads = {r.priority[0] for r in requests}
        assert len(heads) == 1

    def test_replica_spreading_within_group(self):
        """Many equal ops on one partition must not all hit one replica."""
        rig = CreditsRig(n_servers=3, rf=3)
        # All keys map to partitions, all replicas shared; use many ops.
        task = make_task([(k, 100) for k in range(30)])
        requests = rig.strategy.prepare(task)
        used = {r.server_id for r in requests}
        assert len(used) > 1

    def test_gated_requests_preserve_priority_order(self):
        rig = CreditsRig(initial_credits=0.0)
        urgent = make_task([(0, 10)], task_id=1, arrival=0.0)
        relaxed = make_task([(0, 9000)], task_id=2, arrival=0.0)
        rig.client.submit(relaxed)
        rig.client.submit(urgent)
        # Grant credits: the urgent (small-bottleneck) task must leave first.
        rig.strategy.on_control(
            CreditGrant(client_id=0, epoch=1, credits={s: 10.0 for s in range(3)})
        )
        rig.env.run(until=20.0)
        assert [c.task.task_id for c in rig.completions] == [1, 2]

    def test_unexpected_control_rejected(self):
        rig = CreditsRig()
        with pytest.raises(TypeError):
            rig.strategy.on_control("junk")


class ModelRig:
    def __init__(self, n_servers=3, rf=2, assigner=None):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(0.0), stream=Stream(0, "n")
        )
        self.placement = RingPlacement(n_servers=n_servers, replication_factor=rf)
        self.model = unit_model()
        self.gq = GlobalQueue(self.env, latency=ConstantLatency(0.0), stream=Stream(9, "gq"))
        self.servers = [
            PullServer(
                self.env,
                server_id=s,
                cores=1,
                service_model=self.model,
                network=self.network,
                service_stream=Stream(s + 1, f"s{s}"),
                global_queue=self.gq.store,
                partitions=self.placement.partitions_of_server(s),
            )
            for s in range(n_servers)
        ]
        self.strategy = BRBModelStrategy(
            self.placement, assigner or UnifIncrAssigner(), self.model, global_queue=self.gq
        )
        self.completions = []
        self.client = Client(
            self.env,
            client_id=0,
            network=self.network,
            strategy=self.strategy,
            on_complete=self.completions.append,
        )


class TestBRBModel:
    def test_end_to_end_completion(self):
        rig = ModelRig()
        rig.client.submit(make_task([(k, 100) for k in range(6)]))
        rig.env.run(until=10.0)
        assert len(rig.completions) == 1

    def test_no_server_preassignment(self):
        rig = ModelRig()
        requests = rig.strategy.prepare(make_task([(0, 100), (1, 100)]))
        assert all(r.server_id == -1 for r in requests)

    def test_any_replica_can_pull(self):
        """With RF == n_servers every server may serve; work must spread."""
        rig = ModelRig(n_servers=3, rf=3)
        rig.client.submit(make_task([(k, 1000) for k in range(9)]))
        rig.env.run(until=60.0)
        served = [s.completed for s in rig.servers]
        assert sum(served) == 9
        assert all(c > 0 for c in served)

    def test_priority_order_respected_globally(self):
        rig = ModelRig(n_servers=1, rf=1)
        # Single server, single core: completion order == priority order.
        quick = make_task([(0, 10)], task_id=1)
        slow = make_task([(1, 5000)], task_id=2)
        rig.client.submit(slow)
        rig.client.submit(quick)
        rig.env.run(until=60.0)
        assert [c.task.task_id for c in rig.completions] == [1, 2]
