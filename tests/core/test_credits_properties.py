"""Property-based tests for the credits allocation arithmetic.

Invariants the allocator must maintain under any demand pattern:

* conservation: total grants for one server never exceed its interval
  budget (scaled by the congestion factor);
* demand satisfaction: when total demand fits the budget, everyone gets at
  least their demand;
* proportionality under oversubscription: grants are proportional to
  demand (within floating-point tolerance);
* gate carry-over never exceeds its cap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import CreditGrant, Network
from repro.cluster.server import server_address
from repro.core import CreditGate, CreditsController
from repro.sim import Environment, Stream


def make_controller(n_clients, capacity=1000.0, interval=0.1, scale=1.0):
    env = Environment()
    network = Network(env, stream=Stream(0, "n"))
    controller = CreditsController(
        env,
        network,
        n_clients=n_clients,
        server_capacities={0: capacity},
        allocation_interval=interval,
    )
    controller.scales[0] = scale
    return controller


demand_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=7),
    values=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    max_size=8,
)


@given(demand_maps, st.floats(min_value=0.5, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_allocation_conserves_budget(demands, scale):
    controller = make_controller(n_clients=8, scale=scale)
    grants = controller._allocate_server(0, demands)
    budget = controller._interval_budget(0)
    assert sum(grants.values()) <= budget + 1e-6


@given(demand_maps)
@settings(max_examples=200, deadline=None)
def test_allocation_satisfies_fitting_demand(demands):
    controller = make_controller(n_clients=8)
    budget = controller._interval_budget(0)
    if sum(demands.values()) > budget:
        return  # covered by the proportionality test
    grants = controller._allocate_server(0, demands)
    for client, demand in demands.items():
        if demand > 0:
            assert grants.get(client, 0.0) >= demand - 1e-9


@given(demand_maps)
@settings(max_examples=200, deadline=None)
def test_allocation_proportional_when_oversubscribed(demands):
    controller = make_controller(n_clients=8, capacity=100.0)
    budget = controller._interval_budget(0)
    total = sum(demands.values())
    if total <= budget:
        return
    grants = controller._allocate_server(0, demands)
    for client, demand in demands.items():
        if demand > 0:
            expected = budget * demand / total
            assert grants[client] == pytest.approx(expected, rel=1e-9)


@given(
    st.lists(st.floats(min_value=0.0, max_value=50.0, allow_nan=False), max_size=30)
)
@settings(max_examples=100, deadline=None)
def test_gate_carryover_never_exceeds_cap(grant_sizes):
    env = Environment()
    network = Network(env, stream=Stream(0, "n"))
    network.register(server_address(0), lambda m: None)
    network.register(("controller", 0), lambda m: None)
    gate = CreditGate(
        env,
        network,
        client_id=0,
        server_ids=[0],
        initial_share={0: 10.0},
        accumulation_intervals=3.0,
    )
    largest_grant = 0.0
    for epoch, amount in enumerate(grant_sizes):
        gate.on_grant(CreditGrant(client_id=0, epoch=epoch, credits={0: amount}))
        largest_grant = max(largest_grant, amount)
        # A single oversized grant may exceed the rate cap once (the
        # controller only issues such grants within a server's budget);
        # steady accumulation may not.
        assert gate.credits[0] <= max(gate._caps[0], largest_grant) + 1e-9
