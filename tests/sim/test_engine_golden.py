"""Engine-vs-engine byte-equality: fixed seeds, golden ``RunResult`` dicts.

The fixture was captured with the *pre-overhaul* engine (PR 4 state) and
is the differential half of the hot-path overhaul's determinism promise:
the heap-calendar/Timer/batched-RNG/memoized-cost engine must reproduce
the old engine's ``RunResult.to_dict()`` -- which folds every task
latency into a SHA-256 digest, plus ``events_processed`` and all audit
extras -- byte for byte, across 3 scenarios x 2 strategies.

To regenerate after an *intentional* semantics change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/sim/test_engine_golden.py

and explain in the commit why determinism moved (see
``docs/performance.md`` for what "byte-identical" does and does not
cover).
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness.runner import run_experiment
from repro.scenarios import get_scenario

FIXTURE = Path(__file__).parent / "fixtures" / "engine_golden.json"

GRID = [
    ("steady-state", "c3"),
    ("steady-state", "unifincr-credits"),
    ("straggler", "c3"),
    ("straggler", "unifincr-credits"),
    ("hotspot-skew", "c3"),
    ("hotspot-skew", "unifincr-credits"),
]
N_TASKS = 400
SEED = 1


def _run_cell(scenario, strategy):
    config = get_scenario(scenario).build_config(strategy=strategy, n_tasks=N_TASKS)
    return run_experiment(config, seed=SEED).to_dict()


@pytest.fixture(scope="module")
def golden():
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
        data = {
            f"{scenario}/{strategy}/seed{SEED}": _run_cell(scenario, strategy)
            for scenario, strategy in GRID
        }
        FIXTURE.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return json.loads(FIXTURE.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "scenario,strategy", GRID, ids=[f"{s}-{st}" for s, st in GRID]
)
def test_run_result_matches_pre_overhaul_engine(golden, scenario, strategy):
    produced = json.loads(json.dumps(_run_cell(scenario, strategy), sort_keys=True))
    expected = golden[f"{scenario}/{strategy}/seed{SEED}"]
    assert produced == expected, (
        f"{scenario}/{strategy}: RunResult.to_dict() drifted from the "
        "pre-overhaul engine; if intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1 and justify the determinism break"
    )


def test_fixture_covers_grid_and_counts():
    """Guard the fixture against truncation or an empty regen."""
    data = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert len(data) == len(GRID)
    for key, cell in data.items():
        assert cell["n_tasks"] == N_TASKS, key
        assert cell["tasks_completed"] == N_TASKS, key
        assert cell["events_processed"] > 0, key
        assert len(cell["task_latency_digest"]) == 64, key


def test_to_dict_is_deterministic_within_one_process():
    """Same (config, seed) twice in one process -> identical dicts."""
    scenario, strategy = GRID[0]
    assert _run_cell(scenario, strategy) == _run_cell(scenario, strategy)
