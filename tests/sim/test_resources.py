"""Unit tests for stores, priority stores and counted resources."""

import pytest

from repro.sim import (
    Environment,
    FilterStore,
    PriorityFilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)


def drain(env, store, n, out, filter=None):
    """Helper process: take n items from a store into `out`."""
    for _ in range(n):
        if filter is not None:
            item = yield store.get(filter)
        else:
            item = yield store.get()
        out.append(item)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        out = []
        for i in range(3):
            store.put(i)
        env.process(drain(env, store, 3, out))
        env.run()
        assert out == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        out = []

        def producer(env):
            yield env.timeout(5.0)
            store.put("item")

        env.process(drain(env, store, 1, out))
        env.process(producer(env))
        env.run()
        assert out == ["item"]
        assert env.now == 5.0

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        done = []

        def producer(env):
            yield store.put("a")
            yield store.put("b")  # blocks until consumer takes "a"
            done.append(env.now)

        def consumer(env):
            yield env.timeout(3.0)
            item = yield store.get()
            assert item == "a"

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done == [3.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)


class TestFilterStore:
    def test_filter_selects_matching_item(self):
        env = Environment()
        store = FilterStore(env)
        out = []
        for i in range(5):
            store.put(i)
        env.process(drain(env, store, 1, out, filter=lambda x: x % 2 == 1))
        env.run()
        assert out == [1]
        assert sorted(store.items) == [0, 2, 3, 4]

    def test_filter_blocks_until_match_arrives(self):
        env = Environment()
        store = FilterStore(env)
        out = []

        def producer(env):
            yield env.timeout(1.0)
            store.put("no")
            yield env.timeout(1.0)
            store.put("yes")

        env.process(drain(env, store, 1, out, filter=lambda x: x == "yes"))
        env.process(producer(env))
        env.run()
        assert out == ["yes"]
        assert env.now == 2.0


class TestPriorityStore:
    def test_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        out = []
        for key in (3, 1, 2):
            store.put(PriorityItem(key, f"item{key}"))
        env.process(drain(env, store, 3, out))
        env.run()
        assert [i.key for i in out] == [1, 2, 3]

    def test_fifo_within_equal_priority(self):
        env = Environment()
        store = PriorityStore(env)
        out = []
        items = [PriorityItem(1, n) for n in ("first", "second", "third")]
        for item in items:
            store.put(item)
        env.process(drain(env, store, 3, out))
        env.run()
        assert [i.item for i in out] == ["first", "second", "third"]

    def test_same_instant_batch_is_priority_ordered(self):
        """Puts and a waiting get at the same timestamp: the get must see
        the whole batch, not just the first put (deferred matching)."""
        env = Environment()
        store = PriorityStore(env)
        out = []
        env.process(drain(env, store, 1, out))  # waiting consumer

        def producer(env):
            yield env.timeout(1.0)
            store.put(PriorityItem(5, "low"))
            store.put(PriorityItem(1, "high"))

        env.process(producer(env))
        env.run()
        assert out[0].item == "high"


class TestPriorityFilterStore:
    def test_filtered_get_returns_smallest_eligible(self):
        env = Environment()
        store = PriorityFilterStore(env)
        out = []
        store.put(PriorityItem(1, ("p0", "best-but-wrong-partition")))
        store.put(PriorityItem(2, ("p1", "eligible")))
        store.put(PriorityItem(3, ("p1", "worse")))
        env.process(drain(env, store, 1, out, filter=lambda i: i.item[0] == "p1"))
        env.run()
        assert out[0].item == ("p1", "eligible")
        # Non-matching item must remain.
        assert len(store) == 2

    def test_unfiltered_get_ignores_partitions(self):
        env = Environment()
        store = PriorityFilterStore(env)
        out = []
        store.put(PriorityItem(2, "b"))
        store.put(PriorityItem(1, "a"))
        env.process(drain(env, store, 2, out))
        env.run()
        assert [i.item for i in out] == ["a", "b"]

    def test_multiple_consumers_with_disjoint_filters(self):
        env = Environment()
        store = PriorityFilterStore(env)
        got_a, got_b = [], []
        env.process(drain(env, store, 2, got_a, filter=lambda i: i.item[0] == "a"))
        env.process(drain(env, store, 2, got_b, filter=lambda i: i.item[0] == "b"))

        def producer(env):
            for key, tag in [(4, "a"), (3, "b"), (2, "a"), (1, "b")]:
                store.put(PriorityItem(key, (tag, key)))
                yield env.timeout(1.0)

        env.process(producer(env))
        env.run()
        assert [i.item[1] for i in got_a] == [4, 2]
        assert [i.item[1] for i in got_b] == [3, 1]


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        res = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env):
            with res.request() as req:
                yield req
                active.append(1)
                peak.append(len(active))
                yield env.timeout(1.0)
                active.pop()

        for _ in range(6):
            env.process(worker(env))
        env.run()
        assert max(peak) <= 2
        assert env.now == 3.0  # 6 jobs, 2 at a time, 1s each

    def test_release_is_idempotent(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # second release must not underflow

        env.process(worker(env))
        env.run()
        assert res.count == 0

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(env, name):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        for i in range(4):
            env.process(worker(env, i))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)
