"""Unit tests for generator processes: waiting, joining, interrupts."""

import pytest

from repro.sim import Environment, Interrupt


class TestBasics:
    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "result"

        p = env.process(proc(env))
        env.run()
        assert p.value == "result"
        assert not p.is_alive

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_is_alive_while_running(self):
        env = Environment()
        observations = []

        def short(env):
            yield env.timeout(1.0)

        def watcher(env, target):
            observations.append(target.is_alive)
            yield env.timeout(2.0)
            observations.append(target.is_alive)

        p = env.process(short(env))
        env.process(watcher(env, p))
        env.run()
        assert observations == [True, False]

    def test_fork_join(self):
        env = Environment()
        log = []

        def child(env, name, delay):
            yield env.timeout(delay)
            log.append(name)
            return name

        def parent(env):
            children = [
                env.process(child(env, "a", 2.0)),
                env.process(child(env, "b", 1.0)),
            ]
            results = yield env.all_of(children)
            log.append(tuple(results.values()))

        env.process(parent(env))
        env.run()
        assert log == ["b", "a", ("a", "b")]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc(env):
            yield 42  # type: ignore[misc]

        p = env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()
        assert not p.ok

    def test_uncaught_exception_fails_process_and_run(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise ValueError("inside")

        env.process(proc(env))
        with pytest.raises(ValueError, match="inside"):
            env.run()

    def test_waiting_on_failed_event_rethrows_inside_process(self):
        env = Environment()
        caught = []

        def proc(env):
            ev = env.event()
            ev.fail(KeyError("gone"))
            try:
                yield ev
            except KeyError:
                caught.append(True)

        env.process(proc(env))
        env.run()
        assert caught == [True]

    def test_process_waits_on_another_process_failure(self):
        env = Environment()
        caught = []

        def bad(env):
            yield env.timeout(1.0)
            raise RuntimeError("child died")

        def parent(env):
            try:
                yield env.process(bad(env))
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["child died"]


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        causes = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as i:
                causes.append((env.now, i.cause))

        def interrupter(env, victim):
            yield env.timeout(2.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert causes == [(2.0, "wake up")]

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def interrupter(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [3.0]

    def test_interrupting_terminated_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        def late(env, victim):
            yield env.timeout(5.0)
            victim.interrupt()

        victim = env.process(quick(env))
        env.process(late(env, victim))
        with pytest.raises(Exception):
            env.run()

    def test_self_interrupt_rejected(self):
        env = Environment()
        errors = []

        def proc(env):
            me = env.active_process
            try:
                me.interrupt()
            except Exception as exc:
                errors.append(type(exc).__name__)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert errors == ["SimulationError"]
