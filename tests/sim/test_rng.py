"""Unit tests for deterministic named random streams."""

import math

import pytest

from repro.sim import Stream, StreamFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names_distinct_seeds(self):
        seeds = {derive_seed(7, f"name{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestStreamFactory:
    def test_memoizes_streams(self):
        factory = StreamFactory(3)
        assert factory.stream("a") is factory.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        f1 = StreamFactory(5)
        f2 = StreamFactory(5)
        _ = f1.stream("noise").random()  # extra stream, used first
        a1 = [f1.stream("target").random() for _ in range(10)]
        a2 = [f2.stream("target").random() for _ in range(10)]
        assert a1 == a2

    def test_spawn_gives_independent_child(self):
        parent = StreamFactory(5)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.root_seed != child_b.root_seed
        assert child_a.stream("x").random() != child_b.stream("x").random()


class TestDistributions:
    def test_exponential_mean(self):
        stream = Stream(1, "exp")
        n = 50_000
        mean = sum(stream.exponential(2.0) for _ in range(n)) / n
        assert abs(mean - 2.0) < 0.05

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            Stream(1).exponential(0.0)

    def test_bounded_pareto_respects_bounds(self):
        stream = Stream(2, "bp")
        for _ in range(5000):
            x = stream.bounded_pareto(1.2, 10.0, 1000.0)
            assert 10.0 <= x <= 1000.0

    def test_bounded_pareto_validates(self):
        stream = Stream(3)
        with pytest.raises(ValueError):
            stream.bounded_pareto(1.2, 100.0, 10.0)
        with pytest.raises(ValueError):
            stream.bounded_pareto(-1.0, 1.0, 10.0)

    def test_zipf_range(self):
        stream = Stream(4, "zipf")
        n = 50
        draws = [stream.zipf(n, 0.9) for _ in range(5000)]
        assert all(0 <= d < n for d in draws)

    def test_zipf_skews_toward_low_ranks(self):
        stream = Stream(5, "zipf")
        n = 1000
        draws = [stream.zipf(n, 1.2) for _ in range(20_000)]
        top_decile = sum(1 for d in draws if d < n // 10)
        assert top_decile / len(draws) > 0.5  # heavy head

    def test_zipf_single_element(self):
        assert Stream(6).zipf(1, 0.9) == 0

    def test_zipf_validates(self):
        with pytest.raises(ValueError):
            Stream(7).zipf(0, 0.9)
        with pytest.raises(ValueError):
            Stream(7).zipf(10, -1.0)

    def test_lognormal_mean_hits_arithmetic_mean(self):
        stream = Stream(8, "ln")
        n = 100_000
        target = 5.0
        mean = sum(stream.lognormal_mean(target, 0.8) for _ in range(n)) / n
        assert abs(mean - target) / target < 0.03

    def test_lognormal_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Stream(9).lognormal_mean(0.0, 1.0)
