"""Differential tests: the overhauled calendar vs the old calendar's order.

The pre-overhaul engine popped ``(time, priority, sequence, Event)`` heap
tuples; the overhauled one mixes Events with bare-callback ``Timer``
entries and discards lazily-cancelled timers on pop.  These tests pin
that the observable contract did not move:

* mixed Event/Timer programs fire in exactly the old calendar's
  ``(time, priority, sequence)`` lexicographic order, where the sequence
  number is the global scheduling order -- the reference model is a
  stable sort, which is precisely what the old heap delivered;
* cancelled timers are invisible: they neither fire, nor count toward
  ``events_processed``, nor shift any other entry's position;
* converting a Timeout-plus-callback call site to ``call_later`` (the
  network/flush fast path migration) preserves interleaving exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.sim.engine import Timer
from repro.sim.events import Event, LOW, NORMAL, URGENT

#: (delay, priority, kind) programs; few distinct delays force collisions.
#: kind: 0 = triggered Event, 1 = Timer, 2 = Timer cancelled before run.
programs = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.5, 1.0, 2.0]),
        st.sampled_from([URGENT, NORMAL, LOW]),
        st.sampled_from([0, 1, 2]),
    ),
    min_size=1,
    max_size=60,
)


def _schedule_program(env, program, fired):
    """Schedule each entry in order; append (delay, prio, seq) on fire."""
    timers = []
    for seq, (delay, priority, kind) in enumerate(program):
        record = (delay, priority, seq)
        if kind == 0:
            event = Event(env)
            event._ok = True
            event._value = None
            env.schedule(event, delay=delay, priority=priority)
            event.callbacks.append(lambda _e, rec=record: fired.append(rec))
        else:
            timer = env.call_later(
                delay, lambda rec: fired.append(rec), record, priority=priority
            )
            if kind == 2:
                timer.cancel()
            timers.append(timer)
    return timers


@given(programs)
@settings(max_examples=150, deadline=None)
def test_mixed_entries_fire_in_old_calendar_order(program):
    """Events and timers share one (time, priority, sequence) order."""
    env = Environment()
    fired = []
    _schedule_program(env, program, fired)
    env.run()
    live = [
        (delay, priority, seq)
        for seq, (delay, priority, kind) in enumerate(program)
        if kind != 2
    ]
    # The old calendar == stable sort on (time, priority), i.e. plain
    # lexicographic sort once the global sequence number is appended.
    assert fired == sorted(live)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_cancelled_timers_do_not_count_or_fire(program):
    env = Environment()
    fired = []
    _schedule_program(env, program, fired)
    env.run()
    expected_live = sum(1 for _, _, kind in program if kind != 2)
    assert len(fired) == expected_live
    assert env.events_processed == expected_live


@given(programs)
@settings(max_examples=75, deadline=None)
def test_timer_fast_path_is_order_identical_to_timeout_callbacks(program):
    """The network-migration refactor, as a property: replacing every
    Timeout-plus-callback with call_later leaves the fire order unchanged."""
    fired_events = []
    env_a = Environment()
    for seq, (delay, priority, _kind) in enumerate(program):
        event = env_a.timeout(delay)
        # timeout() always schedules at NORMAL; mirror that on both sides
        # and keep the program's priority out of this comparison.
        event.callbacks.append(
            lambda _e, rec=(delay, seq): fired_events.append(rec)
        )
    env_a.run()

    fired_timers = []
    env_b = Environment()
    for seq, (delay, priority, _kind) in enumerate(program):
        env_b.call_later(delay, fired_timers.append, (delay, seq))
    env_b.run()

    assert fired_events == fired_timers
    assert env_a.events_processed == env_b.events_processed


class TestLazyCancellation:
    def test_cancel_before_fire_skips_silently(self):
        env = Environment()
        fired = []
        timer = env.call_later(1.0, fired.append, "x")
        env.call_later(2.0, fired.append, "y")
        timer.cancel()
        env.run()
        assert fired == ["y"]
        assert env.events_processed == 1

    def test_cancel_from_same_instant_callback(self):
        """A callback may cancel a later same-time timer: lazy discard."""
        env = Environment()
        fired = []
        victim = env.call_later(1.0, fired.append, "victim")
        env.call_at(1.0, lambda _a: victim.cancel(), priority=URGENT)
        env.run()
        assert fired == []
        assert env.events_processed == 1  # only the canceller fired

    def test_cancel_after_fire_is_noop(self):
        env = Environment()
        fired = []
        timer = env.call_later(0.5, fired.append, "x")
        env.run()
        timer.cancel()  # must not raise
        assert fired == ["x"]

    def test_cancelled_entry_stays_on_heap_until_popped(self):
        """Lazy cancellation never mutates the heap in place."""
        env = Environment()
        timer = env.call_later(5.0, lambda _a: None)
        timer.cancel()
        assert env.peek() == 5.0  # documented: peek may see a dead entry
        env.run()
        assert env.peek() == float("inf")
        assert env.events_processed == 0
        # Fully invisible: the clock must not advance to a dead deadline.
        assert env.now == 0.0

    def test_cancelled_timer_does_not_advance_clock(self):
        """The clock stops at the last *live* entry, in run() and step()."""
        env = Environment()
        fired = []
        env.call_later(1.0, fired.append, "live")
        dead = env.call_later(9.0, fired.append, "dead")
        dead.cancel()
        env.run()
        assert fired == ["live"]
        assert env.now == 1.0

        env2 = Environment()
        dead2 = env2.call_later(7.0, lambda _a: None)
        dead2.cancel()
        env2.call_later(8.0, lambda _a: None)
        env2.step()  # discards the dead entry, fires the 8.0 one
        assert env2.now == 8.0

    def test_events_processed_is_live_mid_run(self):
        """Callbacks observe the running count, same as under step()."""
        env = Environment()
        seen = []
        for delay in (1.0, 2.0, 3.0):
            env.call_later(delay, lambda _a: seen.append(env.events_processed))
        env.run()
        # Each callback runs before its own entry is counted, and sees
        # every earlier entry already counted -- exactly step() semantics.
        assert seen == [0, 1, 2]
        assert env.events_processed == 3

    def test_step_skips_cancelled_entries(self):
        """The single-step API agrees with the inlined run loop."""
        env = Environment()
        fired = []
        dead = env.call_later(1.0, fired.append, "dead")
        env.call_later(2.0, fired.append, "live")
        dead.cancel()
        env.step()  # discards the cancelled timer, fires the live one
        assert fired == ["live"]
        assert env.events_processed == 1

    def test_timer_repr_states_armed_and_cancelled(self):
        env = Environment()
        timer = env.call_later(1.0, lambda _a: None)
        assert "armed" in repr(timer)
        timer.cancel()
        assert "cancelled" in repr(timer)


class TestTimerApi:
    def test_call_at_absolute_time(self):
        env = Environment()
        seen = []
        env.call_at(3.25, seen.append, "abs")
        env.run()
        assert seen == ["abs"]
        assert env.now == 3.25

    def test_timer_and_event_share_sequence_counter(self):
        """Interleaved schedules keep global FIFO within a (time, prio)."""
        env = Environment()
        order = []
        for i in range(6):
            if i % 2 == 0:
                env.call_later(1.0, order.append, i)
            else:
                event = Event(env)
                event._ok = True
                event._value = None
                env.schedule(event, delay=1.0)
                event.callbacks.append(lambda _e, i=i: order.append(i))
        env.run()
        assert order == list(range(6))

    def test_timer_failure_propagates(self):
        env = Environment()

        def boom(_arg):
            raise RuntimeError("timer exploded")

        env.call_later(1.0, boom)
        try:
            env.run()
        except RuntimeError as exc:
            assert "timer exploded" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("timer exception was swallowed")

    def test_isinstance_check(self):
        env = Environment()
        timer = env.call_later(1.0, lambda _a: None)
        assert isinstance(timer, Timer)

    def test_negative_delay_rejected_like_timeout(self):
        """The Timer fast path keeps Timeout's scheduling contract."""
        import pytest

        env = Environment()
        with pytest.raises(ValueError):
            env.call_later(-0.5, lambda _a: None)
        with pytest.raises(ValueError):
            env.call_at(-1.0, lambda _a: None)
        env.call_later(1.0, lambda _a: None)
        env.run()
        with pytest.raises(ValueError):
            env.call_at(0.5, lambda _a: None)  # now == 1.0: in the past
