"""Unit tests for event primitives (trigger, fail, conditions)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_starts_pending(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_carries_value(self):
        env = Environment()
        ev = env.event().succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_failed_event_value_is_exception(self):
        env = Environment()
        exc = RuntimeError("boom")
        ev = env.event().fail(exc)
        ev.defuse()
        assert not ev.ok
        assert ev.value is exc

    def test_unhandled_failure_crashes_run(self):
        env = Environment()
        env.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_crash(self):
        env = Environment()
        ev = env.event().fail(RuntimeError("handled"))
        ev.defuse()
        env.run()  # no raise

    def test_callbacks_run_at_processing(self):
        env = Environment()
        seen = []
        ev = env.event()
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["x"]
        assert ev.processed

    def test_trigger_copies_state_from_other_event(self):
        env = Environment()
        src = env.event().succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.triggered
        assert dst.value == "payload"


class TestTimeout:
    def test_fires_at_delay(self):
        env = Environment()
        env.timeout(2.5)
        env.run()
        assert env.now == 2.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_carries_value(self):
        env = Environment()
        results = []

        def proc(env):
            value = yield env.timeout(1.0, value="done")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["done"]

    def test_zero_delay_is_valid(self):
        env = Environment()
        t = env.timeout(0.0)
        env.run()
        assert env.now == 0.0
        assert t.processed


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        done_at = []

        def proc(env):
            yield env.all_of([env.timeout(1.0), env.timeout(3.0), env.timeout(2.0)])
            done_at.append(env.now)

        env.process(proc(env))
        env.run()
        assert done_at == [3.0]

    def test_any_of_fires_at_first(self):
        env = Environment()
        done_at = []

        def proc(env):
            yield env.any_of([env.timeout(5.0), env.timeout(1.0)])
            done_at.append(env.now)

        env.process(proc(env))
        env.run()
        assert done_at == [1.0]

    def test_empty_all_of_is_immediately_met(self):
        env = Environment()
        cond = env.all_of([])
        assert cond.triggered

    def test_and_operator(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(1.0) & env.timeout(2.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.0]

    def test_or_operator(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(1.0) | env.timeout(2.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [1.0]

    def test_condition_value_maps_events(self):
        env = Environment()
        captured = {}

        def proc(env):
            a = env.timeout(1.0, value="a")
            b = env.timeout(2.0, value="b")
            result = yield env.all_of([a, b])
            captured["a"] = result[a]
            captured["b"] = result[b]

        env.process(proc(env))
        env.run()
        assert captured == {"a": "a", "b": "b"}

    def test_condition_rejects_foreign_environment(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env1, [env1.event(), env2.event()])

    def test_condition_propagates_failure(self):
        env = Environment()
        caught = []

        def proc(env):
            bad = env.event()
            good = env.timeout(1.0)
            bad.fail(RuntimeError("inner"))
            try:
                yield env.all_of([good, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(proc(env))
        env.run()
        assert caught == ["inner"]

    def test_anyof_with_already_processed_event(self):
        env = Environment()
        t = env.timeout(1.0)
        env.run()
        assert t.processed
        times = []

        def proc(env):
            yield AnyOf(env, [t, env.timeout(10.0)])
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [1.0]  # already-processed event satisfies instantly
