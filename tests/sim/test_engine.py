"""Unit tests for the environment: clock, calendar, run semantics."""

import pytest

from repro.sim import EmptySchedule, Environment, Infinity, SimulationError


class TestClock:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=5.0).now == 5.0

    def test_time_advances_monotonically(self):
        env = Environment()
        stamps = []

        def proc(env):
            for delay in (3.0, 0.0, 2.0, 0.5):
                yield env.timeout(delay)
                stamps.append(env.now)

        env.process(proc(env))
        env.run()
        assert stamps == [3.0, 3.0, 5.0, 5.5]
        assert stamps == sorted(stamps)

    def test_peek_empty_is_infinity(self):
        assert Environment().peek() == Infinity

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(7.0)
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestRun:
    def test_run_until_time(self):
        env = Environment()
        fired = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                fired.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self):
        env = Environment()
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return "finished"

        p = env.process(proc(env))
        assert env.run(until=p) == "finished"
        assert env.now == 2.0

    def test_run_until_exhaustion_returns_none(self):
        env = Environment()
        env.timeout(1.0)
        assert env.run() is None
        assert env.now == 1.0

    def test_run_until_event_that_never_fires_raises(self):
        env = Environment()
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_run_until_already_processed_event(self):
        env = Environment()
        t = env.timeout(1.0, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_step_on_empty_calendar_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_events_processed_counter(self):
        env = Environment()
        for _ in range(5):
            env.timeout(1.0)
        env.run()
        assert env.events_processed == 5


class TestDeterminism:
    def test_same_program_same_timeline(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                trace.append((env.now, name))
                yield env.timeout(delay)
                trace.append((env.now, name))

            for i, d in enumerate((0.3, 0.1, 0.2)):
                env.process(worker(env, i, d))
            env.run()
            return trace

        assert build_and_run() == build_and_run()

    def test_fifo_tie_break_at_same_timestamp(self):
        env = Environment()
        order = []
        for i in range(10):
            ev = env.timeout(1.0, value=i)
            ev.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == list(range(10))


class TestPeriodicTimer:
    def test_fires_every_interval_until_run_ends(self):
        env = Environment()
        ticks = []
        env.call_every(0.1, lambda _: ticks.append(env.now))
        env.run(until=0.55)
        assert ticks == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_cancel_stops_the_rearm(self):
        env = Environment()
        ticks = []
        timer = env.call_every(0.1, lambda _: ticks.append(env.now))

        def canceller(env):
            yield env.timeout(0.25)
            timer.cancel()

        env.process(canceller(env))
        env.run(until=1.0)
        assert ticks == pytest.approx([0.1, 0.2])

    def test_cancel_from_inside_the_callback(self):
        env = Environment()
        ticks = []

        def tick(_):
            ticks.append(env.now)
            if len(ticks) == 3:
                timer.cancel()

        timer = env.call_every(0.1, tick)
        env.run(until=1.0)
        assert len(ticks) == 3

    def test_argument_is_threaded_through(self):
        env = Environment()
        seen = []
        env.call_every(0.5, seen.append, arg="payload")
        env.run(until=1.1)
        assert seen == ["payload", "payload"]

    def test_non_positive_interval_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="interval"):
            env.call_every(0.0, lambda _: None)
        with pytest.raises(ValueError, match="interval"):
            env.call_every(-1.0, lambda _: None)

    def test_periodic_timer_rides_along_with_processes(self):
        """An uncancelled periodic timer keeps rearming, so an unbounded
        ``run()`` only drains once its owner cancels it -- the runner's
        teardown contract for the metrics ticker."""
        env = Environment()
        ticks = []
        timer = env.call_every(0.1, lambda _: ticks.append(env.now))

        def worker(env):
            yield env.timeout(0.35)
            timer.cancel()

        env.process(worker(env))
        env.run()
        assert ticks == pytest.approx([0.1, 0.2, 0.3])
        assert env.now <= 0.45
