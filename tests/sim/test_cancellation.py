"""Tests for the cancellation paths of store and resource operations."""

import pytest

from repro.sim import Environment, PriorityItem, PriorityStore, Resource, Store


class TestStoreCancel:
    def test_cancelled_get_never_receives(self):
        env = Environment()
        store = Store(env)
        get_ev = store.get()
        get_ev.cancel()
        store.put("item")
        env.run()
        assert not get_ev.triggered
        assert store.items == ["item"]

    def test_cancelled_put_never_lands(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("first")
        blocked = store.put("second")  # over capacity: waits
        blocked.cancel()
        taken = store.get()
        env.run()
        assert taken.value == "first"
        assert len(store.items) == 0  # "second" never entered

    def test_cancel_after_trigger_is_noop(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        get_ev = store.get()
        env.run()
        assert get_ev.value == "x"
        get_ev.cancel()  # already satisfied: must not raise

    def test_cancelled_get_does_not_steal_priority_item(self):
        env = Environment()
        store = PriorityStore(env)
        first = store.get()
        first.cancel()
        second = store.get()
        store.put(PriorityItem(1, "payload"))
        env.run()
        assert not first.triggered
        assert second.value.item == "payload"


class TestResourceCancel:
    def test_cancelled_request_gives_up_queue_spot(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        holder = res.request()  # granted immediately (capacity free)
        assert holder.triggered
        waiting = res.request()  # queued behind the holder
        waiting.cancel()
        late = res.request()  # queued after the cancelled one
        late.callbacks.append(lambda e: order.append("late"))

        def finish(env):
            yield env.timeout(1.0)
            res.release(holder)

        env.process(finish(env))
        env.run()
        assert order == ["late"]  # skipped the cancelled request
        assert not waiting.triggered

    def test_release_of_queued_request_cancels_it(self):
        env = Environment()
        res = Resource(env, capacity=1)
        holder = res.request()
        queued = res.request()
        res.release(queued)  # never granted: acts as cancel
        res.release(holder)
        env.run()
        assert not queued.triggered
        assert res.count == 0
