"""Property-based tests (hypothesis) for the simulation kernel.

Invariants:

* virtual time never decreases, regardless of the timeout program;
* the event calendar fires same-time events in (priority, sequence)
  order, and processes exactly as many events as were scheduled -- the
  determinism contract the parallel executor's serial==parallel guarantee
  rests on;
* a priority store always yields items in non-decreasing key order, FIFO
  within equal keys;
* every item put into a store is eventually retrieved exactly once when
  demand matches supply;
* resources never exceed capacity.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim import (
    Environment,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)
from repro.sim.events import Event, LOW, NORMAL, URGENT

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30
)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_clock_monotonic_under_arbitrary_timeouts(delay_list):
    env = Environment()
    observed = []

    def proc(env, ds):
        for d in ds:
            yield env.timeout(d)
            observed.append(env.now)

    # Several interleaved processes with rotations of the same list.
    for shift in range(3):
        rotated = delay_list[shift:] + delay_list[:shift]
        env.process(proc(env, rotated))
    env.run()
    assert observed == sorted(observed)


def _schedule_triggered(env, delay, priority):
    """Schedule a pre-triggered bare event (the way ``run(until=t)`` does)."""
    event = Event(env)
    event._ok = True
    event._value = None
    env.schedule(event, delay=delay, priority=priority)
    return event


#: (delay, priority) programs; few distinct delays to force time collisions.
schedules = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.5, 1.0, 2.0]),
        st.sampled_from([URGENT, NORMAL, LOW]),
    ),
    min_size=1,
    max_size=60,
)


@given(schedules)
@settings(max_examples=100, deadline=None)
def test_same_time_events_fire_in_priority_then_sequence_order(program):
    """The calendar's tie-break is (time, priority, sequence) -- exactly."""
    env = Environment()
    fired = []
    for seq, (delay, priority) in enumerate(program):
        event = _schedule_triggered(env, delay, priority)
        event.callbacks.append(
            lambda _e, rec=(delay, priority, seq): fired.append(rec)
        )
    env.run()
    assert fired == sorted(fired)  # (time, priority, sequence) lexicographic
    assert env.now == max(delay for delay, _ in program)


@given(schedules)
@settings(max_examples=100, deadline=None)
def test_events_processed_equals_scheduled_count(program):
    """Every scheduled event is processed exactly once, none invented."""
    env = Environment()
    fire_counts = {}
    for seq, (delay, priority) in enumerate(program):
        event = _schedule_triggered(env, delay, priority)
        fire_counts[seq] = 0
        event.callbacks.append(
            lambda _e, s=seq: fire_counts.__setitem__(s, fire_counts[s] + 1)
        )
    env.run()
    assert env.events_processed == len(program)
    assert all(count == 1 for count in fire_counts.values())


@given(schedules, schedules)
@settings(max_examples=50, deadline=None)
def test_interleaved_schedules_preserve_relative_sequence(first, second):
    """Sequence numbers are global: two schedule bursts interleave stably."""
    env = Environment()
    fired = []
    for burst_id, burst in enumerate((first, second)):
        for delay, priority in burst:
            event = _schedule_triggered(env, delay, priority)
            event.callbacks.append(
                lambda _e, rec=(delay, priority, burst_id): fired.append(rec)
            )
    env.run()
    # Within one (time, priority) class, burst 0's events all precede
    # burst 1's, because scheduling order assigns monotone sequence ids.
    by_class = {}
    for delay, priority, burst_id in fired:
        by_class.setdefault((delay, priority), []).append(burst_id)
    for burst_ids in by_class.values():
        assert burst_ids == sorted(burst_ids)
    assert env.events_processed == len(first) + len(second)


@given(
    st.lists(
        st.tuples(st.integers(min_value=-100, max_value=100), st.integers()),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_priority_store_orders_like_sorted(pairs):
    env = Environment()
    store = PriorityStore(env)
    items = [PriorityItem(key, (key, idx, payload)) for idx, (key, payload) in enumerate(pairs)]
    for item in items:
        store.put(item)
    out = []

    def consumer(env):
        for _ in range(len(items)):
            got = yield store.get()
            out.append(got)

    env.process(consumer(env))
    env.run()
    # Keys non-decreasing; within equal keys, insertion order preserved.
    keys = [i.key for i in out]
    assert keys == sorted(keys)
    expected = sorted(items, key=lambda i: (i.key, i.seq))
    assert [i.item for i in out] == [i.item for i in expected]


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_store_conserves_items(n_items, n_consumers):
    env = Environment()
    store = Store(env)
    produced = list(range(n_items))
    consumed = []

    def producer(env):
        for item in produced:
            yield env.timeout(0.1)
            store.put(item)

    def consumer(env, count):
        for _ in range(count):
            item = yield store.get()
            consumed.append(item)

    # Split the demand across consumers (remainder to the first).
    base, extra = divmod(n_items, n_consumers)
    counts = [base + (1 if i < extra else 0) for i in range(n_consumers)]
    env.process(producer(env))
    for count in counts:
        if count:
            env.process(consumer(env, count))
    env.run()
    assert sorted(consumed) == produced


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(capacity, service_times):
    env = Environment()
    res = Resource(env, capacity=capacity)
    in_use = []
    max_seen = [0]

    def worker(env, hold):
        with res.request() as req:
            yield req
            in_use.append(1)
            max_seen[0] = max(max_seen[0], len(in_use))
            assert res.count <= capacity
            yield env.timeout(hold)
            in_use.pop()

    for hold in service_times:
        env.process(worker(env, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_priority_item_heap_matches_sorted(keys):
    """PriorityItem's ordering must agree with heapq's invariants."""
    items = [PriorityItem(k, idx) for idx, k in enumerate(keys)]
    heap = list(items)
    heapq.heapify(heap)
    popped = [heapq.heappop(heap) for _ in range(len(heap))]
    assert [i.key for i in popped] == sorted(keys)
