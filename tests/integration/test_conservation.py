"""Integration tests: conservation laws and life-cycle audits.

These run small end-to-end simulations and check the invariants that make
the latency numbers trustworthy: no request is lost or duplicated, the
timestamp trail is ordered, and the load actually lands on the servers at
the configured level.
"""

import pytest

from repro.cluster import BackendServer, Client, Network, RingPlacement
from repro.cluster.network import ConstantLatency
from repro.baselines import ObliviousStrategy, LeastOutstandingSelector
from repro.harness import ExperimentConfig, run_experiment
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


class TestRequestLifecycle:
    """Audit the timestamp trail of every request in a small run."""

    @pytest.fixture(scope="class")
    def audited_run(self):
        env = Environment()
        network = Network(env, latency=ConstantLatency(1e-3), stream=Stream(0, "n"))
        placement = RingPlacement(n_servers=3, replication_factor=2)
        model = ServiceTimeModel(overhead=1e-4, bandwidth=1e6, noise="exponential")
        servers = [
            BackendServer(
                env,
                server_id=s,
                cores=2,
                service_model=model,
                network=network,
                service_stream=Stream(s + 1, f"s{s}"),
            )
            for s in range(3)
        ]
        audit = []

        class AuditStrategy(ObliviousStrategy):
            def on_response(self, response):
                super().on_response(response)
                audit.append(response.request)

        client = Client(
            env,
            client_id=0,
            network=network,
            strategy=AuditStrategy(placement, LeastOutstandingSelector(), model),
        )

        def feeder(env):
            for task_id in range(50):
                ops = tuple(
                    Operation(
                        op_id=task_id * 10 + i,
                        task_id=task_id,
                        key=task_id * 10 + i,
                        value_size=100 + 40 * i,
                    )
                    for i in range(4)
                )
                client.submit(
                    Task(
                        task_id=task_id,
                        arrival_time=env.now,
                        client_id=0,
                        operations=ops,
                    )
                )
                yield env.timeout(0.002)

        env.process(feeder(env))
        env.run()
        return audit

    def test_every_request_completed_once(self, audited_run):
        op_ids = [r.op.op_id for r in audited_run]
        assert len(op_ids) == 200
        assert len(set(op_ids)) == 200

    def test_timestamp_trail_ordered(self, audited_run):
        for r in audited_run:
            assert 0 <= r.created_at <= r.dispatched_at <= r.enqueued_at
            assert r.enqueued_at <= r.service_start_at <= r.completed_at

    def test_network_delay_exact(self, audited_run):
        for r in audited_run:
            assert r.enqueued_at - r.dispatched_at == pytest.approx(1e-3)

    def test_server_assignment_is_replica(self, audited_run):
        placement = RingPlacement(n_servers=3, replication_factor=2)
        for r in audited_run:
            assert r.server_id in placement.replicas_of(r.partition)


class TestEndToEndConservation:
    @pytest.mark.parametrize(
        "strategy", ["c3", "equalmax-credits", "unifincr-model"]
    )
    def test_requests_served_equals_ops_generated(self, strategy):
        cfg = ExperimentConfig(strategy=strategy, n_tasks=300, n_keys=2000)
        result = run_experiment(cfg, seed=5)
        expected_ops = sum(
            t.fanout for t in cfg.workload().generate(seed=5)
        )
        assert result.requests_served == expected_ops

    def test_utilization_close_to_configured_load(self):
        """Long oblivious run: server utilization ~= 70% (trailing idle
        drain pulls it slightly below)."""
        cfg = ExperimentConfig(strategy="oblivious-lor", n_tasks=4000)
        result = run_experiment(cfg, seed=1)
        assert 0.55 < result.extras["mean_server_utilization"] < 0.78

    def test_virtual_duration_matches_arrival_rate(self):
        cfg = ExperimentConfig(strategy="oblivious-random", n_tasks=2000)
        result = run_experiment(cfg, seed=2)
        expected = cfg.workload().task_rate
        implied = result.tasks_completed / result.sim_duration
        assert implied == pytest.approx(expected, rel=0.15)
