"""Small-scale shape checks of the paper's claims.

The full-scale assertions live in ``benchmarks/``; these tests run a
medium workload (a few thousand tasks, one seed) and check the *orderings*
that must hold for the reproduction to be meaningful:

* the ideal model is the fastest realization at every reported percentile;
* BRB (both priority algorithms, credits realization) beats task-oblivious
  FIFO-with-C3 at the median;
* task-aware priorities beat FIFO priorities under the identical credits
  machinery (isolating the contribution of task-awareness itself).
"""

import pytest

from repro.harness import ExperimentConfig, run_experiment

MEDIUM = dict(n_tasks=4000, n_keys=20_000)


@pytest.fixture(scope="module")
def runs():
    strategies = (
        "c3",
        "equalmax-credits",
        "unifincr-credits",
        "equalmax-model",
        "unifincr-model",
        "fifo-credits",
    )
    out = {}
    for name in strategies:
        cfg = ExperimentConfig(strategy=name, **MEDIUM)
        out[name] = run_experiment(cfg, seed=1).summary((50.0, 95.0, 99.0))
    return out


class TestOrderings:
    @pytest.mark.parametrize("algo", ["equalmax", "unifincr"])
    @pytest.mark.parametrize("p", [50.0, 95.0, 99.0])
    def test_model_is_lower_bound(self, runs, algo, p):
        assert runs[f"{algo}-model"].percentile(p) <= runs[f"{algo}-credits"].percentile(p) * 1.05

    @pytest.mark.parametrize("algo", ["equalmax", "unifincr"])
    def test_brb_beats_c3_at_median(self, runs, algo):
        assert runs[f"{algo}-credits"].median < runs["c3"].median

    @pytest.mark.parametrize("algo", ["equalmax", "unifincr"])
    def test_model_beats_c3_everywhere(self, runs, algo):
        for p in (50.0, 95.0, 99.0):
            assert runs[f"{algo}-model"].percentile(p) < runs["c3"].percentile(p)

    def test_task_awareness_beats_fifo_priorities(self, runs):
        """EqualMax under credits < FIFO under credits at the median --
        the gain is from task-aware priorities, not the credits plumbing."""
        assert runs["equalmax-credits"].median < runs["fifo-credits"].median

    def test_percentiles_monotone_within_each_run(self, runs):
        for summary in runs.values():
            assert summary.percentile(50.0) <= summary.percentile(95.0)
            assert summary.percentile(95.0) <= summary.percentile(99.0)

    def test_latency_floor_sane(self, runs):
        """Medians sit above the physical floor (2x network + 1 service)."""
        floor = 2 * 50e-6 + 1.0 / 3500.0 * 0.2
        for summary in runs.values():
            assert summary.median > floor
