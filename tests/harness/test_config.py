"""Unit tests for experiment configuration."""

import pytest

from repro.harness import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    KNOWN_STRATEGIES,
    paper_figure2_config,
)


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        cfg = ExperimentConfig()
        assert cfg.n_clients == 18
        assert cfg.cluster.n_servers == 9
        assert cfg.cluster.cores_per_server == 4
        assert cfg.load == 0.70
        assert cfg.mean_fanout == 8.6
        assert cfg.credits_epoch == 1.0

    def test_figure2_strategies_are_known(self):
        assert set(FIGURE2_STRATEGIES) <= set(KNOWN_STRATEGIES)
        assert "c3" in FIGURE2_STRATEGIES
        assert len(FIGURE2_STRATEGIES) == 5

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ExperimentConfig(strategy="magic")

    def test_with_strategy_preserves_workload_shape(self):
        base = ExperimentConfig(strategy="c3", n_tasks=123, load=0.6)
        other = base.with_strategy("equalmax-model")
        assert other.strategy == "equalmax-model"
        assert other.n_tasks == 123
        assert other.load == 0.6

    def test_workload_derivation(self):
        cfg = ExperimentConfig(n_tasks=100)
        w = cfg.workload()
        assert w.n_tasks == 100
        assert w.n_clients == cfg.n_clients
        assert w.task_rate > 0

    def test_workload_identical_across_strategies(self):
        """The paired-comparison guarantee: same seed, same trace."""
        cfg = ExperimentConfig(n_tasks=50)
        t_a = cfg.workload().generate(seed=3)
        t_b = cfg.with_strategy("unifincr-model").workload().generate(seed=3)
        assert [t.keys() for t in t_a] == [t.keys() for t in t_b]
        assert [t.arrival_time for t in t_a] == [t.arrival_time for t in t_b]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_tasks=0)
        with pytest.raises(ValueError):
            ExperimentConfig(n_clients=0)
        with pytest.raises(ValueError):
            ExperimentConfig(load=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(credits_epoch=0.0)

    def test_describe_mentions_strategy(self):
        assert "c3" in ExperimentConfig(strategy="c3").describe()

    def test_paper_figure2_config(self):
        cfg = paper_figure2_config(n_tasks=500)
        assert cfg.n_tasks == 500
        assert cfg.load == 0.70
