"""Unit tests for experiment configuration."""

import pytest

from repro.harness import (
    ExperimentConfig,
    FIGURE2_STRATEGIES,
    KNOWN_STRATEGIES,
    paper_figure2_config,
)


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        cfg = ExperimentConfig()
        assert cfg.n_clients == 18
        assert cfg.cluster.n_servers == 9
        assert cfg.cluster.cores_per_server == 4
        assert cfg.load == 0.70
        assert cfg.mean_fanout == 8.6
        assert cfg.credits_epoch == 1.0

    def test_figure2_strategies_are_known(self):
        assert set(FIGURE2_STRATEGIES) <= set(KNOWN_STRATEGIES)
        assert "c3" in FIGURE2_STRATEGIES
        assert len(FIGURE2_STRATEGIES) == 5

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ExperimentConfig(strategy="magic")

    def test_with_strategy_preserves_workload_shape(self):
        base = ExperimentConfig(strategy="c3", n_tasks=123, load=0.6)
        other = base.with_strategy("equalmax-model")
        assert other.strategy == "equalmax-model"
        assert other.n_tasks == 123
        assert other.load == 0.6

    def test_workload_derivation(self):
        cfg = ExperimentConfig(n_tasks=100)
        w = cfg.workload()
        assert w.n_tasks == 100
        assert w.n_clients == cfg.n_clients
        assert w.task_rate > 0

    def test_workload_identical_across_strategies(self):
        """The paired-comparison guarantee: same seed, same trace."""
        cfg = ExperimentConfig(n_tasks=50)
        t_a = cfg.workload().generate(seed=3)
        t_b = cfg.with_strategy("unifincr-model").workload().generate(seed=3)
        assert [t.keys() for t in t_a] == [t.keys() for t in t_b]
        assert [t.arrival_time for t in t_a] == [t.arrival_time for t in t_b]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_tasks=0)
        with pytest.raises(ValueError):
            ExperimentConfig(n_clients=0)
        with pytest.raises(ValueError):
            ExperimentConfig(load=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(credits_epoch=0.0)

    def test_negative_slowdown_server_normalized(self):
        """Any negative id means disabled and normalizes to -1."""
        assert ExperimentConfig(slowdown_server=-7).slowdown_server == -1
        assert ExperimentConfig(slowdown_server=-1).slowdown_server == -1
        assert ExperimentConfig(slowdown_server=-7) == ExperimentConfig()

    def test_slowdown_server_range_error_names_range(self):
        with pytest.raises(ValueError, match=r"0\.\.8"):
            ExperimentConfig(slowdown_server=9)

    def test_slowdown_factor_validated_when_enabled(self):
        with pytest.raises(ValueError, match="slowdown_factor"):
            ExperimentConfig(slowdown_server=0, slowdown_factor=1.0)
        # Disabled slowdown leaves the factor unchecked (it is unused).
        ExperimentConfig(slowdown_server=-1, slowdown_factor=1.0)

    def test_fault_schedule_targets_validated(self):
        from repro.cluster.faults import FaultSchedule, SlowdownFault

        with pytest.raises(ValueError, match="valid ids"):
            ExperimentConfig(
                fault_schedule=FaultSchedule((SlowdownFault(servers=(99,)),))
            )

    def test_faults_combines_schedule_and_legacy_slowdown(self):
        from repro.cluster.faults import FaultSchedule, FlashCrowdFault

        cfg = ExperimentConfig(
            fault_schedule=FaultSchedule((FlashCrowdFault(),)),
            slowdown_server=2,
            slowdown_factor=2.5,
        )
        schedule = cfg.faults()
        assert len(schedule) == 2
        assert schedule.events[1].servers == (2,)
        assert schedule.events[1].factor == 2.5

    def test_known_strategies_is_live_view(self):
        from repro.harness import StrategyBuilder, register_strategy, unregister_strategy

        class _Tmp(StrategyBuilder):
            name = "tmp-config-test"

            def build_client_strategy(self, ctx, client_id):  # pragma: no cover
                raise NotImplementedError

        assert "tmp-config-test" not in KNOWN_STRATEGIES
        register_strategy(_Tmp())
        try:
            assert "tmp-config-test" in KNOWN_STRATEGIES
            ExperimentConfig(strategy="tmp-config-test", n_tasks=1)
        finally:
            unregister_strategy("tmp-config-test")
        assert "tmp-config-test" not in KNOWN_STRATEGIES

    def test_describe_mentions_strategy(self):
        assert "c3" in ExperimentConfig(strategy="c3").describe()

    def test_paper_figure2_config(self):
        cfg = paper_figure2_config(n_tasks=500)
        assert cfg.n_tasks == 500
        assert cfg.load == 0.70
